//! A 2-bit bimodal branch predictor.
//!
//! The workload kernels emit one `branch` event per loop back-edge and per
//! data-dependent conditional. Loop branches train quickly; data-dependent
//! conditionals are where the paper's "others" code transformations
//! (branch-less conversion, branch-probability hints) recover cycles.

/// Saturating 2-bit counter states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the 2-bit counter names are canonical
enum State {
    StrongNotTaken,
    WeakNotTaken,
    WeakTaken,
    StrongTaken,
}

impl State {
    fn predicts_taken(self) -> bool {
        matches!(self, State::WeakTaken | State::StrongTaken)
    }

    fn update(self, taken: bool) -> State {
        use State::*;
        match (self, taken) {
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, true) => StrongTaken,
            (StrongTaken, true) => StrongTaken,
            (StrongNotTaken, false) => StrongNotTaken,
            (WeakNotTaken, false) => StrongNotTaken,
            (WeakTaken, false) => WeakNotTaken,
            (StrongTaken, false) => WeakTaken,
        }
    }
}

/// A single-entry 2-bit bimodal predictor.
///
/// The engine keeps one predictor per core; workload branch streams are
/// strongly loop-dominated, so a single shared counter captures the
/// behaviour that matters for the penalty studies (loop back-edges predict
/// near-perfectly; alternating data-dependent branches mispredict often).
///
/// # Example
///
/// ```
/// use sttcache_cpu::BranchPredictor;
///
/// let mut bp = BranchPredictor::new();
/// // A loop back-edge stream trains to near-perfect prediction.
/// for _ in 0..100 {
///     bp.predict_and_update(true);
/// }
/// assert!(bp.accuracy() > 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictor {
    state: State,
    branches: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor biased weakly taken (loop-friendly reset state).
    pub fn new() -> Self {
        BranchPredictor {
            state: State::WeakTaken,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Records a branch outcome; returns `true` if it was mispredicted.
    pub fn predict_and_update(&mut self, taken: bool) -> bool {
        self.branches += 1;
        let mispredict = self.state.predicts_taken() != taken;
        if mispredict {
            self.mispredicts += 1;
        }
        self.state = self.state.update(taken);
        mispredict
    }

    /// Branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredicted branches.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Prediction accuracy (1.0 when no branches were seen).
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_pattern_predicts_well() {
        let mut bp = BranchPredictor::new();
        // 10 iterations of a 100-trip loop: taken x99, not-taken x1.
        for _ in 0..10 {
            for _ in 0..99 {
                bp.predict_and_update(true);
            }
            bp.predict_and_update(false);
        }
        assert!(bp.accuracy() > 0.97, "{}", bp.accuracy());
    }

    #[test]
    fn alternating_pattern_mispredicts_heavily() {
        let mut bp = BranchPredictor::new();
        for i in 0..1000 {
            bp.predict_and_update(i % 2 == 0);
        }
        assert!(bp.accuracy() < 0.7, "{}", bp.accuracy());
    }

    #[test]
    fn counter_saturates() {
        let mut bp = BranchPredictor::new();
        for _ in 0..10 {
            bp.predict_and_update(true);
        }
        // One not-taken after saturation: exactly one mispredict...
        let before = bp.mispredicts();
        bp.predict_and_update(false);
        assert_eq!(bp.mispredicts(), before + 1);
        // ...and hysteresis keeps predicting taken once.
        assert!(!bp.predict_and_update(true));
    }

    #[test]
    fn fresh_predictor_reports_full_accuracy() {
        assert_eq!(BranchPredictor::new().accuracy(), 1.0);
    }
}

//! Instruction-fetch modelling.
//!
//! The paper's platform has a 32 KB 2-way SRAM L1 I-cache that is never
//! changed, so by default the core models fetch as ideal (it cancels out
//! of every penalty ratio). This module makes fetch explicit so the
//! *I-cache* can be explored too — the paper's companion work (reference
//! [7], NVM I-cache through MSHR enhancements) is reproduced as an
//! extension experiment by handing the core an STT-MRAM IL1.
//!
//! The model is deliberately first-order: instructions are 4 bytes and
//! fetched sequentially through the IL1; a taken branch redirects the PC
//! to the most recent loop head (loop-dominated kernels re-execute the
//! same code), a not-taken branch falls through. Only cycles beyond the
//! pipelined 1-per-cycle fetch are charged, so an always-hitting SRAM IL1
//! adds zero overhead.

use sttcache_mem::{Addr, Cycle, MemoryLevel};

/// Instruction size in bytes (fixed-width ARM).
const INSTR_BYTES: u64 = 4;

/// An instruction-fetch front-end over an L1 I-cache.
///
/// # Example
///
/// ```
/// use sttcache_cpu::FetchUnit;
/// use sttcache_mem::{Cache, CacheConfig, MainMemory};
///
/// # fn main() -> Result<(), sttcache_mem::MemError> {
/// let il1 = Cache::new(
///     CacheConfig::builder()
///         .capacity_bytes(32 * 1024)
///         .line_bytes(32)
///         .read_cycles(1)
///         .write_cycles(1)
///         .build()?,
///     MainMemory::new(100),
/// );
/// let mut fetch = FetchUnit::new(Box::new(il1), 4096);
/// // The first fetch of a line misses; later ones on the same line are
/// // pipelined and free.
/// let cold = fetch.step(0, None);
/// assert!(cold > 0);
/// assert_eq!(fetch.step(1000, None), 0);
/// # Ok(())
/// # }
/// ```
pub struct FetchUnit {
    il1: Box<dyn MemoryLevel>,
    /// Cached `il1.line_bytes()` so the per-instruction line-boundary
    /// check skips the virtual call (the IL1 geometry never changes).
    line_mask: u64,
    /// Simulated code-region base.
    base: u64,
    /// Active code footprint in bytes; the PC wraps inside it.
    footprint: u64,
    pc: u64,
    /// PC of the current loop head (target of taken branches).
    loop_head: u64,
    fetch_stall_cycles: u64,
    fetches: u64,
}

impl std::fmt::Debug for FetchUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchUnit")
            .field("pc", &self.pc)
            .field("footprint", &self.footprint)
            .field("fetches", &self.fetches)
            .field("fetch_stall_cycles", &self.fetch_stall_cycles)
            .finish_non_exhaustive()
    }
}

impl FetchUnit {
    /// Creates a fetch unit over `il1` with the given active code
    /// footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_bytes` is smaller than one instruction.
    pub fn new(il1: Box<dyn MemoryLevel>, footprint_bytes: u64) -> Self {
        assert!(footprint_bytes >= INSTR_BYTES, "code footprint too small");
        let base = 0x4000_0000; // away from the data space
        let line_bytes = il1.line_bytes() as u64;
        assert!(line_bytes.is_power_of_two(), "IL1 line size");
        FetchUnit {
            line_mask: line_bytes - 1,
            il1,
            base,
            footprint: footprint_bytes,
            pc: base,
            loop_head: base,
            fetch_stall_cycles: 0,
            fetches: 0,
        }
    }

    /// Fetches the next instruction at cycle `now`. `control` carries a
    /// branch outcome when the instruction is a branch (`Some(taken)`).
    /// Returns the stall cycles beyond the pipelined fetch.
    pub fn step(&mut self, now: Cycle, control: Option<Option<bool>>) -> u64 {
        // Only a PC that enters a new line touches the IL1 (the fetch
        // buffer holds the current line).
        let stall = if self.pc & self.line_mask == 0 || self.fetches == 0 {
            self.fetches += 1;
            let out = self.il1.read(Addr(self.pc), now);
            let extra = out.complete_at.saturating_sub(now + 1);
            self.fetch_stall_cycles += extra;
            extra
        } else {
            self.fetches += 1;
            0
        };

        // Advance the PC.
        match control {
            Some(Some(true)) => {
                // Taken branch: back to the loop head.
                self.pc = self.loop_head;
            }
            Some(Some(false)) => {
                // Fall through and open a new loop head (a new region of
                // code begins after a loop exits).
                self.pc = self.wrap(self.pc + INSTR_BYTES);
                self.loop_head = self.pc;
            }
            _ => {
                self.pc = self.wrap(self.pc + INSTR_BYTES);
            }
        }
        stall
    }

    fn wrap(&self, pc: u64) -> u64 {
        // The PC advances one instruction at a time, so it exceeds the
        // footprint only on the step that crosses the end — the division
        // runs once per wrap-around, not per instruction.
        let off = pc - self.base;
        if off < self.footprint {
            pc
        } else {
            self.base + off % self.footprint
        }
    }

    /// Total cycles lost to instruction-fetch stalls.
    pub fn fetch_stall_cycles(&self) -> u64 {
        self.fetch_stall_cycles
    }

    /// Instructions fetched.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// The IL1 behind the fetch unit.
    pub fn il1(&self) -> &dyn MemoryLevel {
        self.il1.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttcache_mem::{Cache, CacheConfig, MainMemory};

    fn il1(read_cycles: u64) -> Box<dyn MemoryLevel> {
        Box::new(Cache::new(
            CacheConfig::builder()
                .capacity_bytes(32 * 1024)
                .associativity(2)
                .line_bytes(32)
                .read_cycles(read_cycles)
                .write_cycles(read_cycles)
                .build()
                .expect("test il1 config is valid"),
            MainMemory::new(100),
        ))
    }

    #[test]
    fn sram_il1_straight_line_is_nearly_free() {
        let mut f = FetchUnit::new(il1(1), 4096);
        let mut now = 0;
        let mut total = 0;
        // Warm pass over the footprint (consuming each stall).
        for _ in 0..2048 {
            let s = f.step(now, None);
            total += s;
            now += 3 + s;
        }
        // Second pass: all IL1 hits, 1-cycle pipelined -> zero stall.
        let warm_start = f.fetch_stall_cycles();
        for _ in 0..2048 {
            now += 3 + f.step(now, None);
        }
        assert_eq!(f.fetch_stall_cycles(), warm_start);
        assert!(total > 0); // the cold pass did stall
    }

    #[test]
    fn nvm_il1_charges_per_line_stalls_even_warm() {
        let mut f = FetchUnit::new(il1(4), 4096);
        let mut now = 0;
        for _ in 0..2048 {
            now += 3 + f.step(now, None);
        }
        let warm_start = f.fetch_stall_cycles();
        for _ in 0..2048 {
            now += 3 + f.step(now, None);
        }
        // 4-cycle reads leave 3 stall cycles per new line (8 instrs/line).
        let warm_stalls = f.fetch_stall_cycles() - warm_start;
        assert!(warm_stalls >= 2048 / 8 * 3 / 2, "{warm_stalls}");
    }

    #[test]
    fn taken_branches_loop_over_hot_code() {
        let mut f = FetchUnit::new(il1(1), 65536);
        let mut now = 0;
        // A tight loop: 10 instructions then a taken branch, repeated. The
        // core consumes each returned stall before issuing the next fetch.
        for _ in 0..100 {
            for _ in 0..10 {
                now += 1 + f.step(now, None);
            }
            now += 1 + f.step(now, Some(Some(true)));
        }
        // The loop body fits in two lines: two cold misses, then nothing.
        let cold = 2 * 103;
        let stalls = f.fetch_stall_cycles();
        assert!(stalls <= cold, "{stalls}");
        // Warm reference: run another 100 iterations, no new stalls.
        let warm_start = f.fetch_stall_cycles();
        for _ in 0..100 {
            for _ in 0..10 {
                now += 1 + f.step(now, None);
            }
            now += 1 + f.step(now, Some(Some(true)));
        }
        assert_eq!(f.fetch_stall_cycles(), warm_start);
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let mut f = FetchUnit::new(il1(1), 4096);
        f.step(0, Some(Some(false)));
        assert_eq!(f.fetches(), 1);
        // The PC advanced; a new loop head was set (no way to observe
        // directly, but stepping keeps working).
        f.step(10, Some(Some(true)));
        assert_eq!(f.fetches(), 2);
    }

    #[test]
    fn footprint_wraps() {
        let mut f = FetchUnit::new(il1(1), 64);
        let mut now = 0;
        for _ in 0..100 {
            now += 2 + f.step(now, None);
        }
        // 100 instructions in a 16-instruction footprint: only two lines
        // ever touched.
        assert_eq!(f.il1().stats().reads, f.il1().stats().read_hits + 2);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn tiny_footprint_panics() {
        let _ = FetchUnit::new(il1(1), 2);
    }
}

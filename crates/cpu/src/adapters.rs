//! Engine adapters.
//!
//! Utility [`Engine`] implementations for composing workloads with the
//! timing machinery: a [`CountingEngine`] that only tallies events (for
//! instruction-mix characterization without simulating) and a
//! [`TeeEngine`] that fans every event out to two engines — e.g. recording
//! a trace *while* simulating, in one pass.

use crate::Engine;
use sttcache_mem::Addr;

/// Tallies the architectural event mix without any timing.
///
/// # Example
///
/// ```
/// use sttcache_cpu::{CountingEngine, Engine};
/// use sttcache_mem::Addr;
///
/// let mut count = CountingEngine::new();
/// count.load(Addr(0), 4);
/// count.compute(7);
/// count.branch(true);
/// assert_eq!(count.loads, 1);
/// assert_eq!(count.compute_ops, 7);
/// assert_eq!(count.instructions(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountingEngine {
    /// Load events.
    pub loads: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Store events.
    pub stores: u64,
    /// Bytes stored.
    pub store_bytes: u64,
    /// Prefetch hints.
    pub prefetches: u64,
    /// Single-cycle compute operations.
    pub compute_ops: u64,
    /// Branches.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
}

impl CountingEngine {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions (one per event, `compute_ops` for computes).
    pub fn instructions(&self) -> u64 {
        self.loads + self.stores + self.prefetches + self.compute_ops + self.branches
    }

    /// Fraction of instructions that are memory accesses.
    pub fn memory_fraction(&self) -> f64 {
        let i = self.instructions();
        if i == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / i as f64
        }
    }
}

impl Engine for CountingEngine {
    fn load(&mut self, _addr: Addr, bytes: usize) {
        self.loads += 1;
        self.load_bytes += bytes as u64;
    }

    fn store(&mut self, _addr: Addr, bytes: usize) {
        self.stores += 1;
        self.store_bytes += bytes as u64;
    }

    fn prefetch(&mut self, _addr: Addr) {
        self.prefetches += 1;
    }

    fn compute(&mut self, ops: u64) {
        self.compute_ops += ops;
    }

    fn branch(&mut self, taken: bool) {
        self.branches += 1;
        self.taken_branches += u64::from(taken);
    }
}

/// Fans every event out to two engines in order.
///
/// # Example
///
/// ```
/// use sttcache_cpu::{CountingEngine, Engine, TeeEngine, TraceRecorder};
/// use sttcache_mem::Addr;
///
/// // Count the mix AND record a trace in one pass over the workload.
/// let mut tee = TeeEngine::new(CountingEngine::new(), TraceRecorder::new());
/// tee.load(Addr(0), 4);
/// tee.store(Addr(64), 4);
/// let (count, recorder) = tee.into_inner();
/// assert_eq!(count.loads, 1);
/// assert_eq!(recorder.into_trace().summary(), (1, 1, 0, 0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TeeEngine<A, B> {
    first: A,
    second: B,
}

impl<A: Engine, B: Engine> TeeEngine<A, B> {
    /// Creates the tee.
    pub fn new(first: A, second: B) -> Self {
        TeeEngine { first, second }
    }

    /// The first engine.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second engine.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Unwraps both engines.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Engine, B: Engine> Engine for TeeEngine<A, B> {
    fn load(&mut self, addr: Addr, bytes: usize) {
        self.first.load(addr, bytes);
        self.second.load(addr, bytes);
    }

    fn store(&mut self, addr: Addr, bytes: usize) {
        self.first.store(addr, bytes);
        self.second.store(addr, bytes);
    }

    fn prefetch(&mut self, addr: Addr) {
        self.first.prefetch(addr);
        self.second.prefetch(addr);
    }

    fn compute(&mut self, ops: u64) {
        self.first.compute(ops);
        self.second.compute(ops);
    }

    fn branch(&mut self, taken: bool) {
        self.first.branch(taken);
        self.second.branch(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    #[test]
    fn counting_engine_tallies_everything() {
        let mut c = CountingEngine::new();
        c.load(Addr(0), 4);
        c.load(Addr(8), 16);
        c.store(Addr(0), 4);
        c.prefetch(Addr(64));
        c.compute(10);
        c.branch(true);
        c.branch(false);
        assert_eq!(c.loads, 2);
        assert_eq!(c.load_bytes, 20);
        assert_eq!(c.stores, 1);
        assert_eq!(c.prefetches, 1);
        assert_eq!(c.compute_ops, 10);
        assert_eq!(c.branches, 2);
        assert_eq!(c.taken_branches, 1);
        assert_eq!(c.instructions(), 16);
        assert!((c.memory_fraction() - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_has_zero_memory_fraction() {
        assert_eq!(CountingEngine::new().memory_fraction(), 0.0);
    }

    #[test]
    fn tee_delivers_to_both_in_full() {
        let mut tee = TeeEngine::new(CountingEngine::new(), TraceRecorder::new());
        tee.load(Addr(0), 4);
        tee.compute(3);
        tee.branch(true);
        assert_eq!(tee.first().loads, 1);
        let (count, rec) = tee.into_inner();
        assert_eq!(count.instructions(), 5);
        assert_eq!(rec.into_trace().len(), 3);
    }

    #[test]
    fn tee_nests() {
        let inner = TeeEngine::new(CountingEngine::new(), CountingEngine::new());
        let mut outer = TeeEngine::new(CountingEngine::new(), inner);
        outer.store(Addr(0), 8);
        assert_eq!(outer.first().stores, 1);
        assert_eq!(outer.second().first().stores, 1);
        assert_eq!(outer.second().second().stores, 1);
    }
}

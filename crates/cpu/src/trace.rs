//! Trace recording and replay.
//!
//! A [`TraceRecorder`] captures the architectural event stream a workload
//! emits (every load, store, prefetch, compute group and branch) into a
//! [`Trace`] that can be saved to a compact binary format and replayed
//! later into any [`Engine`]. This decouples workload generation from
//! timing simulation — record once, sweep many cache configurations —
//! exactly how trace-driven studies around gem5 are run.

use crate::Engine;
use std::io::{self, Read, Write};
use sttcache_mem::Addr;

/// One recorded architectural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A load of `bytes` at `addr`.
    Load {
        /// Byte address.
        addr: Addr,
        /// Access width in bytes.
        bytes: u8,
    },
    /// A store of `bytes` at `addr`.
    Store {
        /// Byte address.
        addr: Addr,
        /// Access width in bytes.
        bytes: u8,
    },
    /// A software prefetch hint.
    Prefetch {
        /// Byte address.
        addr: Addr,
    },
    /// `ops` back-to-back single-cycle operations.
    Compute {
        /// Operation count.
        ops: u32,
    },
    /// A conditional branch with its outcome.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
}

/// File magic for the binary trace format.
const MAGIC: &[u8; 8] = b"STTRACE1";

/// A recorded event stream.
///
/// # Example
///
/// ```
/// use sttcache_cpu::{Engine, Trace, TraceRecorder};
/// use sttcache_mem::Addr;
///
/// # fn main() -> std::io::Result<()> {
/// let mut rec = TraceRecorder::new();
/// rec.load(Addr(0x40), 4);
/// rec.compute(3);
/// rec.store(Addr(0x80), 4);
/// let trace = rec.into_trace();
///
/// // Round-trip through the binary format.
/// let mut buf = Vec::new();
/// trace.write_to(&mut buf)?;
/// let back = Trace::read_from(&mut buf.as_slice())?;
/// assert_eq!(trace, back);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Heap footprint of the event buffer in bytes — the unit the trace
    /// cache's LRU byte cap accounts recorded entries in. Capacity-based,
    /// so a recorder's growth slack (or an oversized capacity hint)
    /// counts until [`Trace::shrink_to_fit`] drops it.
    pub fn heap_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<TraceEvent>()
    }

    /// Releases the event buffer's growth slack so [`Trace::heap_bytes`]
    /// matches the event count.
    pub fn shrink_to_fit(&mut self) {
        self.events.shrink_to_fit();
    }

    /// Counts of (loads, stores, prefetches, branches) in the trace.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for ev in &self.events {
            match ev {
                TraceEvent::Load { .. } => c.0 += 1,
                TraceEvent::Store { .. } => c.1 += 1,
                TraceEvent::Prefetch { .. } => c.2 += 1,
                TraceEvent::Branch { .. } => c.3 += 1,
                TraceEvent::Compute { .. } => {}
            }
        }
        c
    }

    /// Replays the trace into an engine, in order.
    ///
    /// Dynamic-dispatch convenience wrapper over [`Trace::replay_into`];
    /// use `replay_into` with a concrete engine type on hot paths.
    pub fn replay(&self, e: &mut dyn Engine) {
        self.replay_into(e);
    }

    /// Replays the trace into an engine, in order, monomorphized over the
    /// engine type.
    ///
    /// With a concrete `E` every event dispatch is a static (inlinable)
    /// call instead of one virtual call per access — the batched fast
    /// path the sweep engine's trace cache replays through. Events are
    /// fed in fixed-size chunks so the hot loop's working set stays
    /// bounded regardless of trace length.
    pub fn replay_into<E: Engine + ?Sized>(&self, e: &mut E) {
        /// Events dispatched per batch of the replay loop.
        const REPLAY_CHUNK: usize = 1024;
        for chunk in self.events.chunks(REPLAY_CHUNK) {
            for &ev in chunk {
                match ev {
                    TraceEvent::Load { addr, bytes } => e.load(addr, bytes as usize),
                    TraceEvent::Store { addr, bytes } => e.store(addr, bytes as usize),
                    TraceEvent::Prefetch { addr } => e.prefetch(addr),
                    TraceEvent::Compute { ops } => e.compute(ops as u64),
                    TraceEvent::Branch { taken } => e.branch(taken),
                }
            }
        }
    }

    /// Serializes the trace.
    ///
    /// Format: 8-byte magic, little-endian `u64` event count, then one
    /// opcode byte per event followed by its payload (LEB128 varint
    /// addresses and counts).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`; a partial trace may have been
    /// written.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.events.len() as u64).to_le_bytes())?;
        for ev in &self.events {
            match *ev {
                TraceEvent::Load { addr, bytes } => {
                    w.write_all(&[0, bytes])?;
                    write_varint(&mut w, addr.0)?;
                }
                TraceEvent::Store { addr, bytes } => {
                    w.write_all(&[1, bytes])?;
                    write_varint(&mut w, addr.0)?;
                }
                TraceEvent::Prefetch { addr } => {
                    w.write_all(&[2])?;
                    write_varint(&mut w, addr.0)?;
                }
                TraceEvent::Compute { ops } => {
                    w.write_all(&[3])?;
                    write_varint(&mut w, ops as u64)?;
                }
                TraceEvent::Branch { taken } => {
                    w.write_all(&[4, taken as u8])?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic, an opcode or a varint is
    /// malformed, `UnexpectedEof` (with the event index and field that
    /// was being decoded) if the stream is truncated, and propagates any
    /// other I/O error from `r`. Decoding never panics on corrupt input.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        read_field(&mut r, &mut magic, "header", "magic")?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut count = [0u8; 8];
        read_field(&mut r, &mut count, "header", "event count")?;
        let count = u64::from_le_bytes(count) as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        for idx in 0..count {
            let mut op = [0u8; 1];
            read_event_field(&mut r, &mut op, idx, "opcode")?;
            let ev = match op[0] {
                0 | 1 => {
                    let mut bytes = [0u8; 1];
                    read_event_field(&mut r, &mut bytes, idx, "access width")?;
                    let addr = Addr(read_varint_field(&mut r, idx, "address")?);
                    if op[0] == 0 {
                        TraceEvent::Load {
                            addr,
                            bytes: bytes[0],
                        }
                    } else {
                        TraceEvent::Store {
                            addr,
                            bytes: bytes[0],
                        }
                    }
                }
                2 => TraceEvent::Prefetch {
                    addr: Addr(read_varint_field(&mut r, idx, "address")?),
                },
                3 => {
                    let ops = read_varint_field(&mut r, idx, "compute count")?;
                    let ops = u32::try_from(ops).map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("event {idx}: compute count {ops} overflows u32"),
                        )
                    })?;
                    TraceEvent::Compute { ops }
                }
                4 => {
                    let mut taken = [0u8; 1];
                    read_event_field(&mut r, &mut taken, idx, "branch outcome")?;
                    TraceEvent::Branch {
                        taken: taken[0] != 0,
                    }
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("event {idx}: unknown trace opcode {other}"),
                    ))
                }
            };
            events.push(ev);
        }
        Ok(Trace { events })
    }
}

/// `read_exact` with a descriptive context: truncation reports which
/// structural field of the trace format was cut short.
fn read_field<R: Read>(r: &mut R, buf: &mut [u8], scope: &str, field: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated trace: {scope}: {field}"),
            )
        } else {
            e
        }
    })
}

/// [`read_field`] for per-event payloads, tagging the event index.
fn read_event_field<R: Read>(r: &mut R, buf: &mut [u8], idx: usize, field: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated trace: event {idx}: {field}"),
            )
        } else {
            e
        }
    })
}

/// [`read_varint`] with the event index and field name attached to any
/// truncation or overlong-encoding error.
fn read_varint_field<R: Read>(r: &mut R, idx: usize, field: &str) -> io::Result<u64> {
    read_varint(r).map_err(|e| {
        let kind = e.kind();
        if kind == io::ErrorKind::UnexpectedEof || kind == io::ErrorKind::InvalidData {
            io::Error::new(kind, format!("event {idx}: {field}: {e}"))
        } else {
            e
        }
    })
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        "varint too long",
    ))
}

/// An [`Engine`] that records into a [`Trace`].
///
/// Adjacent `compute` calls are coalesced into one event to keep traces
/// compact.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Creates an empty recorder with room for `events` events, avoiding
    /// growth reallocations when the stream length is known approximately
    /// (e.g. from a previous recording of the same kernel).
    pub fn with_capacity(events: usize) -> Self {
        TraceRecorder {
            events: Vec::with_capacity(events),
        }
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes recording.
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events,
        }
    }
}

impl Engine for TraceRecorder {
    fn load(&mut self, addr: Addr, bytes: usize) {
        self.events.push(TraceEvent::Load {
            addr,
            bytes: bytes.min(255) as u8,
        });
    }

    fn store(&mut self, addr: Addr, bytes: usize) {
        self.events.push(TraceEvent::Store {
            addr,
            bytes: bytes.min(255) as u8,
        });
    }

    fn prefetch(&mut self, addr: Addr) {
        self.events.push(TraceEvent::Prefetch { addr });
    }

    fn compute(&mut self, ops: u64) {
        if let Some(TraceEvent::Compute { ops: prev }) = self.events.last_mut() {
            let merged = (*prev as u64).saturating_add(ops).min(u32::MAX as u64);
            *prev = merged as u32;
            return;
        }
        self.events.push(TraceEvent::Compute {
            ops: ops.min(u32::MAX as u64) as u32,
        });
    }

    fn branch(&mut self, taken: bool) {
        self.events.push(TraceEvent::Branch { taken });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut rec = TraceRecorder::new();
        rec.load(Addr(0x1000), 4);
        rec.compute(2);
        rec.compute(3); // coalesces with the previous compute
        rec.store(Addr(0x2000), 16);
        rec.prefetch(Addr(0x3000));
        rec.branch(true);
        rec.branch(false);
        rec.into_trace()
    }

    #[test]
    fn recording_coalesces_compute() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert!(matches!(t.events()[1], TraceEvent::Compute { ops: 5 }));
    }

    #[test]
    fn summary_counts_by_kind() {
        assert_eq!(sample().summary(), (1, 1, 1, 2));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let t = sample();
        let mut rec = TraceRecorder::new();
        t.replay(&mut rec);
        assert_eq!(rec.into_trace(), t);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    /// Decodes a truncated prefix and returns the error message; panics
    /// if the truncation was (incorrectly) accepted.
    fn truncation_error(buf: &[u8], keep: usize) -> String {
        Trace::read_from(&mut &buf[..keep])
            .expect_err("truncated input must not decode")
            .to_string()
    }

    #[test]
    fn truncation_in_the_header_names_the_field() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Inside the magic.
        let msg = truncation_error(&buf, 3);
        assert!(msg.contains("magic"), "{msg}");
        // Inside the event count.
        let msg = truncation_error(&buf, 12);
        assert!(msg.contains("event count"), "{msg}");
    }

    #[test]
    fn truncation_at_every_field_boundary_names_event_and_field() {
        // One event of every kind, with a multi-byte varint address so
        // the cut can land strictly inside a varint.
        let trace = Trace::from_iter([
            TraceEvent::Load {
                addr: Addr(0x1_0000),
                bytes: 8,
            },
            TraceEvent::Store {
                addr: Addr(0x2_0000),
                bytes: 4,
            },
            TraceEvent::Prefetch {
                addr: Addr(0x3_0000),
            },
            TraceEvent::Compute { ops: 1_000_000 },
            TraceEvent::Branch { taken: true },
        ]);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let header = 16; // magic + count
        let expect = |keep: usize, event: &str, field: &str| {
            let msg = truncation_error(&buf, keep);
            assert!(
                msg.contains(event) && msg.contains(field),
                "cut at {keep}: expected '{event}'/'{field}' in '{msg}'"
            );
        };
        // Load: opcode | width | 3-byte varint address.
        expect(header, "event 0", "opcode");
        expect(header + 1, "event 0", "access width");
        expect(header + 2, "event 0", "address");
        expect(header + 4, "event 0", "address"); // mid-varint
        let load_end = header + 5;
        // Store mirrors load.
        expect(load_end, "event 1", "opcode");
        expect(load_end + 1, "event 1", "access width");
        expect(load_end + 3, "event 1", "address");
        let store_end = load_end + 5;
        // Prefetch: opcode | 3-byte varint address.
        expect(store_end, "event 2", "opcode");
        expect(store_end + 2, "event 2", "address");
        let prefetch_end = store_end + 4;
        // Compute: opcode | 3-byte varint count.
        expect(prefetch_end, "event 3", "opcode");
        expect(prefetch_end + 2, "event 3", "compute count");
        let compute_end = prefetch_end + 4;
        // Branch: opcode | outcome byte.
        expect(compute_end, "event 4", "opcode");
        expect(compute_end + 1, "event 4", "branch outcome");
        // Sanity: keeping everything decodes.
        assert_eq!(compute_end + 2, buf.len());
        assert_eq!(Trace::read_from(&mut buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn replay_into_matches_dyn_replay() {
        let t = sample();
        let mut via_dyn = TraceRecorder::new();
        t.replay(&mut via_dyn);
        let mut via_mono = TraceRecorder::new();
        t.replay_into(&mut via_mono);
        assert_eq!(via_dyn.into_trace(), via_mono.into_trace());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut buf = Vec::new();
        Trace::from_iter([TraceEvent::Branch { taken: true }])
            .write_to(&mut buf)
            .unwrap();
        let op_pos = 16; // after magic + count
        buf[op_pos] = 99;
        assert!(Trace::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 0xffff, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        assert!(t.is_empty());
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(Trace::read_from(&mut buf.as_slice()).unwrap(), t);
    }
}

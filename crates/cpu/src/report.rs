//! End-of-run report.

/// Cycle and event totals for one simulated run.
///
/// Produced by [`crate::Core::report`]. The stall decomposition feeds the
/// paper's Fig. 4 (read vs write penalty contributions) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreReport {
    /// Total simulated cycles (including the final store-buffer drain).
    pub cycles: u64,
    /// Instructions issued (computes + loads + stores + prefetches +
    /// branches).
    pub instructions: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Software prefetch instructions.
    pub prefetches: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles stalled waiting for load data.
    pub read_stall_cycles: u64,
    /// Cycles stalled on a full store buffer.
    pub write_stall_cycles: u64,
    /// Cycles stalled refilling the pipeline after mispredicts.
    pub branch_stall_cycles: u64,
    /// Cycles stalled on instruction fetch (0 with the default ideal
    /// I-cache; non-zero when a [`crate::FetchUnit`] is attached).
    pub fetch_stall_cycles: u64,
}

impl CoreReport {
    /// Instructions per cycle (0 for an idle core).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// All memory-induced stall cycles.
    pub fn memory_stall_cycles(&self) -> u64 {
        self.read_stall_cycles + self.write_stall_cycles
    }

    /// Fraction of cycles lost to load stalls.
    pub fn read_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.read_stall_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = CoreReport {
            cycles: 200,
            instructions: 100,
            read_stall_cycles: 60,
            write_stall_cycles: 40,
            ..Default::default()
        };
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(r.memory_stall_cycles(), 100);
        assert!((r.read_stall_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn idle_core_is_zero() {
        let r = CoreReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.read_stall_fraction(), 0.0);
    }
}

//! In-order CPU timing engine for the `sttcache` simulator.
//!
//! This crate substitutes for gem5's SE-mode ARM `detailed` CPU in the
//! paper's platform: a single-core, 1 GHz, in-order engine modelled on the
//! ARM Cortex-A9's timing behaviour for data accesses:
//!
//! * one instruction issues per cycle (base CPI = 1);
//! * loads **block**: the core stalls until the data port returns the value
//!   — this is what exposes the STT-MRAM read latency the paper studies;
//! * stores retire into a small [`StoreBuffer`] and drain to the data port
//!   in the background; the core only stalls when the buffer is full —
//!   which is why the write latency contributes far less penalty (Fig. 4);
//! * branches run through a 2-bit bimodal [`BranchPredictor`]; mispredicts
//!   cost a pipeline refill (8 cycles, A9-like);
//! * software prefetches are issued to the data port without blocking.
//!
//! Workloads drive the core through the [`Engine`] trait; the core is
//! generic over a [`DataPort`] so the same kernel runs unchanged against a
//! plain cache hierarchy, the paper's VWB front-end, or the L0/EMSHR
//! baselines.
//!
//! # Example
//!
//! ```
//! use sttcache_cpu::{Core, CoreConfig, Engine, MemPort};
//! use sttcache_mem::{Addr, Cache, CacheConfig, MainMemory};
//!
//! # fn main() -> Result<(), sttcache_mem::MemError> {
//! let dl1 = Cache::new(CacheConfig::builder().build()?, MainMemory::new(100));
//! let mut core = Core::new(CoreConfig::default(), MemPort::new(dl1));
//! core.load(Addr(0), 4);      // cold miss: long stall
//! core.load(Addr(8), 4);      // hit: short
//! core.compute(10);
//! let report = core.report();
//! assert_eq!(report.loads, 2);
//! assert!(report.read_stall_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapters;
mod compiled;
mod core_engine;
mod fetch;
mod port;
mod predictor;
mod report;
mod store_buffer;
mod trace;

pub use adapters::{CountingEngine, TeeEngine};
pub use compiled::{CompiledTrace, TraceGeometry};
pub use core_engine::{Core, CoreConfig};
pub use fetch::FetchUnit;
pub use port::{DataPort, MemPort};
pub use predictor::BranchPredictor;
pub use report::CoreReport;
pub use store_buffer::StoreBuffer;
pub use trace::{Trace, TraceEvent, TraceRecorder};

use sttcache_mem::Addr;

/// The event interface workloads drive.
///
/// Instrumented kernels (see `sttcache-workloads`) call these methods for
/// every architectural event; implementations account the timing. The
/// methods deliberately mirror an instruction stream: one call ≈ one
/// instruction.
pub trait Engine {
    /// A blocking load of `bytes` bytes at `addr`.
    fn load(&mut self, addr: Addr, bytes: usize);

    /// A store of `bytes` bytes at `addr` (buffered, non-blocking unless
    /// the store buffer is full).
    fn store(&mut self, addr: Addr, bytes: usize);

    /// A non-binding software-prefetch hint for the line at `addr`.
    fn prefetch(&mut self, addr: Addr);

    /// `ops` single-cycle ALU/FPU operations.
    fn compute(&mut self, ops: u64);

    /// A conditional branch with the given outcome.
    fn branch(&mut self, taken: bool);
}

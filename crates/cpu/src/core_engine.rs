//! The in-order core.

use crate::fetch::FetchUnit;
use crate::port::DataPort;
use crate::predictor::BranchPredictor;
use crate::report::CoreReport;
use crate::store_buffer::StoreBuffer;
use crate::Engine;
use sttcache_mem::{Addr, Cycle, DecodedAddr};

/// Core timing parameters.
///
/// Defaults model the paper's 1 GHz ARM Cortex-A9-like core: 1 IPC base,
/// 4-entry store buffer, 8-cycle mispredict refill, and one cycle of load
/// latency hidden per load (the A9's dual-issue window lets one independent
/// instruction execute under an outstanding load).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Store-buffer depth in entries.
    pub store_buffer_entries: usize,
    /// Pipeline-refill penalty per mispredicted branch, in cycles.
    pub mispredict_penalty: u64,
    /// Load-stall cycles hidden by issuing independent work under each
    /// outstanding load (0 = fully blocking).
    pub load_overlap_cycles: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            store_buffer_entries: 4,
            mispredict_penalty: 8,
            load_overlap_cycles: 1,
        }
    }
}

/// The in-order, blocking-load core.
///
/// Drive it through the [`Engine`] trait (usually by handing it to a
/// workload kernel) and read the result with [`Core::report`].
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Core<P> {
    config: CoreConfig,
    port: P,
    now: Cycle,
    start: Cycle,
    store_buffer: StoreBuffer,
    fetch: Option<FetchUnit>,
    predictor: BranchPredictor,
    instructions: u64,
    loads: u64,
    stores: u64,
    prefetches: u64,
    read_stall_cycles: u64,
    branch_stall_cycles: u64,
}

impl<P: DataPort> Core<P> {
    /// Creates a core at cycle 0 in front of `port`.
    pub fn new(config: CoreConfig, port: P) -> Self {
        Core::starting_at(config, port, 0)
    }

    /// Creates a core whose clock starts at `start` — used to continue on
    /// a hierarchy whose internal timing (banks, buffers) already reflects
    /// earlier activity, e.g. after a warm-up pass. [`Core::report`]
    /// counts cycles relative to `start`.
    pub fn starting_at(config: CoreConfig, port: P, start: Cycle) -> Self {
        Core {
            store_buffer: StoreBuffer::new(config.store_buffer_entries),
            config,
            port,
            now: start,
            start,
            fetch: None,
            predictor: BranchPredictor::new(),
            instructions: 0,
            loads: 0,
            stores: 0,
            prefetches: 0,
            read_stall_cycles: 0,
            branch_stall_cycles: 0,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Attaches an explicit instruction-fetch unit (default: ideal fetch).
    ///
    /// Use this to explore non-SRAM I-caches; with the paper's SRAM IL1
    /// the unit adds (almost) nothing, which is why the default omits it.
    pub fn attach_fetch_unit(&mut self, fetch: FetchUnit) {
        self.fetch = Some(fetch);
    }

    /// The attached fetch unit, if any.
    pub fn fetch_unit(&self) -> Option<&FetchUnit> {
        self.fetch.as_ref()
    }

    /// Charges instruction fetch for one instruction.
    fn fetch_instr(&mut self, control: Option<Option<bool>>) {
        if let Some(f) = self.fetch.as_mut() {
            self.now += f.step(self.now, control);
        }
    }

    /// The data port (for inspecting hierarchy statistics).
    pub fn port(&self) -> &P {
        &self.port
    }

    /// Mutable access to the data port.
    pub fn port_mut(&mut self) -> &mut P {
        &mut self.port
    }

    /// Finishes the run (drains the store buffer) and returns the report.
    ///
    /// The core may continue executing afterwards; the drain only advances
    /// time to the last outstanding store.
    pub fn report(&mut self) -> CoreReport {
        self.now = self.store_buffer.drain_all(self.now);
        CoreReport {
            cycles: self.now - self.start,
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            prefetches: self.prefetches,
            branches: self.predictor.branches(),
            mispredicts: self.predictor.mispredicts(),
            read_stall_cycles: self.read_stall_cycles,
            write_stall_cycles: self.store_buffer.full_stall_cycles(),
            branch_stall_cycles: self.branch_stall_cycles,
            fetch_stall_cycles: self.fetch.as_ref().map_or(0, |f| f.fetch_stall_cycles()),
        }
    }

    /// Consumes the core, returning the port.
    pub fn into_port(self) -> P {
        self.port
    }

    /// Shared body of [`Engine::load`] and [`Core::load_pre`]: `issue`
    /// charges the port through `read`, then stall accounting follows.
    #[inline]
    fn do_load(&mut self, addr: Addr, read: impl FnOnce(&mut P, Cycle) -> Cycle) {
        self.fetch_instr(None);
        self.instructions += 1;
        self.loads += 1;
        let issue = self.now;
        let data_ready = read(&mut self.port, issue);
        if sttcache_mem::invariants::enabled() && data_ready < issue {
            // A port must never deliver data before the request was
            // issued; saturating arithmetic below would silently mask it.
            sttcache_mem::invariants::report(
                "core",
                issue,
                Some(addr.0),
                format!("load data ready at {data_ready}, before issue"),
            );
        }
        // The load occupies one issue cycle; anything beyond that is stall,
        // of which `load_overlap_cycles` are hidden under independent work.
        let raw_stall = data_ready.saturating_sub(issue + 1);
        let stall = raw_stall.saturating_sub(self.config.load_overlap_cycles);
        self.read_stall_cycles += stall;
        if sttcache_mem::telemetry::enabled() {
            use std::sync::OnceLock;
            use sttcache_mem::telemetry::Slot;
            static STALL_HIST: OnceLock<Slot> = OnceLock::new();
            static STALL_SERIES: OnceLock<Slot> = OnceLock::new();
            STALL_HIST
                .get_or_init(|| Slot::histogram("core", "load_stall"))
                .observe(stall);
            STALL_SERIES
                .get_or_init(|| Slot::series("core", "read_stall_cycles"))
                .sample(issue, self.read_stall_cycles);
        }
        self.now = issue + 1 + stall;
    }

    /// Shared body of [`Engine::store`] and [`Core::store_pre`].
    #[inline]
    fn do_store(&mut self, addr: Addr, write: impl FnOnce(&mut P, Cycle) -> Cycle) {
        self.fetch_instr(None);
        self.instructions += 1;
        self.stores += 1;
        let issue_at = self.store_buffer.admit(self.now);
        let complete = write(&mut self.port, issue_at);
        if sttcache_mem::invariants::enabled() && complete < issue_at {
            sttcache_mem::invariants::report(
                "core",
                issue_at,
                Some(addr.0),
                format!("store completed at {complete}, before issue"),
            );
        }
        self.store_buffer.record_completion(complete);
        // The core resumes after the (possibly stalled) one-cycle issue.
        self.now = issue_at.max(self.now) + 1;
    }

    /// [`Engine::load`] with the address decomposition pre-computed by a
    /// trace-compilation pass (the compiled-replay fast path). `_bytes`
    /// mirrors [`Engine::load`]'s signature; the timing model is
    /// width-independent within a line.
    #[inline]
    pub fn load_pre(&mut self, d: DecodedAddr, _bytes: usize) {
        self.do_load(d.addr, |p, t| p.read_pre(d, t));
    }

    /// [`Engine::store`] for a pre-decoded address.
    #[inline]
    pub fn store_pre(&mut self, d: DecodedAddr, _bytes: usize) {
        self.do_store(d.addr, |p, t| p.write_pre(d, t));
    }

    /// [`Engine::prefetch`] for a pre-decoded address.
    #[inline]
    pub fn prefetch_pre(&mut self, d: DecodedAddr) {
        self.fetch_instr(None);
        self.instructions += 1;
        self.prefetches += 1;
        self.port.prefetch_pre(d, self.now);
        self.now += 1;
    }
}

impl<P: DataPort> Engine for Core<P> {
    fn load(&mut self, addr: Addr, _bytes: usize) {
        self.do_load(addr, |p, t| p.read(addr, t));
    }

    fn store(&mut self, addr: Addr, _bytes: usize) {
        self.do_store(addr, |p, t| p.write(addr, t));
    }

    fn prefetch(&mut self, addr: Addr) {
        self.fetch_instr(None);
        self.instructions += 1;
        self.prefetches += 1;
        self.port.prefetch(addr, self.now);
        self.now += 1;
    }

    fn compute(&mut self, ops: u64) {
        if self.fetch.is_some() {
            for _ in 0..ops {
                self.fetch_instr(None);
                self.now += 1;
            }
            self.instructions += ops;
            return;
        }
        self.instructions += ops;
        self.now += ops;
    }

    fn branch(&mut self, taken: bool) {
        self.fetch_instr(Some(Some(taken)));
        self.instructions += 1;
        let mispredict = self.predictor.predict_and_update(taken);
        self.now += 1;
        if mispredict {
            self.now += self.config.mispredict_penalty;
            self.branch_stall_cycles += self.config.mispredict_penalty;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted port with fixed read/write latencies.
    #[derive(Debug)]
    struct FixedPort {
        read_latency: u64,
        write_latency: u64,
        prefetched: Vec<Addr>,
    }

    impl FixedPort {
        fn new(read_latency: u64, write_latency: u64) -> Self {
            FixedPort {
                read_latency,
                write_latency,
                prefetched: Vec::new(),
            }
        }
    }

    impl DataPort for FixedPort {
        fn read(&mut self, _addr: Addr, now: Cycle) -> Cycle {
            now + self.read_latency
        }

        fn write(&mut self, _addr: Addr, now: Cycle) -> Cycle {
            now + self.write_latency
        }

        fn prefetch(&mut self, addr: Addr, _now: Cycle) {
            self.prefetched.push(addr);
        }
    }

    #[test]
    fn one_cycle_loads_do_not_stall() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(1, 1));
        core.load(Addr(0), 4);
        core.load(Addr(4), 4);
        let r = core.report();
        assert_eq!(r.cycles, 2);
        assert_eq!(r.read_stall_cycles, 0);
        assert!((r.ipc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slow_loads_stall_the_core() {
        // Default config hides one stall cycle per load (dual-issue
        // window); a 4-cycle load therefore costs 1 issue + 2 stall.
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(4, 2));
        core.load(Addr(0), 4);
        let r = core.report();
        assert_eq!(r.cycles, 3);
        assert_eq!(r.read_stall_cycles, 2);
    }

    #[test]
    fn fully_blocking_core_exposes_whole_latency() {
        let cfg = CoreConfig {
            load_overlap_cycles: 0,
            ..CoreConfig::default()
        };
        let mut core = Core::new(cfg, FixedPort::new(4, 2));
        core.load(Addr(0), 4);
        let r = core.report();
        assert_eq!(r.cycles, 4);
        assert_eq!(r.read_stall_cycles, 3);
    }

    #[test]
    fn buffered_stores_hide_write_latency() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(4, 100));
        // Four stores fit in the buffer: each costs one issue cycle.
        for i in 0..4u64 {
            core.store(Addr(i * 64), 4);
        }
        assert_eq!(core.now(), 4);
        // The fifth stalls until the first write completes (cycle 100).
        core.store(Addr(999), 4);
        assert!(core.now() >= 100);
        let r = core.report();
        assert!(r.write_stall_cycles > 0);
        // Draining pushes the final time past the last completion.
        assert!(r.cycles >= 200);
    }

    #[test]
    fn compute_advances_time_exactly() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(1, 1));
        core.compute(123);
        let r = core.report();
        assert_eq!(r.cycles, 123);
        assert_eq!(r.instructions, 123);
    }

    #[test]
    fn mispredicts_cost_the_refill_penalty() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(1, 1));
        // Alternating outcomes defeat the 2-bit counter.
        for i in 0..100 {
            core.branch(i % 2 == 0);
        }
        let r = core.report();
        assert!(r.mispredicts > 30);
        assert_eq!(r.branch_stall_cycles, r.mispredicts * 8);
        assert_eq!(r.cycles, 100 + r.branch_stall_cycles);
    }

    #[test]
    fn well_predicted_loops_cost_one_cycle_each() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(1, 1));
        for _ in 0..1000 {
            core.branch(true);
        }
        let r = core.report();
        assert!(r.branch_stall_cycles <= 8); // at most the cold mispredict
    }

    #[test]
    fn prefetch_reaches_the_port() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(1, 1));
        core.prefetch(Addr(0x40));
        core.prefetch(Addr(0x80));
        assert_eq!(core.port().prefetched, vec![Addr(0x40), Addr(0x80)]);
        let r = core.report();
        assert_eq!(r.prefetches, 2);
        assert_eq!(r.cycles, 2);
    }

    #[test]
    fn report_includes_final_drain() {
        let mut core = Core::new(CoreConfig::default(), FixedPort::new(1, 50));
        core.store(Addr(0), 4);
        assert_eq!(core.now(), 1);
        let r = core.report();
        assert_eq!(r.cycles, 50);
    }

    #[test]
    fn into_port_returns_the_port() {
        let core = Core::new(CoreConfig::default(), FixedPort::new(1, 1));
        let port = core.into_port();
        assert_eq!(port.read_latency, 1);
    }
}

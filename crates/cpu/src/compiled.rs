//! Compiled structure-of-arrays trace replay.
//!
//! [`Trace::replay_into`] walks an array-of-structs event vector and
//! re-derives the line/set/bank decomposition of every address on every
//! replay. In a record-once/replay-many sweep the same trace is replayed
//! hundreds of times, so that per-event address math — cheap as it is —
//! dominates the inner loop. [`CompiledTrace::compile`] lowers a trace
//! **once per (trace, geometry)** into structure-of-arrays columns with
//! the decomposition pre-computed; [`CompiledTrace::replay_into_core`]
//! then streams the columns through [`Core`]'s pre-decoded entry points
//! with no varint decode, no address math and no bounds checks in the hot
//! loop (column lengths are equalised by construction and verified once
//! by [`CompiledTrace::validate`]).
//!
//! The decomposition is geometry-specific: a compiled trace is only
//! replayable against a cache whose `(line_bytes, sets, banks)` match the
//! [`TraceGeometry`] it was compiled for. Ports that cannot exploit the
//! decomposition simply fall back to the plain [`DataPort`] path through
//! the `*_pre` default methods, so compiled replay is always
//! timing-identical to interpreted replay.
//!
//! # Example
//!
//! ```
//! use sttcache_cpu::{CompiledTrace, Engine, TraceGeometry, TraceRecorder};
//! use sttcache_mem::Addr;
//!
//! let mut rec = TraceRecorder::new();
//! rec.load(Addr(0x40), 4);
//! rec.compute(3);
//! let trace = rec.into_trace();
//!
//! let geom = TraceGeometry::new(64, 512, 4);
//! let compiled = CompiledTrace::compile(&trace, geom);
//! assert_eq!(compiled.len(), trace.len());
//! assert_eq!(compiled.decompile(), trace);
//! ```

use crate::core_engine::Core;
use crate::port::DataPort;
use crate::trace::{Trace, TraceEvent};
use crate::Engine;
use sttcache_mem::{Addr, DecodedAddr, LineAddr};

/// The `(line_bytes, sets, banks)` triple a trace is compiled against.
///
/// All three must be powers of two (the simulator's caches only support
/// power-of-two geometries) and small enough for the packed set/bank
/// column: at most 2^16 sets and 2^16 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceGeometry {
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Number of sets.
    pub sets: usize,
    /// Number of banks.
    pub banks: usize,
}

impl TraceGeometry {
    /// Creates a geometry, panicking on an unsupported triple.
    ///
    /// # Panics
    ///
    /// Panics if any component is not a power of two, or if `sets` or
    /// `banks` exceed 2^16 (the packed-column limit).
    pub fn new(line_bytes: usize, sets: usize, banks: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two() && sets.is_power_of_two() && banks.is_power_of_two(),
            "trace geometry must be powers of two: {line_bytes}B lines, {sets} sets, {banks} banks"
        );
        assert!(
            sets <= 1 << 16 && banks <= 1 << 16,
            "trace geometry exceeds packed-column limits: {sets} sets, {banks} banks"
        );
        TraceGeometry {
            line_bytes,
            sets,
            banks,
        }
    }

    /// Decomposes `addr` under this geometry.
    #[inline]
    pub fn decode(self, addr: Addr) -> DecodedAddr {
        DecodedAddr::decode(addr, self.line_bytes, self.sets, self.banks)
    }
}

/// Column opcodes. `Branch` splits into two opcodes so the hot loop never
/// touches a payload column for branches.
const OP_LOAD: u8 = 0;
const OP_STORE: u8 = 1;
const OP_PREFETCH: u8 = 2;
const OP_COMPUTE: u8 = 3;
const OP_BRANCH_TAKEN: u8 = 4;
const OP_BRANCH_NOT_TAKEN: u8 = 5;

/// A trace lowered into structure-of-arrays columns for one geometry.
///
/// Per event index `i`:
///
/// | column      | load/store        | prefetch      | compute   | branch |
/// |-------------|-------------------|---------------|-----------|--------|
/// | `ops[i]`    | `OP_LOAD`/`STORE` | `OP_PREFETCH` | `OP_COMPUTE` | `OP_BRANCH_*` |
/// | `args[i]`   | byte address      | byte address  | op count  | 0      |
/// | `widths[i]` | access width      | 0             | 0         | 0      |
/// | `lines[i]`  | line address      | line address  | 0         | 0      |
/// | `meta[i]`   | set<<16 \| bank   | set<<16 \| bank | 0       | 0      |
///
/// All five columns always have identical length ([`CompiledTrace::len`]),
/// which is what lets [`CompiledTrace::replay_into_core`] iterate them
/// zipped without per-element bounds checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTrace {
    geometry: TraceGeometry,
    ops: Vec<u8>,
    args: Vec<u64>,
    widths: Vec<u8>,
    lines: Vec<u64>,
    meta: Vec<u32>,
}

impl CompiledTrace {
    /// Lowers `trace` for `geometry`. Deterministic: the same trace and
    /// geometry always produce identical columns.
    pub fn compile(trace: &Trace, geometry: TraceGeometry) -> Self {
        let n = trace.len();
        let mut out = CompiledTrace {
            geometry,
            ops: Vec::with_capacity(n),
            args: Vec::with_capacity(n),
            widths: Vec::with_capacity(n),
            lines: Vec::with_capacity(n),
            meta: Vec::with_capacity(n),
        };
        for &ev in trace.events() {
            match ev {
                TraceEvent::Load { addr, bytes } => out.push_mem(OP_LOAD, addr, bytes),
                TraceEvent::Store { addr, bytes } => out.push_mem(OP_STORE, addr, bytes),
                TraceEvent::Prefetch { addr } => out.push_mem(OP_PREFETCH, addr, 0),
                TraceEvent::Compute { ops } => out.push_plain(OP_COMPUTE, ops as u64),
                TraceEvent::Branch { taken } => out.push_plain(
                    if taken {
                        OP_BRANCH_TAKEN
                    } else {
                        OP_BRANCH_NOT_TAKEN
                    },
                    0,
                ),
            }
        }
        debug_assert_eq!(out.validate(), Ok(()));
        out
    }

    /// Appends a memory event with its pre-computed decomposition.
    fn push_mem(&mut self, op: u8, addr: Addr, width: u8) {
        let d = self.geometry.decode(addr);
        self.ops.push(op);
        self.args.push(addr.0);
        self.widths.push(width);
        self.lines.push(d.line.0);
        self.meta.push(((d.set_index as u32) << 16) | d.bank as u32);
    }

    /// Appends a non-memory event (zeroed address columns).
    fn push_plain(&mut self, op: u8, arg: u64) {
        self.ops.push(op);
        self.args.push(arg);
        self.widths.push(0);
        self.lines.push(0);
        self.meta.push(0);
    }

    /// The geometry the trace was compiled for.
    pub fn geometry(&self) -> TraceGeometry {
        self.geometry
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Heap footprint of the columns in bytes — the unit the trace cache's
    /// LRU byte cap accounts compiled entries in.
    pub fn bytes(&self) -> usize {
        self.ops.capacity() * size_of::<u8>()
            + self.args.capacity() * size_of::<u64>()
            + self.widths.capacity() * size_of::<u8>()
            + self.lines.capacity() * size_of::<u64>()
            + self.meta.capacity() * size_of::<u32>()
    }

    /// Checks every cross-column invariant the hot loop relies on: equal
    /// column lengths, known opcodes, a decomposition that matches a fresh
    /// [`TraceGeometry::decode`] of each address, and zeroed payload
    /// columns for non-memory events.
    ///
    /// [`CompiledTrace::compile`] establishes these by construction (and
    /// `debug_assert`s this check); the method is public so differential
    /// harnesses can re-verify a compiled trace independently.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.ops.len();
        for (name, len) in [
            ("args", self.args.len()),
            ("widths", self.widths.len()),
            ("lines", self.lines.len()),
            ("meta", self.meta.len()),
        ] {
            if len != n {
                return Err(format!("column {name} has {len} entries, ops has {n}"));
            }
        }
        for i in 0..n {
            match self.ops[i] {
                OP_LOAD | OP_STORE | OP_PREFETCH => {
                    let d = self.geometry.decode(Addr(self.args[i]));
                    let expect = ((d.set_index as u32) << 16) | d.bank as u32;
                    if self.lines[i] != d.line.0 {
                        return Err(format!(
                            "event {i}: line {:#x} does not match address {:#x}",
                            self.lines[i], self.args[i]
                        ));
                    }
                    if self.meta[i] != expect {
                        return Err(format!(
                            "event {i}: set/bank {:#x} does not match address {:#x}",
                            self.meta[i], self.args[i]
                        ));
                    }
                }
                OP_COMPUTE => {}
                OP_BRANCH_TAKEN | OP_BRANCH_NOT_TAKEN => {
                    if self.args[i] != 0 {
                        return Err(format!("event {i}: branch with non-zero payload"));
                    }
                }
                other => return Err(format!("event {i}: unknown opcode {other}")),
            }
            if self.ops[i] > OP_PREFETCH && (self.lines[i] != 0 || self.meta[i] != 0) {
                return Err(format!("event {i}: non-memory event with address columns"));
            }
        }
        Ok(())
    }

    /// Reconstructs the original event stream — the round-trip inverse of
    /// [`CompiledTrace::compile`], used by equivalence tests.
    pub fn decompile(&self) -> Trace {
        (0..self.len())
            .map(|i| match self.ops[i] {
                OP_LOAD => TraceEvent::Load {
                    addr: Addr(self.args[i]),
                    bytes: self.widths[i],
                },
                OP_STORE => TraceEvent::Store {
                    addr: Addr(self.args[i]),
                    bytes: self.widths[i],
                },
                OP_PREFETCH => TraceEvent::Prefetch {
                    addr: Addr(self.args[i]),
                },
                OP_COMPUTE => TraceEvent::Compute {
                    ops: self.args[i] as u32,
                },
                OP_BRANCH_TAKEN => TraceEvent::Branch { taken: true },
                OP_BRANCH_NOT_TAKEN => TraceEvent::Branch { taken: false },
                other => unreachable!("validated compiled trace with opcode {other}"),
            })
            .collect()
    }

    /// Replays the columns into a core, in order — the monomorphic
    /// compiled-replay fast path.
    ///
    /// Timing- and state-identical to `self.decompile().replay_into(core)`
    /// whenever the core's port geometry matches [`CompiledTrace::geometry`]
    /// (the `*_pre` entry points `debug_assert` this); ports with a
    /// different geometry must not be driven through this path.
    pub fn replay_into_core<P: DataPort>(&self, core: &mut Core<P>) {
        let iter = self
            .ops
            .iter()
            .zip(&self.args)
            .zip(&self.widths)
            .zip(&self.lines)
            .zip(&self.meta);
        for ((((&op, &arg), &width), &line), &meta) in iter {
            match op {
                OP_LOAD | OP_STORE | OP_PREFETCH => {
                    let d = DecodedAddr {
                        addr: Addr(arg),
                        line: LineAddr(line),
                        set_index: (meta >> 16) as usize,
                        bank: (meta & 0xffff) as usize,
                    };
                    match op {
                        OP_LOAD => core.load_pre(d, width as usize),
                        OP_STORE => core.store_pre(d, width as usize),
                        _ => core.prefetch_pre(d),
                    }
                }
                OP_COMPUTE => core.compute(arg),
                OP_BRANCH_TAKEN => core.branch(true),
                OP_BRANCH_NOT_TAKEN => core.branch(false),
                other => unreachable!("validated compiled trace with opcode {other}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use crate::Engine;

    fn sample() -> Trace {
        let mut rec = TraceRecorder::new();
        rec.load(Addr(0x1000), 4);
        rec.compute(5);
        rec.store(Addr(0x2040), 16);
        rec.prefetch(Addr(0x3000));
        rec.branch(true);
        rec.branch(false);
        rec.load(Addr(u64::MAX), 8);
        rec.into_trace()
    }

    fn geom() -> TraceGeometry {
        TraceGeometry::new(64, 512, 4)
    }

    #[test]
    fn compile_decompile_roundtrips() {
        let t = sample();
        let c = CompiledTrace::compile(&t, geom());
        assert_eq!(c.len(), t.len());
        assert_eq!(c.decompile(), t);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn compile_is_deterministic() {
        let t = sample();
        assert_eq!(
            CompiledTrace::compile(&t, geom()),
            CompiledTrace::compile(&t, geom())
        );
    }

    #[test]
    fn empty_trace_compiles() {
        let c = CompiledTrace::compile(&Trace::new(), geom());
        assert!(c.is_empty());
        assert_eq!(c.decompile(), Trace::new());
    }

    #[test]
    fn columns_carry_the_decoded_addresses() {
        let t = sample();
        let g = geom();
        let c = CompiledTrace::compile(&t, g);
        let d = g.decode(Addr(0x1000));
        assert_eq!(c.lines[0], d.line.0);
        assert_eq!(c.meta[0], ((d.set_index as u32) << 16) | d.bank as u32);
    }

    #[test]
    fn validate_rejects_corrupted_columns() {
        let t = sample();
        let mut c = CompiledTrace::compile(&t, geom());
        c.lines[0] ^= 1;
        assert!(c.validate().is_err());

        let mut c = CompiledTrace::compile(&t, geom());
        c.meta[0] ^= 1;
        assert!(c.validate().is_err());

        let mut c = CompiledTrace::compile(&t, geom());
        c.ops[0] = 99;
        assert!(c.validate().is_err());

        let mut c = CompiledTrace::compile(&t, geom());
        c.args.pop();
        assert!(c.validate().is_err());
    }

    #[test]
    fn bytes_accounts_all_columns() {
        let c = CompiledTrace::compile(&sample(), geom());
        assert!(c.bytes() >= c.len() * (1 + 8 + 1 + 8 + 4));
    }

    #[test]
    fn geometry_rejects_non_power_of_two() {
        let bad = std::panic::catch_unwind(|| TraceGeometry::new(48, 512, 4));
        assert!(bad.is_err());
        let too_big = std::panic::catch_unwind(|| TraceGeometry::new(64, 1 << 20, 4));
        assert!(too_big.is_err());
    }

    /// A recording engine over the pre-decoded entry points: replaying a
    /// compiled trace into a real [`Core`] and into an interpreted replay
    /// of the decompiled trace must agree (exercised end-to-end in the
    /// bench crate's equivalence battery; here we check the event stream).
    #[test]
    fn replay_into_core_reproduces_the_stream() {
        use crate::port::MemPort;
        use crate::CoreConfig;
        use sttcache_mem::{Cache, CacheConfig, MainMemory, MemoryLevel};

        let t = sample();
        let cfg = CacheConfig::builder().build().unwrap();
        let g = TraceGeometry::new(cfg.line_bytes(), cfg.sets(), cfg.banks());
        let c = CompiledTrace::compile(&t, g);

        let mk = || {
            Core::new(
                CoreConfig::default(),
                MemPort::new(Cache::new(
                    CacheConfig::builder().build().unwrap(),
                    MainMemory::new(100),
                )),
            )
        };
        let mut compiled_core = mk();
        c.replay_into_core(&mut compiled_core);
        let mut interp_core = mk();
        t.replay_into(&mut interp_core);
        assert_eq!(compiled_core.report(), interp_core.report());
        assert_eq!(
            compiled_core.port().level().stats(),
            interp_core.port().level().stats()
        );
    }
}

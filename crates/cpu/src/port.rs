//! The core's data port.

use sttcache_mem::{Addr, Cycle, DecodedAddr, MemoryLevel};

/// The interface between the core and its L1 data-cache front-end.
///
/// The plain drop-in configurations adapt a [`MemoryLevel`] through
/// [`MemPort`]; the paper's VWB organization and the L0/EMSHR baselines
/// implement this trait directly in the `sttcache` crate.
pub trait DataPort {
    /// Issues a read at cycle `now`; returns the data-ready cycle.
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle;

    /// Issues a write at cycle `now`; returns the cycle at which the write
    /// has been accepted by the memory system.
    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle;

    /// Issues a non-binding prefetch hint at cycle `now`.
    ///
    /// The default implementation ignores the hint (plain caches in this
    /// model do not prefetch; the VWB front-end overrides this).
    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        let _ = (addr, now);
    }

    /// [`DataPort::read`] for an address whose line/set/bank decomposition
    /// was pre-computed by a trace-compilation pass.
    ///
    /// Must be timing- and state-identical to `read(d.addr, now)`; ports
    /// that can exploit the decomposition (a plain port over a cache whose
    /// geometry matches) override this, everything else falls back to the
    /// plain path.
    fn read_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        self.read(d.addr, now)
    }

    /// [`DataPort::write`] for a pre-decoded address.
    fn write_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        self.write(d.addr, now)
    }

    /// [`DataPort::prefetch`] for a pre-decoded address.
    fn prefetch_pre(&mut self, d: DecodedAddr, now: Cycle) {
        self.prefetch(d.addr, now);
    }
}

/// Adapts any [`MemoryLevel`] into a [`DataPort`].
///
/// # Example
///
/// ```
/// use sttcache_cpu::{DataPort, MemPort};
/// use sttcache_mem::{Addr, Cache, CacheConfig, MainMemory};
///
/// # fn main() -> Result<(), sttcache_mem::MemError> {
/// let dl1 = Cache::new(CacheConfig::builder().build()?, MainMemory::new(100));
/// let mut port = MemPort::new(dl1);
/// let done = port.read(Addr(0), 0);
/// assert!(done > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemPort<M> {
    level: M,
}

impl<M: MemoryLevel> MemPort<M> {
    /// Wraps a memory level.
    pub fn new(level: M) -> Self {
        MemPort { level }
    }

    /// The wrapped level.
    pub fn level(&self) -> &M {
        &self.level
    }

    /// Mutable access to the wrapped level.
    pub fn level_mut(&mut self) -> &mut M {
        &mut self.level
    }

    /// Unwraps the port.
    pub fn into_inner(self) -> M {
        self.level
    }
}

impl<M: MemoryLevel> DataPort for MemPort<M> {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.level.read(addr, now).complete_at
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.level.write(addr, now).complete_at
    }

    fn read_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        // Levels that can use the pre-computed decomposition take it
        // through `MemoryLevel::read_decoded` (a cache debug_asserts the
        // geometry match there); everything else falls back to the plain
        // path inside the default trait method.
        self.level.read_decoded(d, now).complete_at
    }

    fn write_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        self.level.write_decoded(d, now).complete_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttcache_mem::{Cache, CacheConfig, MainMemory};

    #[test]
    fn mem_port_forwards_and_exposes_level() {
        let dl1 = Cache::new(
            CacheConfig::builder().build().unwrap(),
            MainMemory::new(100),
        );
        let mut port = MemPort::new(dl1);
        let t = port.read(Addr(0), 0);
        assert_eq!(t, 104);
        assert_eq!(port.level().stats().reads, 1);
        let w = port.write(Addr(0), t + 10);
        assert_eq!(w, t + 12);
        let inner = port.into_inner();
        assert_eq!(inner.stats().writes, 1);
    }

    #[test]
    fn default_prefetch_is_a_no_op() {
        let dl1 = Cache::new(
            CacheConfig::builder().build().unwrap(),
            MainMemory::new(100),
        );
        let mut port = MemPort::new(dl1);
        port.prefetch(Addr(0), 0);
        assert_eq!(port.level().stats().accesses(), 0);
    }
}

//! The core-side store buffer.
//!
//! Stores retire into this buffer and drain to the data port in program
//! order; the core stalls only when the buffer is full. This decouples the
//! STT-MRAM write latency from the critical path (the reason the paper's
//! Fig. 4 shows writes contributing far less penalty than reads) while
//! still exposing it under store bursts.

use std::collections::VecDeque;
use sttcache_mem::Cycle;

/// A FIFO of in-flight stores, tracked by their port-completion cycles.
///
/// # Example
///
/// ```
/// use sttcache_cpu::StoreBuffer;
///
/// let mut sb = StoreBuffer::new(2);
/// assert_eq!(sb.admit(0), 0);   // space free: no stall
/// sb.record_completion(50);
/// assert_eq!(sb.admit(1), 1);
/// sb.record_completion(60);
/// // Buffer full: the third store waits for the oldest to complete.
/// assert_eq!(sb.admit(2), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreBuffer {
    completions: VecDeque<Cycle>,
    capacity: usize,
    stores: u64,
    full_stall_cycles: u64,
}

impl StoreBuffer {
    /// Creates a buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer needs at least one entry");
        StoreBuffer {
            completions: VecDeque::with_capacity(capacity),
            capacity,
            stores: 0,
            full_stall_cycles: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a store at cycle `now`; returns the cycle at which the core
    /// may issue it to the port (`now` unless the buffer is full). Call
    /// [`StoreBuffer::record_completion`] with the port completion time
    /// afterwards.
    pub fn admit(&mut self, now: Cycle) -> Cycle {
        self.drain(now);
        self.stores += 1;
        if sttcache_mem::telemetry::enabled() {
            use std::sync::OnceLock;
            use sttcache_mem::telemetry::Slot;
            static DEPTH_HIST: OnceLock<Slot> = OnceLock::new();
            static DEPTH_SERIES: OnceLock<Slot> = OnceLock::new();
            // Depth after the drain, before this store's completion is
            // recorded (read-only observation).
            let depth = self.completions.len() as u64;
            DEPTH_HIST
                .get_or_init(|| Slot::histogram("store-buffer", "depth"))
                .observe(depth);
            DEPTH_SERIES
                .get_or_init(|| Slot::series("store-buffer", "depth"))
                .sample(now, depth);
        }
        if self.completions.len() >= self.capacity {
            let oldest = *self.completions.front().expect("full buffer is non-empty");
            let stall = oldest.saturating_sub(now);
            self.full_stall_cycles += stall;
            self.drain(oldest);
            oldest.max(now)
        } else {
            now
        }
    }

    /// Records the port-completion cycle of the store admitted last.
    pub fn record_completion(&mut self, complete_at: Cycle) {
        self.completions.push_back(complete_at);
        if sttcache_mem::invariants::enabled() && self.completions.len() > self.capacity {
            // Entries drain in admission (FIFO) order, so more live
            // completions than entries means an admit/record pairing was
            // broken somewhere upstream.
            sttcache_mem::invariants::report(
                "store-buffer",
                complete_at,
                None,
                format!(
                    "{} in-flight stores exceed capacity {}",
                    self.completions.len(),
                    self.capacity
                ),
            );
        }
    }

    /// The cycle by which every buffered store has completed (`now` if the
    /// buffer is already empty). Used to close out a simulation.
    pub fn drain_all(&mut self, now: Cycle) -> Cycle {
        let end = self
            .completions
            .iter()
            .copied()
            .max()
            .unwrap_or(now)
            .max(now);
        self.completions.clear();
        end
    }

    /// Occupancy at cycle `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.drain(now);
        self.completions.len()
    }

    /// Stores admitted.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Cycles the core stalled on a full buffer.
    pub fn full_stall_cycles(&self) -> u64 {
        self.full_stall_cycles
    }

    /// Clears counters (contents kept).
    pub fn reset_stats(&mut self) {
        self.stores = 0;
        self.full_stall_cycles = 0;
    }

    fn drain(&mut self, now: Cycle) {
        while let Some(&done) = self.completions.front() {
            if done <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_without_stall_until_full() {
        let mut sb = StoreBuffer::new(4);
        for i in 0..4 {
            assert_eq!(sb.admit(i), i);
            sb.record_completion(100 + i);
        }
        assert_eq!(sb.admit(10), 100);
        assert_eq!(sb.full_stall_cycles(), 90);
    }

    #[test]
    fn completed_stores_free_entries() {
        let mut sb = StoreBuffer::new(1);
        assert_eq!(sb.admit(0), 0);
        sb.record_completion(5);
        // At cycle 10 the store has drained.
        assert_eq!(sb.admit(10), 10);
        assert_eq!(sb.full_stall_cycles(), 0);
    }

    #[test]
    fn drain_all_returns_last_completion() {
        let mut sb = StoreBuffer::new(4);
        sb.admit(0);
        sb.record_completion(42);
        sb.admit(1);
        sb.record_completion(17);
        assert_eq!(sb.drain_all(5), 42);
        assert_eq!(sb.occupancy(5), 0);
    }

    #[test]
    fn drain_all_on_empty_returns_now() {
        let mut sb = StoreBuffer::new(2);
        assert_eq!(sb.drain_all(33), 33);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = StoreBuffer::new(0);
    }

    #[test]
    fn stats_reset() {
        let mut sb = StoreBuffer::new(1);
        sb.admit(0);
        sb.record_completion(100);
        sb.admit(1);
        sb.reset_stats();
        assert_eq!(sb.stores(), 0);
        assert_eq!(sb.full_stall_cycles(), 0);
    }
}

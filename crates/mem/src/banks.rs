//! Bank scheduling.
//!
//! The paper simulates "a banked NVM array, so no conflict will exist if
//! both operations target different banks. Otherwise, the processor must be
//! stalled". Each bank tracks the cycle until which it is busy; a request to
//! a busy bank is delayed to the bank's free cycle and the delay is reported
//! so the platform can attribute the stall.

use crate::addr::Cycle;
use crate::telemetry::Slot;

/// Per-bank busy-until scheduler.
///
/// # Example
///
/// ```
/// use sttcache_mem::BankSchedule;
///
/// let mut banks = BankSchedule::new(2);
/// // Occupy bank 0 for cycles 10..14 (e.g. a 4-cycle VWB promotion).
/// let start = banks.reserve(0, 10, 4);
/// assert_eq!(start, 10);
/// // A conflicting access to bank 0 waits; bank 1 does not.
/// assert_eq!(banks.reserve(0, 12, 1), 14);
/// assert_eq!(banks.reserve(1, 12, 1), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankSchedule {
    free_at: Vec<Cycle>,
    conflict_cycles: u64,
    /// Telemetry component label (the owning cache's name; see
    /// [`BankSchedule::set_telemetry_component`]).
    component: &'static str,
    /// Pre-resolved telemetry slots for the armed fast path, re-resolved
    /// whenever the component label changes.
    slot_reservations: Slot,
    slot_busy_cycles: Slot,
    slot_conflicts: Slot,
}

impl BankSchedule {
    /// Creates a schedule for `banks` banks, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        BankSchedule {
            free_at: vec![0; banks],
            conflict_cycles: 0,
            component: "cache",
            slot_reservations: Slot::indexed("cache", "bank_reservations"),
            slot_busy_cycles: Slot::indexed("cache", "bank_busy_cycles"),
            slot_conflicts: Slot::indexed("cache", "bank_conflict_cycles"),
        }
    }

    /// Names the component telemetry is recorded under (the owning
    /// cache's label, e.g. `"dl1"`).
    pub fn set_telemetry_component(&mut self, component: &'static str) {
        self.component = component;
        self.slot_reservations = Slot::indexed(component, "bank_reservations");
        self.slot_busy_cycles = Slot::indexed(component, "bank_busy_cycles");
        self.slot_conflicts = Slot::indexed(component, "bank_conflict_cycles");
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.free_at.len()
    }

    /// Reserves `bank` for `occupancy` cycles starting no earlier than
    /// `now`; returns the actual start cycle (`>= now`, delayed past any
    /// in-flight operation on the same bank).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn reserve(&mut self, bank: usize, now: Cycle, occupancy: u64) -> Cycle {
        let start = self.free_at[bank].max(now);
        self.conflict_cycles += start - now;
        self.free_at[bank] = start + occupancy;
        if crate::telemetry::enabled() {
            self.slot_reservations.add_at(bank, 1);
            self.slot_busy_cycles.add_at(bank, occupancy);
            if start > now {
                self.slot_conflicts.add_at(bank, start - now);
            }
        }
        if crate::invariants::enabled() && self.free_at[bank] < now + occupancy {
            // The schedule lost time: the reservation we just made ends
            // before `now + occupancy`, so the conflict accounting above
            // cannot be consistent with the bank's busy window.
            crate::invariants::report(
                "banks",
                now,
                None,
                format!(
                    "bank {bank} free_at {} < now {now} + occupancy {occupancy}",
                    self.free_at[bank]
                ),
            );
        }
        start
    }

    /// [`BankSchedule::reserve`] minus the gated telemetry/invariant
    /// observers: identical `free_at`/`conflict_cycles` mutation, no gate
    /// probes. Only sound to call when both gates are known to be off —
    /// the cache's hit fast path establishes exactly that before using it.
    #[inline]
    pub(crate) fn reserve_quiet(&mut self, bank: usize, now: Cycle, occupancy: u64) -> Cycle {
        let start = self.free_at[bank].max(now);
        self.conflict_cycles += start - now;
        self.free_at[bank] = start + occupancy;
        start
    }

    /// The cycle at which `bank` becomes free.
    pub fn free_at(&self, bank: usize) -> Cycle {
        self.free_at[bank]
    }

    /// Whether `bank` is busy at cycle `now`.
    pub fn is_busy(&self, bank: usize, now: Cycle) -> bool {
        self.free_at[bank] > now
    }

    /// Total cycles requests have waited on busy banks since construction
    /// or the last [`BankSchedule::reset_stats`].
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }

    /// Clears the conflict counter (bank state is kept).
    pub fn reset_stats(&mut self) {
        self.conflict_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_banks_are_free() {
        let banks = BankSchedule::new(4);
        for b in 0..4 {
            assert!(!banks.is_busy(b, 0));
        }
    }

    #[test]
    fn same_bank_serializes() {
        let mut banks = BankSchedule::new(1);
        assert_eq!(banks.reserve(0, 0, 4), 0);
        assert_eq!(banks.reserve(0, 1, 4), 4);
        assert_eq!(banks.reserve(0, 100, 4), 100);
    }

    #[test]
    fn different_banks_overlap() {
        let mut banks = BankSchedule::new(2);
        assert_eq!(banks.reserve(0, 0, 10), 0);
        assert_eq!(banks.reserve(1, 0, 10), 0);
    }

    #[test]
    fn conflict_cycles_accumulate() {
        let mut banks = BankSchedule::new(1);
        banks.reserve(0, 0, 4);
        banks.reserve(0, 1, 1); // waits 3
        banks.reserve(0, 2, 1); // waits 3 (bank free at 5)
        assert_eq!(banks.conflict_cycles(), 6);
        banks.reset_stats();
        assert_eq!(banks.conflict_cycles(), 0);
        // State survives the stat reset.
        assert!(banks.is_busy(0, 5));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankSchedule::new(0);
    }
}

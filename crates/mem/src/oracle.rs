//! Functional shadow-memory oracle: a flat byte-addressed golden model.
//!
//! The simulator is timing-only — no cache level stores data payloads, the
//! functional values live in the workload itself. The oracle closes that
//! gap for verification: every load/store/prefetch an engine issues is
//! mirrored into a `ShadowOracle`, which stamps a *deterministic* value
//! pattern on each store (derived from the store sequence number and the
//! byte address, so it is identical for every cache organization replaying
//! the same trace) and remembers which memory it has touched.
//!
//! After a run the hierarchy is drained (`flush_dirty` at every level) and
//! checked against the oracle:
//!
//! * the final byte image — and therefore its [`image_hash`] — must be
//!   identical across all organizations replaying the same trace
//!   (`ShadowOracle::image_hash`);
//! * every line still resident in any cache or victim buffer must cover at
//!   least one byte the program actually touched
//!   ([`intersects_accessed`]) — a "phantom line" means the timing model
//!   invented an access;
//! * no dirty state may remain anywhere once draining completes (checked
//!   by the harness via the levels' own `dirty_lines` reporting).
//!
//! [`image_hash`]: ShadowOracle::image_hash
//! [`intersects_accessed`]: ShadowOracle::intersects_accessed

use std::collections::{BTreeSet, HashMap};

/// Backing pages are 4 KiB: small enough that sparse traces stay sparse,
/// large enough that PolyBench footprints need only a handful.
const PAGE_BYTES: u64 = 4096;

/// Touched-memory bookkeeping granularity: the smallest line size any
/// configuration uses (the SRAM DL1's 32 B lines), so a chunk never spans
/// two lines of any level.
const CHUNK_BYTES: u64 = 32;

/// Flat byte-addressed golden memory with deterministic store values and
/// touched-range tracking.
#[derive(Debug, Default)]
pub struct ShadowOracle {
    pages: HashMap<u64, Box<[u8]>>,
    /// Monotone store sequence number; the value stamped by store `n` at
    /// byte `a` is `mix(n, a)`, so the final image depends only on the
    /// access trace, never on timing.
    store_seq: u64,
    /// 32 B-granular chunks read, written or prefetched.
    accessed: BTreeSet<u64>,
    /// 32 B-granular chunks written.
    written: BTreeSet<u64>,
    loads: u64,
    stores: u64,
}

/// SplitMix64 finalizer — the same mixer the bench test-kit uses, kept
/// dependency-free here.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShadowOracle {
    /// An empty oracle: all of memory reads as zero, nothing touched.
    pub fn new() -> Self {
        ShadowOracle::default()
    }

    /// Mirrors a store of `bytes` bytes at `addr`, stamping the
    /// deterministic value pattern for this store's sequence number.
    pub fn store(&mut self, addr: u64, bytes: usize) {
        self.store_seq += 1;
        let seq = self.store_seq;
        for i in 0..bytes as u64 {
            let a = addr.wrapping_add(i);
            let value = mix(seq ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as u8;
            self.write_byte(a, value);
        }
        self.mark(addr, bytes, true);
        self.stores += 1;
    }

    /// Mirrors a load of `bytes` bytes at `addr`; returns a checksum of
    /// the bytes read so differential harnesses can compare load-observed
    /// values, not just final images.
    pub fn load(&mut self, addr: u64, bytes: usize) -> u64 {
        let mut h = FNV_OFFSET;
        for i in 0..bytes as u64 {
            h = fnv_step(h, self.read_byte(addr.wrapping_add(i)));
        }
        self.mark(addr, bytes, false);
        self.loads += 1;
        h
    }

    /// Mirrors a software prefetch: marks the byte's chunk as touched
    /// (a prefetched line is legitimately resident) without changing data.
    pub fn touch(&mut self, addr: u64) {
        self.mark(addr, 1, false);
    }

    /// The byte at `addr` (zero if never written).
    pub fn read_byte(&self, addr: u64) -> u8 {
        let (page, off) = (addr / PAGE_BYTES, (addr % PAGE_BYTES) as usize);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// A copy of `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64)
            .map(|i| self.read_byte(addr.wrapping_add(i)))
            .collect()
    }

    /// FNV-1a hash of the `len` bytes at `addr` — the golden image of one
    /// cache line, for byte-for-byte comparison reports.
    pub fn line_checksum(&self, addr: u64, len: usize) -> u64 {
        let mut h = FNV_OFFSET;
        for i in 0..len as u64 {
            h = fnv_step(h, self.read_byte(addr.wrapping_add(i)));
        }
        h
    }

    /// Order-independent digest of the full written image: hashes every
    /// written chunk (in address order) together with its contents. Two
    /// runs of the same trace must produce the same digest regardless of
    /// cache organization or timing.
    pub fn image_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &chunk in &self.written {
            for b in chunk.to_le_bytes() {
                h = fnv_step(h, b);
            }
            for i in 0..CHUNK_BYTES {
                h = fnv_step(h, self.read_byte(chunk * CHUNK_BYTES + i));
            }
        }
        h
    }

    /// Whether the byte range `[base, base + len)` overlaps any memory the
    /// program touched. Every line resident in a drained hierarchy must
    /// satisfy this; one that does not is a phantom allocation.
    pub fn intersects_accessed(&self, base: u64, len: usize) -> bool {
        let first = base / CHUNK_BYTES;
        let last = base.wrapping_add(len.max(1) as u64 - 1) / CHUNK_BYTES;
        self.accessed.range(first..=last).next().is_some()
    }

    /// Number of distinct 32 B chunks touched by any access.
    pub fn accessed_chunks(&self) -> usize {
        self.accessed.len()
    }

    /// Number of distinct 32 B chunks written.
    pub fn written_chunks(&self) -> usize {
        self.written.len()
    }

    /// Loads mirrored so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores mirrored so far.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    fn write_byte(&mut self, addr: u64, value: u8) {
        let (page, off) = (addr / PAGE_BYTES, (addr % PAGE_BYTES) as usize);
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice())[off] = value;
    }

    fn mark(&mut self, addr: u64, bytes: usize, written: bool) {
        let first = addr / CHUNK_BYTES;
        let last = addr.wrapping_add(bytes.max(1) as u64 - 1) / CHUNK_BYTES;
        for chunk in first..=last {
            self.accessed.insert(chunk);
            if written {
                self.written.insert(chunk);
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let o = ShadowOracle::new();
        assert_eq!(o.read_byte(0xDEAD_BEEF), 0);
        assert_eq!(o.read_bytes(12345, 8), vec![0; 8]);
    }

    #[test]
    fn same_trace_same_image() {
        let run = || {
            let mut o = ShadowOracle::new();
            o.store(0x100, 8);
            o.store(0x104, 4);
            o.load(0x100, 8);
            (o.read_bytes(0x100, 16), o.image_hash())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn later_store_wins_on_overlap() {
        let mut a = ShadowOracle::new();
        a.store(0x200, 8);
        let first = a.read_bytes(0x200, 8);
        a.store(0x200, 8);
        let second = a.read_bytes(0x200, 8);
        assert_ne!(first, second, "sequence number must change the stamp");
    }

    #[test]
    fn load_checksum_reflects_data() {
        let mut o = ShadowOracle::new();
        let empty = o.load(0x300, 8);
        o.store(0x300, 8);
        let full = o.load(0x300, 8);
        assert_ne!(empty, full);
        assert_eq!(full, o.line_checksum(0x300, 8));
    }

    #[test]
    fn straddling_access_marks_both_lines() {
        let mut o = ShadowOracle::new();
        o.store(CHUNK_BYTES - 2, 4); // bytes 30..34 straddle chunks 0 and 1
        assert!(o.intersects_accessed(0, 32));
        assert!(o.intersects_accessed(32, 32));
        assert!(!o.intersects_accessed(64, 32));
        assert_eq!(o.written_chunks(), 2);
    }

    #[test]
    fn prefetch_marks_accessed_without_writing() {
        let mut o = ShadowOracle::new();
        o.touch(0x1000);
        assert!(o.intersects_accessed(0x1000, 64));
        assert_eq!(o.written_chunks(), 0);
        assert_eq!(o.accessed_chunks(), 1);
    }

    #[test]
    fn counters_track_mirrored_events() {
        let mut o = ShadowOracle::new();
        o.store(0, 4);
        o.load(0, 4);
        o.load(8, 4);
        assert_eq!(o.stores(), 1);
        assert_eq!(o.loads(), 2);
    }
}

//! Combined observer-armed gate for the resident-hit fast paths.
//!
//! The fast paths in [`Cache`] must bail whenever *either* the telemetry
//! gate or the invariant gate is armed. Checking both per access costs
//! two atomic loads and two branches; since each source gate changes
//! only through its `set_enabled` function or its one-time environment
//! read, their disjunction is cached here as a third tri-state atomic
//! and the steady-state check is a single relaxed load.
//!
//! [`Cache`]: crate::Cache

use std::sync::atomic::{AtomicU8, Ordering};

/// Combined state: 0 = uninitialised, 1 = neither armed, 2 = some armed.
static ARMED: AtomicU8 = AtomicU8::new(0);

/// Whether any observer (telemetry or invariants) is armed.
#[inline]
pub(crate) fn any_observer_armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => refresh(),
    }
}

/// Recomputes the cached disjunction from the two source gates, forcing
/// their environment reads if they have not happened yet. Both
/// `set_enabled` functions call this after every store, so the cache
/// cannot go stale: once initialised, the source gates only move through
/// `set_enabled`.
#[cold]
pub(crate) fn refresh() -> bool {
    let on = crate::telemetry::enabled() || crate::invariants::enabled();
    ARMED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_gate_tracks_both_sources() {
        // Like the other gate-toggling tests in this crate, this briefly
        // owns the process-wide gates and restores them to off.
        crate::telemetry::set_enabled(false);
        crate::invariants::set_enabled(false);
        assert!(!any_observer_armed());

        crate::telemetry::set_enabled(true);
        assert!(any_observer_armed());
        crate::telemetry::set_enabled(false);
        assert!(!any_observer_armed());

        crate::invariants::set_enabled(true);
        assert!(any_observer_armed());
        crate::invariants::set_enabled(false);
        assert!(!any_observer_armed());
    }
}

//! Addresses, line addresses and cycle counts.

use std::fmt;

/// A simulation clock-cycle count.
pub type Cycle = u64;

/// A byte address in the simulated physical address space.
///
/// # Example
///
/// ```
/// use sttcache_mem::Addr;
///
/// let a = Addr(0x1234);
/// assert_eq!(a.line(64).0, 0x1234 / 64);
/// assert_eq!(a.offset_in_line(64), 0x34 % 64 + 0x1200 % 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The line address for a line size of `line_bytes` (power of two).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: usize) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }

    /// The byte offset of this address within its line.
    pub fn offset_in_line(self, line_bytes: usize) -> usize {
        debug_assert!(line_bytes.is_power_of_two());
        (self.0 & (line_bytes as u64 - 1)) as usize
    }

    /// Whether the `size`-byte access starting here stays within one line.
    pub fn fits_in_line(self, size: usize, line_bytes: usize) -> bool {
        size > 0 && self.offset_in_line(line_bytes) + size <= line_bytes
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A line-granular address (byte address divided by the line size).
///
/// Line addresses are only comparable within one level of the hierarchy
/// (levels may have different line sizes); the newtype prevents mixing them
/// with byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    pub fn base(self, line_bytes: usize) -> Addr {
        debug_assert!(line_bytes.is_power_of_two());
        Addr(self.0 << line_bytes.trailing_zeros())
    }

    /// The set index for `sets` sets (power of two).
    pub fn set_index(self, sets: usize) -> usize {
        debug_assert!(sets.is_power_of_two());
        (self.0 & (sets as u64 - 1)) as usize
    }

    /// The tag for `sets` sets.
    pub fn tag(self, sets: usize) -> u64 {
        debug_assert!(sets.is_power_of_two());
        self.0 >> sets.trailing_zeros()
    }

    /// Reconstructs a line address from tag and set index.
    pub fn from_parts(tag: u64, set_index: usize, sets: usize) -> Self {
        debug_assert!(sets.is_power_of_two());
        LineAddr((tag << sets.trailing_zeros()) | set_index as u64)
    }

    /// The bank this line maps to under line-interleaving across `banks`
    /// banks (power of two).
    pub fn bank(self, banks: usize) -> usize {
        debug_assert!(banks.is_power_of_two());
        (self.0 & (banks as u64 - 1)) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// A byte address bundled with its line/set/bank decomposition under one
/// specific cache geometry.
///
/// Produced once per event by a trace-compilation pass and consumed by the
/// pre-decoded access paths ([`Cache::read_decoded`]), which skip the
/// per-access shift/mask address math. The decomposition is only
/// meaningful for the geometry it was computed against; the decoded
/// paths `debug_assert` consistency.
///
/// [`Cache::read_decoded`]: crate::Cache::read_decoded
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// The byte address.
    pub addr: Addr,
    /// `addr`'s line address under the geometry's line size.
    pub line: LineAddr,
    /// `line`'s set index under the geometry's set count.
    pub set_index: usize,
    /// `line`'s bank under the geometry's bank count.
    pub bank: usize,
}

impl DecodedAddr {
    /// Decomposes `addr` for a `(line_bytes, sets, banks)` geometry (all
    /// powers of two).
    pub fn decode(addr: Addr, line_bytes: usize, sets: usize, banks: usize) -> Self {
        let line = addr.line(line_bytes);
        DecodedAddr {
            addr,
            line,
            set_index: line.set_index(sets),
            bank: line.bank(banks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_offset_roundtrip() {
        let a = Addr(0xdead_beef);
        let line = a.line(64);
        assert_eq!(line.base(64).0 + a.offset_in_line(64) as u64, a.0);
    }

    #[test]
    fn set_tag_roundtrip() {
        let line = LineAddr(0xabcd_ef01);
        let sets = 512;
        let rebuilt = LineAddr::from_parts(line.tag(sets), line.set_index(sets), sets);
        assert_eq!(rebuilt, line);
    }

    #[test]
    fn fits_in_line_boundaries() {
        let a = Addr(60);
        assert!(a.fits_in_line(4, 64));
        assert!(!a.fits_in_line(5, 64));
        assert!(!a.fits_in_line(0, 64));
        assert!(Addr(0).fits_in_line(64, 64));
    }

    #[test]
    fn bank_interleaving_cycles_through_banks() {
        let banks = 4;
        let seen: Vec<usize> = (0..8).map(|i| LineAddr(i).bank(banks)).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(255)), "ff");
        assert_eq!(LineAddr(16).to_string(), "line 0x10");
    }

    #[test]
    fn from_u64() {
        assert_eq!(Addr::from(7u64), Addr(7));
    }

    #[test]
    fn decode_matches_the_piecewise_math() {
        for raw in [0u64, 0x1234, 0xdead_beef, u64::MAX] {
            let a = Addr(raw);
            let d = DecodedAddr::decode(a, 64, 512, 4);
            assert_eq!(d.addr, a);
            assert_eq!(d.line, a.line(64));
            assert_eq!(d.set_index, a.line(64).set_index(512));
            assert_eq!(d.bank, a.line(64).bank(4));
        }
    }
}

//! Miss-status holding registers.
//!
//! An MSHR file tracks outstanding line fills so that a second access to a
//! line that is already being fetched merges with the in-flight miss instead
//! of issuing a duplicate request. With the paper's in-order blocking core,
//! concurrency comes from software prefetches into the VWB and from the
//! decoupled store path; the EMSHR baseline (`sttcache::baselines`) builds
//! on this file by also *retaining* filled entries so they can serve reads.

use crate::addr::{Cycle, LineAddr};
use crate::invariants;

/// One in-flight (or retained) miss entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    line: LineAddr,
    /// Cycle at which the fill data arrives.
    ready_at: Cycle,
    /// Number of accesses merged into this entry (including the allocator).
    targets: u32,
}

/// Result of consulting the MSHR file for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// The line is already in flight; the access completes at `ready_at`.
    Merged {
        /// When the in-flight fill delivers the line.
        ready_at: Cycle,
    },
    /// A new entry was allocated; the caller must perform the fill and
    /// call [`MshrFile::complete`] with the fill time.
    Allocated,
    /// No entry is free; the access must wait until `retry_at` and try
    /// again (the file's earliest completion).
    Full {
        /// When the earliest in-flight entry retires.
        retry_at: Cycle,
    },
}

/// A file of miss-status holding registers.
///
/// # Example
///
/// ```
/// use sttcache_mem::{MshrFile, MshrOutcome, LineAddr};
///
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.probe_or_allocate(LineAddr(1), 0), MshrOutcome::Allocated);
/// mshrs.complete(LineAddr(1), 50);
/// // A second access to the same line merges with the in-flight fill.
/// assert_eq!(
///     mshrs.probe_or_allocate(LineAddr(1), 10),
///     MshrOutcome::Merged { ready_at: 50 }
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    merges: u64,
    full_events: u64,
    /// High-water mark over every `ready_at` ever recorded by
    /// [`MshrFile::complete`]. Entries are reclaimed lazily, so
    /// `entries.is_empty()` is useless as an idleness test; this watermark
    /// gives an O(1) sound one (see [`MshrFile::fills_pending`]).
    max_ready_at: Cycle,
    /// Telemetry component label (the owning cache's name).
    component: &'static str,
    /// Pre-resolved occupancy telemetry slots (histogram + series).
    slot_occ_hist: crate::telemetry::Slot,
    slot_occ_series: crate::telemetry::Slot,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mshr file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            merges: 0,
            full_events: 0,
            max_ready_at: 0,
            component: "cache",
            slot_occ_hist: crate::telemetry::Slot::histogram("cache", "mshr_occupancy"),
            slot_occ_series: crate::telemetry::Slot::series("cache", "mshr_occupancy"),
        }
    }

    /// Names the component telemetry is recorded under (the owning
    /// cache's label, e.g. `"dl1"`).
    pub fn set_telemetry_component(&mut self, component: &'static str) {
        self.component = component;
        self.slot_occ_hist = crate::telemetry::Slot::histogram(component, "mshr_occupancy");
        self.slot_occ_series = crate::telemetry::Slot::series(component, "mshr_occupancy");
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries at cycle `now` (entries whose fill has not
    /// yet retired).
    pub fn occupancy(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.ready_at > now).count()
    }

    /// Consults the file for a miss on `line` at cycle `now`.
    ///
    /// Retired entries (fills that completed at or before `now`) are
    /// reclaimed lazily here.
    pub fn probe_or_allocate(&mut self, line: LineAddr, now: Cycle) -> MshrOutcome {
        self.entries.retain(|e| e.ready_at > now || e.ready_at == 0);
        if invariants::enabled() {
            self.check_reclaimed(now);
        }
        if crate::telemetry::enabled() {
            // Outstanding-miss depth right after lazy reclamation: every
            // remaining entry is live (in flight or awaiting completion).
            let depth = self.entries.len() as u64;
            self.slot_occ_hist.observe(depth);
            self.slot_occ_series.sample(now, depth);
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.targets += 1;
            self.merges += 1;
            return MshrOutcome::Merged {
                ready_at: e.ready_at,
            };
        }
        if self.entries.len() >= self.capacity {
            self.full_events += 1;
            let retry_at = self
                .entries
                .iter()
                .map(|e| e.ready_at)
                .min()
                .expect("full file is non-empty");
            return MshrOutcome::Full { retry_at };
        }
        // ready_at == 0 marks "allocated, fill time not yet known".
        self.entries.push(MshrEntry {
            line,
            ready_at: 0,
            targets: 1,
        });
        MshrOutcome::Allocated
    }

    /// Records the fill-completion time for a previously allocated entry.
    ///
    /// # Panics
    ///
    /// Panics if no allocated entry for `line` exists.
    pub fn complete(&mut self, line: LineAddr, ready_at: Cycle) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.line == line && e.ready_at == 0)
            .expect("complete() without a matching allocation");
        e.ready_at = ready_at;
        self.max_ready_at = self.max_ready_at.max(ready_at);
    }

    /// Whether any fill could still be in flight at cycle `now`.
    ///
    /// `false` guarantees [`MshrFile::ready_time`] returns `None` for
    /// *every* line at `now` (an entry is in flight only while
    /// `ready_at > now`, and `max_ready_at` bounds all of them), so the
    /// cache's hit fast path can skip the per-access entry scan. The test
    /// is conservative: it may report `true` for a while after the last
    /// fill has retired, which merely routes those accesses through the
    /// general path.
    #[inline]
    pub fn fills_pending(&self, now: Cycle) -> bool {
        self.max_ready_at > now
    }

    /// Whether `line` is currently tracked (in flight or awaiting
    /// completion).
    pub fn contains(&self, line: LineAddr, now: Cycle) -> bool {
        self.entries
            .iter()
            .any(|e| e.line == line && (e.ready_at == 0 || e.ready_at > now))
    }

    /// The fill-completion time of `line` if it is in flight at `now`
    /// (used to delay tag-array hits on lines whose data has not arrived).
    pub fn ready_time(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        self.entries
            .iter()
            .find(|e| e.line == line && e.ready_at > now)
            .map(|e| e.ready_at)
    }

    /// Total merged (secondary) accesses.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of times an access found the file full.
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Clears counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.merges = 0;
        self.full_events = 0;
    }

    /// Allocations whose fill time was never recorded (`ready_at == 0`).
    ///
    /// Between [`probe_or_allocate`](Self::probe_or_allocate) and
    /// [`complete`](Self::complete) this is legitimately non-zero, but at
    /// any quiescent point — after a cache access returns, or at end of
    /// run — a non-zero value is a leaked entry: it survives lazy
    /// reclamation forever while being invisible to
    /// [`occupancy`](Self::occupancy).
    pub fn unfinished_allocations(&self) -> usize {
        self.entries.iter().filter(|e| e.ready_at == 0).count()
    }

    /// Structural check, reported through
    /// [`invariants`](crate::invariants): the file never holds more than
    /// `capacity` entries. Safe to call at any time (retired entries may
    /// legitimately linger until the next lazy reclamation, so outliving
    /// `ready_at` is only checked on the reclamation path itself).
    pub fn check_invariants(&self, now: Cycle) {
        if self.entries.len() > self.capacity {
            invariants::report(
                "mshr",
                now,
                None,
                format!(
                    "{} entries exceed capacity {}",
                    self.entries.len(),
                    self.capacity
                ),
            );
        }
    }

    /// Reclamation-path check: immediately after retiring entries at
    /// `now`, none with `0 < ready_at <= now` may remain (an entry that
    /// outlived its `ready_at` would serve stale in-flight state).
    fn check_reclaimed(&self, now: Cycle) {
        self.check_invariants(now);
        for e in &self.entries {
            if e.ready_at != 0 && e.ready_at <= now {
                invariants::report(
                    "mshr",
                    now,
                    Some(e.line.0),
                    format!("entry outlived its ready_at {}", e.ready_at),
                );
            }
        }
    }

    /// End-of-run leak check: reports a violation for every allocation
    /// that was never [`complete`](Self::complete)d. Called by the drain
    /// verifier after a run has fully retired; at that point a dangling
    /// `ready_at == 0` entry can only be a fill-path bug.
    pub fn check_drained(&self, now: Cycle) {
        for e in self.entries.iter().filter(|e| e.ready_at == 0) {
            invariants::report(
                "mshr",
                now,
                Some(e.line.0),
                format!(
                    "leaked allocation: {} (targets {}) never completed",
                    e.line, e.targets
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.probe_or_allocate(LineAddr(9), 0), MshrOutcome::Allocated);
        m.complete(LineAddr(9), 100);
        assert_eq!(
            m.probe_or_allocate(LineAddr(9), 5),
            MshrOutcome::Merged { ready_at: 100 }
        );
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn retired_entries_are_reclaimed() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.probe_or_allocate(LineAddr(1), 0), MshrOutcome::Allocated);
        m.complete(LineAddr(1), 10);
        // At cycle 20 the fill has retired; a new line can allocate.
        assert_eq!(m.probe_or_allocate(LineAddr(2), 20), MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_reports_retry_time() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.probe_or_allocate(LineAddr(1), 0), MshrOutcome::Allocated);
        m.complete(LineAddr(1), 10);
        assert_eq!(
            m.probe_or_allocate(LineAddr(2), 5),
            MshrOutcome::Full { retry_at: 10 }
        );
        assert_eq!(m.full_events(), 1);
    }

    #[test]
    fn contains_tracks_lifetime() {
        let mut m = MshrFile::new(2);
        m.probe_or_allocate(LineAddr(3), 0);
        assert!(m.contains(LineAddr(3), 0)); // allocated, not completed
        m.complete(LineAddr(3), 8);
        assert!(m.contains(LineAddr(3), 7));
        assert!(!m.contains(LineAddr(3), 8));
    }

    #[test]
    fn occupancy_counts_live_entries() {
        let mut m = MshrFile::new(4);
        m.probe_or_allocate(LineAddr(1), 0);
        m.complete(LineAddr(1), 10);
        m.probe_or_allocate(LineAddr(2), 0);
        m.complete(LineAddr(2), 20);
        assert_eq!(m.occupancy(5), 2);
        assert_eq!(m.occupancy(15), 1);
        assert_eq!(m.occupancy(25), 0);
    }

    #[test]
    #[should_panic(expected = "matching allocation")]
    fn complete_without_allocation_panics() {
        let mut m = MshrFile::new(1);
        m.complete(LineAddr(1), 10);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn allocate_at_exactly_capacity_then_full() {
        // Filling the file to exactly `capacity` distinct lines must
        // succeed; the very next distinct line must see Full with the
        // earliest retirement as the retry time.
        let mut m = MshrFile::new(4);
        for i in 0..4u64 {
            assert_eq!(
                m.probe_or_allocate(LineAddr(i), 0),
                MshrOutcome::Allocated,
                "entry {i} of a 4-entry file must allocate"
            );
            m.complete(LineAddr(i), 100 + i);
        }
        assert_eq!(m.occupancy(0), 4);
        assert_eq!(
            m.probe_or_allocate(LineAddr(99), 0),
            MshrOutcome::Full { retry_at: 100 }
        );
        // A merge into a full file still succeeds (no allocation needed).
        assert_eq!(
            m.probe_or_allocate(LineAddr(2), 0),
            MshrOutcome::Merged { ready_at: 102 }
        );
    }

    #[test]
    fn same_line_race_counts_every_merge() {
        // N back-to-back accesses to one in-flight line: 1 allocation,
        // N-1 merges, regardless of whether complete() has run yet.
        let mut m = MshrFile::new(2);
        assert_eq!(m.probe_or_allocate(LineAddr(7), 0), MshrOutcome::Allocated);
        // Race before the fill time is known (ready_at still 0).
        assert_eq!(
            m.probe_or_allocate(LineAddr(7), 1),
            MshrOutcome::Merged { ready_at: 0 }
        );
        m.complete(LineAddr(7), 50);
        for now in 2..6 {
            assert_eq!(
                m.probe_or_allocate(LineAddr(7), now),
                MshrOutcome::Merged { ready_at: 50 }
            );
        }
        assert_eq!(m.merges(), 5);
        assert_eq!(m.full_events(), 0);
    }

    #[test]
    #[should_panic(expected = "matching allocation")]
    fn complete_on_retired_line_panics() {
        // The contract: complete() pairs with the probe_or_allocate that
        // returned Allocated. Completing a line whose entry already has a
        // fill time (i.e. "absent" as an allocation) is a caller bug.
        let mut m = MshrFile::new(2);
        m.probe_or_allocate(LineAddr(5), 0);
        m.complete(LineAddr(5), 10);
        m.complete(LineAddr(5), 20);
    }

    #[test]
    fn leak_is_visible_to_unfinished_allocations_not_occupancy() {
        let mut m = MshrFile::new(2);
        m.probe_or_allocate(LineAddr(1), 0);
        // Never completed: invisible to occupancy at any cycle, immortal
        // under lazy reclamation, but counted as unfinished.
        assert_eq!(m.occupancy(1_000_000), 0);
        m.probe_or_allocate(LineAddr(2), 1_000_000);
        assert!(m.contains(LineAddr(1), 1_000_000));
        assert_eq!(m.unfinished_allocations(), 2);
        m.complete(LineAddr(1), 1_000_010);
        m.complete(LineAddr(2), 1_000_010);
        assert_eq!(m.unfinished_allocations(), 0);
    }

    #[test]
    fn check_drained_reports_leaked_allocation() {
        crate::invariants::take_violations();
        let mut m = MshrFile::new(2);
        m.probe_or_allocate(LineAddr(0x40), 0);
        m.check_drained(123);
        let (list, total) = crate::invariants::take_violations();
        assert_eq!(total, 1);
        assert_eq!(list[0].component, "mshr");
        assert_eq!(list[0].cycle, 123);
        assert_eq!(list[0].addr, Some(0x40));
        assert!(list[0].detail.contains("leaked"), "{}", list[0].detail);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = MshrFile::new(2);
        m.probe_or_allocate(LineAddr(1), 0);
        m.complete(LineAddr(1), 10);
        m.probe_or_allocate(LineAddr(1), 1);
        m.reset_stats();
        assert_eq!(m.merges(), 0);
        assert_eq!(m.full_events(), 0);
    }
}

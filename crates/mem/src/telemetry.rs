//! Cycle-resolved telemetry registry behind a zero-cost env gate.
//!
//! The aggregate statistics ([`crate::CacheStats`], the stage stats in
//! `sttcache-core`) say *which* organization wins; this module records
//! *why*: per-bank busy and conflict occupancy, outstanding-miss depth,
//! buffer depth and coalescing-run histograms, and per-set write traffic
//! (the wear map `sttcache_tech::endurance` consumes). All of it is
//! gathered the same way the invariant checkers are
//! ([`crate::invariants`]): hot paths consult [`enabled`] — one relaxed
//! atomic load, armed by `STTCACHE_TELEMETRY=1` or [`set_enabled`] — and
//! only then touch the registry, so disarmed sweeps pay nothing
//! measurable (`scripts/bench_snapshot.sh` records the overhead instead
//! of asserting it).
//!
//! Memory is bounded by construction: histograms index small occupancy
//! values directly and spill the tail into an overflow bucket, time
//! series use a stride-doubling sampler that never retains more than
//! [`SERIES_CAP`] points, and indexed counters (wear maps, per-bank
//! shares) stop growing at [`INDEXED_CAP`] slots. The registry is
//! thread-local so parallel sweep workers never contaminate each other;
//! harnesses drain it with [`take`].
//!
//! Armed recording is direct-indexed: a [`Slot`] interns its
//! `(component, metric)` key once (at component construction) and every
//! subsequent record is a vector index into thread-local storage — no
//! per-event map walk. The by-name functions ([`count`], [`observe`],
//! [`sample`], [`record_indexed`]) stay as the convenient cold-path API
//! and resolve their slot on each call.

use crate::addr::Cycle;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Gate state: 0 = uninitialised, 1 = off, 2 = on.
static GATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry collection is enabled in this process.
///
/// Reads `STTCACHE_TELEMETRY` once (any value other than `0`/`false`/""
/// enables the gate); afterwards it is a single relaxed atomic load.
/// [`set_enabled`] overrides the environment at any time.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("STTCACHE_TELEMETRY")
        .map(|v| !v.is_empty() && v != "0" && v != "false")
        .unwrap_or(false);
    // Racing first calls agree on the same env-derived value, so a plain
    // store is fine; a concurrent set_enabled wins either way on its own
    // subsequent store.
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces the gate on or off, overriding `STTCACHE_TELEMETRY`.
pub fn set_enabled(on: bool) {
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    crate::gates::refresh();
}

/// Histogram values at or above this index share one overflow bucket.
/// Occupancies (MSHR depth, buffer depth, coalescing runs) are tiny, so
/// direct value indexing keeps percentiles exact where it matters.
const HISTOGRAM_CAP: usize = 1024;

/// A time series never retains more than this many points.
pub const SERIES_CAP: usize = 512;

/// Indexed counters (wear maps, per-bank tallies) stop growing at this
/// many slots; out-of-range indices are counted in
/// [`IndexedCounter::clipped`].
pub const INDEXED_CAP: usize = 65_536;

/// Value-indexed histogram of small non-negative observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[v]` = number of observations of value `v` (below the cap).
    pub counts: Vec<u64>,
    /// Observations at or above [`HISTOGRAM_CAP`].
    pub overflow: u64,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
        if (value as usize) < HISTOGRAM_CAP {
            if self.counts.len() <= value as usize {
                self.counts.resize(value as usize + 1, 0);
            }
            self.counts[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-th percentile (`p` in 0..=100) of the observed values.
    ///
    /// Exact for values below the bucket cap; observations in the
    /// overflow bucket report as [`Histogram::max`]. Returns 0 when
    /// empty.
    pub fn percentile(&self, p: u8) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // Rank of the requested percentile, 1-based, nearest-rank method.
        let rank = ((u64::from(p.min(100)) * self.total).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return value as u64;
            }
        }
        self.max
    }
}

/// Bounded cycle-resolved time series: a fixed-stride sampler that keeps
/// every `stride`-th observation and, whenever the buffer fills, drops
/// every other retained point and doubles the stride. Deterministic,
/// memory-bounded, and uniform over the run regardless of its length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Retained `(cycle, value)` samples in observation order.
    pub points: Vec<(Cycle, u64)>,
    /// Current sampling stride (1 = every observation retained).
    pub stride: u64,
    /// Total observations offered, including ones the stride skipped.
    pub seen: u64,
}

impl Default for Series {
    fn default() -> Self {
        Series {
            points: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }
}

impl Series {
    fn sample(&mut self, cycle: Cycle, value: u64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == SERIES_CAP {
                // Keep even indices, double the stride: the retained set
                // stays uniformly spaced over everything seen so far.
                let kept: Vec<_> = self.points.iter().copied().step_by(2).collect();
                self.points = kept;
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.points.push((cycle, value));
            }
        }
        self.seen += 1;
    }

    /// Largest retained value (0 when empty).
    pub fn peak(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }
}

/// Densely indexed counters — per-set wear maps, per-bank access tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexedCounter {
    /// `counts[i]` = accumulated count for index `i`.
    pub counts: Vec<u64>,
    /// Events whose index was at or above [`INDEXED_CAP`].
    pub clipped: u64,
}

impl IndexedCounter {
    fn add(&mut self, index: usize, n: u64) {
        if index >= INDEXED_CAP {
            self.clipped += n;
            return;
        }
        if self.counts.len() <= index {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += n;
    }

    /// Total across all indices (excluding clipped events).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(index, count)` of the largest counter, if any count is non-zero.
    pub fn hottest(&self) -> Option<(usize, u64)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
    }
}

/// Metric key: `(component, metric)`, both static names so recording
/// never allocates for the key.
pub type MetricKey = (&'static str, &'static str);

/// Everything one thread recorded since the last [`take`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Plain monotonic counters.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Value-indexed histograms.
    pub histograms: BTreeMap<MetricKey, Histogram>,
    /// Cycle-resolved time series.
    pub series: BTreeMap<MetricKey, Series>,
    /// Densely indexed counters (wear maps, per-bank tallies).
    pub indexed: BTreeMap<MetricKey, IndexedCounter>,
}

impl TelemetrySnapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
            && self.indexed.is_empty()
    }

    /// Counter value, 0 when the metric was never recorded.
    pub fn counter(&self, component: &str, metric: &str) -> u64 {
        self.counters
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, &v)| v)
            .unwrap_or(0)
    }

    /// Histogram for the metric, if recorded.
    pub fn histogram(&self, component: &str, metric: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, h)| h)
    }

    /// Series for the metric, if recorded.
    pub fn series_for(&self, component: &str, metric: &str) -> Option<&Series> {
        self.series
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, s)| s)
    }

    /// Indexed counter for the metric, if recorded.
    pub fn indexed_for(&self, component: &str, metric: &str) -> Option<&IndexedCounter> {
        self.indexed
            .iter()
            .find(|((c, m), _)| *c == component && *m == metric)
            .map(|(_, x)| x)
    }
}

/// What a slot records into — one storage variant per recording surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Counter,
    Histogram,
    Series,
    Indexed,
}

/// Process-wide metric intern table: slot id → `(key, kind)`. Appended
/// under a mutex when a [`Slot`] is first resolved (component
/// construction, or the legacy by-name entry points); the id is stable
/// for the life of the process, so recording never consults the table.
static INTERN: Mutex<Vec<(MetricKey, SlotKind)>> = Mutex::new(Vec::new());

/// A pre-resolved metric handle.
///
/// Recording by name walks a key map on every event; armed sweeps spend
/// more time in that lookup than in the simulation being measured. A
/// `Slot` does the lookup once — components resolve their slots at
/// construction (and again in `set_telemetry_component`) and armed
/// recording becomes a direct index into a thread-local vector.
///
/// Resolving the same `(component, metric)` pair always yields the same
/// slot, so equality of slot-holding structs matches equality of their
/// component labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(u32);

fn intern(key: MetricKey, kind: SlotKind) -> Slot {
    let mut table = INTERN.lock().expect("telemetry intern table poisoned");
    if let Some(id) = table.iter().position(|&(k, kd)| k == key && kd == kind) {
        return Slot(id as u32);
    }
    table.push((key, kind));
    Slot((table.len() - 1) as u32)
}

impl Slot {
    /// Resolves the plain-counter slot for `(component, metric)`.
    pub fn counter(component: &'static str, metric: &'static str) -> Slot {
        intern((component, metric), SlotKind::Counter)
    }

    /// Resolves the histogram slot for `(component, metric)`.
    pub fn histogram(component: &'static str, metric: &'static str) -> Slot {
        intern((component, metric), SlotKind::Histogram)
    }

    /// Resolves the time-series slot for `(component, metric)`.
    pub fn series(component: &'static str, metric: &'static str) -> Slot {
        intern((component, metric), SlotKind::Series)
    }

    /// Resolves the indexed-counter slot for `(component, metric)`.
    pub fn indexed(component: &'static str, metric: &'static str) -> Slot {
        intern((component, metric), SlotKind::Indexed)
    }

    /// Adds `n` to this counter slot on this thread.
    #[inline]
    pub fn add(self, n: u64) {
        self.with(|d| match d {
            SlotData::Counter(c) => *c += n,
            _ => debug_assert!(false, "add on a non-counter slot"),
        });
    }

    /// Observes `value` in this histogram slot.
    #[inline]
    pub fn observe(self, value: u64) {
        self.with(|d| match d {
            SlotData::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "observe on a non-histogram slot"),
        });
    }

    /// Offers a `(cycle, value)` point to this series slot.
    #[inline]
    pub fn sample(self, cycle: Cycle, value: u64) {
        self.with(|d| match d {
            SlotData::Series(s) => s.sample(cycle, value),
            _ => debug_assert!(false, "sample on a non-series slot"),
        });
    }

    /// Adds `n` at `index` in this indexed-counter slot.
    #[inline]
    pub fn add_at(self, index: usize, n: u64) {
        self.with(|d| match d {
            SlotData::Indexed(x) => x.add(index, n),
            _ => debug_assert!(false, "add_at on a non-indexed slot"),
        });
    }

    /// Runs `f` on this slot's thread-local storage, materializing it on
    /// first touch (the only point that consults the intern table).
    #[inline]
    fn with(self, f: impl FnOnce(&mut SlotData)) {
        SLOTS.with(|s| {
            let mut slots = s.borrow_mut();
            let i = self.0 as usize;
            if slots.len() <= i {
                slots.resize_with(i + 1, || None);
            }
            if slots[i].is_none() {
                slots[i] = Some(SlotData::fresh(self));
            }
            f(slots[i].as_mut().expect("slot just materialized"));
        });
    }
}

/// One slot's thread-local storage.
#[derive(Debug, Clone)]
enum SlotData {
    Counter(u64),
    Histogram(Histogram),
    Series(Series),
    Indexed(IndexedCounter),
}

impl SlotData {
    #[cold]
    fn fresh(slot: Slot) -> SlotData {
        let kind = INTERN.lock().expect("telemetry intern table poisoned")[slot.0 as usize].1;
        match kind {
            SlotKind::Counter => SlotData::Counter(0),
            SlotKind::Histogram => SlotData::Histogram(Histogram::default()),
            SlotKind::Series => SlotData::Series(Series::default()),
            SlotKind::Indexed => SlotData::Indexed(IndexedCounter::default()),
        }
    }
}

thread_local! {
    /// Direct-indexed per-thread storage: `SLOTS[id]` is the data of the
    /// intern table's slot `id`, `None` until first touched on this
    /// thread. Parallel sweep workers share the global ids but never each
    /// other's data.
    static SLOTS: RefCell<Vec<Option<SlotData>>> = const { RefCell::new(Vec::new()) };
}

/// Adds `n` to the counter `(component, metric)` on this thread.
///
/// Callers are expected to have consulted [`enabled`] first; recording
/// itself is unconditional so harnesses can feed the registry directly.
/// By-name entry points resolve the [`Slot`] on every call — hot paths
/// hold a pre-resolved `Slot` instead.
pub fn count(component: &'static str, metric: &'static str, n: u64) {
    Slot::counter(component, metric).add(n);
}

/// Observes `value` in the histogram `(component, metric)`.
pub fn observe(component: &'static str, metric: &'static str, value: u64) {
    Slot::histogram(component, metric).observe(value);
}

/// Offers a `(cycle, value)` point to the series `(component, metric)`.
pub fn sample(component: &'static str, metric: &'static str, cycle: Cycle, value: u64) {
    Slot::series(component, metric).sample(cycle, value);
}

/// Adds `n` at `index` in the indexed counter `(component, metric)`.
pub fn record_indexed(component: &'static str, metric: &'static str, index: usize, n: u64) {
    Slot::indexed(component, metric).add_at(index, n);
}

/// Drains and returns everything recorded on this thread.
pub fn take() -> TelemetrySnapshot {
    SLOTS.with(|s| {
        let mut slots = s.borrow_mut();
        let table = INTERN.lock().expect("telemetry intern table poisoned");
        let mut snap = TelemetrySnapshot::default();
        for (id, data) in slots.iter_mut().enumerate() {
            let Some(data) = data.take() else { continue };
            let (key, _) = table[id];
            match data {
                SlotData::Counter(c) => {
                    snap.counters.insert(key, c);
                }
                SlotData::Histogram(h) => {
                    snap.histograms.insert(key, h);
                }
                SlotData::Series(series) => {
                    snap.series.insert(key, series);
                }
                SlotData::Indexed(x) => {
                    snap.indexed.insert(key, x);
                }
            }
        }
        snap
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn counters_accumulate_and_drain() {
        take();
        count("dl1", "set_writes", 3);
        count("dl1", "set_writes", 4);
        count("l2", "set_writes", 1);
        let snap = take();
        assert_eq!(snap.counter("dl1", "set_writes"), 7);
        assert_eq!(snap.counter("l2", "set_writes"), 1);
        assert_eq!(snap.counter("dl1", "missing"), 0);
        assert!(take().is_empty());
    }

    #[test]
    fn histogram_percentiles_are_exact_for_small_values() {
        take();
        for v in [0u64, 1, 1, 2, 2, 2, 3, 3, 3, 3] {
            observe("mshr", "occupancy", v);
        }
        let snap = take();
        let h = snap.histogram("mshr", "occupancy").unwrap();
        assert_eq!(h.total, 10);
        assert_eq!(h.max, 3);
        assert_eq!(h.percentile(50), 2);
        assert_eq!(h.percentile(90), 3);
        assert_eq!(h.percentile(100), 3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_overflow_reports_as_max() {
        take();
        observe("wb", "depth", 5);
        observe("wb", "depth", 2_000_000);
        let snap = take();
        let h = snap.histogram("wb", "depth").unwrap();
        assert_eq!(h.overflow, 1);
        assert_eq!(h.max, 2_000_000);
        assert_eq!(h.percentile(100), 2_000_000);
        assert_eq!(h.percentile(10), 5);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn series_is_bounded_and_stride_doubles() {
        take();
        let n = (SERIES_CAP as u64) * 5;
        for i in 0..n {
            sample("banks", "busy", i, i);
        }
        let snap = take();
        let s = snap.series_for("banks", "busy").unwrap();
        assert!(s.points.len() <= SERIES_CAP);
        assert!(s.stride > 1);
        assert_eq!(s.seen, n);
        assert_eq!(s.peak(), s.points.iter().map(|&(_, v)| v).max().unwrap());
        // Retained points are stride-spaced observations of the original
        // stream, so values are strictly increasing here.
        assert!(s.points.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn short_series_retains_everything() {
        take();
        for i in 0..10u64 {
            sample("wb", "depth", i * 3, i);
        }
        let snap = take();
        let s = snap.series_for("wb", "depth").unwrap();
        assert_eq!(s.points.len(), 10);
        assert_eq!(s.stride, 1);
    }

    #[test]
    fn indexed_counters_grow_clip_and_rank() {
        take();
        record_indexed("dl1", "wear", 3, 10);
        record_indexed("dl1", "wear", 0, 4);
        record_indexed("dl1", "wear", 3, 1);
        record_indexed("dl1", "wear", INDEXED_CAP + 7, 2);
        let snap = take();
        let x = snap.indexed_for("dl1", "wear").unwrap();
        assert_eq!(x.counts[3], 11);
        assert_eq!(x.counts[0], 4);
        assert_eq!(x.total(), 15);
        assert_eq!(x.clipped, 2);
        assert_eq!(x.hottest(), Some((3, 11)));
    }

    #[test]
    fn hottest_prefers_the_lowest_index_on_ties() {
        let mut x = IndexedCounter::default();
        x.add(5, 7);
        x.add(2, 7);
        assert_eq!(x.hottest(), Some((2, 7)));
        assert_eq!(IndexedCounter::default().hottest(), None);
    }

    #[test]
    fn slots_are_stable_and_merge_with_by_name_recording() {
        take();
        let slot = Slot::counter("slot-test", "events");
        assert_eq!(slot, Slot::counter("slot-test", "events"));
        slot.add(5);
        // The by-name path resolves to the same slot, so both recordings
        // land in one counter.
        count("slot-test", "events", 2);
        let snap = take();
        assert_eq!(snap.counter("slot-test", "events"), 7);
        assert!(take().is_empty());
    }

    #[test]
    fn same_key_different_kind_gets_its_own_slot() {
        take();
        let h = Slot::histogram("slot-test", "depth");
        let s = Slot::series("slot-test", "depth");
        h.observe(3);
        s.sample(10, 3);
        let snap = take();
        assert_eq!(snap.histogram("slot-test", "depth").unwrap().total, 1);
        assert_eq!(snap.series_for("slot-test", "depth").unwrap().seen, 1);
    }

    #[test]
    fn registry_is_thread_local() {
        take();
        count("dl1", "set_writes", 9);
        let other = std::thread::spawn(|| take().is_empty()).join().unwrap();
        assert!(other);
        assert_eq!(take().counter("dl1", "set_writes"), 9);
    }
}

//! One set of a set-associative cache.

use crate::addr::Cycle;
use crate::replacement::{ReplacementPolicy, ReplacementState};

/// Index of a way within a set.
pub type Way = usize;

/// State of one way (tag + valid + dirty + replacement metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct WayState {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic last-use stamp (LRU).
    last_use: Cycle,
    /// Monotonic insertion stamp (FIFO).
    inserted_at: Cycle,
}

/// Result of probing a set for a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The tag is present in the given way.
    Hit(Way),
    /// The tag is absent; the given way is the policy's victim.
    /// `dirty_tag` carries the victim's tag if it holds valid dirty data
    /// that must be written back.
    Miss {
        /// Victim way chosen by the replacement policy.
        victim: Way,
        /// Tag of the dirty victim line, if a write-back is needed.
        dirty_tag: Option<u64>,
    },
}

/// A single cache set: `ways` ways of tag/valid/dirty state plus the
/// replacement policy's bookkeeping.
///
/// The set stores no data payload — the simulator is timing-only (the
/// functional values live in the workload itself), exactly like gem5's
/// atomic tag arrays.
///
/// # Example
///
/// ```
/// use sttcache_mem::{CacheSet, LookupResult};
///
/// let mut set = CacheSet::new(2);
/// assert!(matches!(set.lookup(7), LookupResult::Miss { .. }));
/// set.fill(0, 7, false, 10);
/// assert_eq!(set.lookup(7), LookupResult::Hit(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSet {
    ways: Vec<WayState>,
    repl: ReplacementState,
}

impl CacheSet {
    /// Creates an empty true-LRU set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        CacheSet::with_policy(ways, ReplacementPolicy::Lru, 1)
    }

    /// Creates an empty set with an explicit replacement policy. `seed`
    /// feeds the random policy's per-set stream (use the set index).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn with_policy(ways: usize, policy: ReplacementPolicy, seed: u64) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        CacheSet {
            ways: vec![WayState::default(); ways],
            repl: ReplacementState::new(policy, seed),
        }
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways.len()
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.repl.policy()
    }

    /// Checks for `tag` without updating any replacement state.
    pub fn probe(&self, tag: u64) -> Option<Way> {
        self.ways.iter().position(|w| w.valid && w.tag == tag)
    }

    /// Probes for `tag`; on a miss, asks the replacement policy for a
    /// victim (which may advance the random policy's stream).
    pub fn lookup(&mut self, tag: u64) -> LookupResult {
        if let Some(way) = self.probe(tag) {
            return LookupResult::Hit(way);
        }
        // Prefer an invalid way.
        if let Some(i) = self.ways.iter().position(|w| !w.valid) {
            return LookupResult::Miss {
                victim: i,
                dirty_tag: None,
            };
        }
        let meta: Vec<(u64, u64)> = self
            .ways
            .iter()
            .map(|w| (w.last_use, w.inserted_at))
            .collect();
        let victim = self.repl.victim(&meta);
        let v = &self.ways[victim];
        let dirty_tag = (v.valid && v.dirty).then_some(v.tag);
        LookupResult::Miss { victim, dirty_tag }
    }

    /// Marks `way` as used at cycle `now` (replacement update) and
    /// optionally dirty.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range or invalid.
    pub fn touch(&mut self, way: Way, now: Cycle, make_dirty: bool) {
        let ways = self.ways.len();
        let w = &mut self.ways[way];
        assert!(w.valid, "touching an invalid way");
        w.last_use = now;
        w.dirty |= make_dirty;
        self.repl.touch(way, ways);
    }

    /// Installs `tag` into `way` at cycle `now`, replacing whatever was
    /// there. `dirty` sets the initial dirty bit (write-allocate installs
    /// dirty lines).
    pub fn fill(&mut self, way: Way, tag: u64, dirty: bool, now: Cycle) {
        let ways = self.ways.len();
        self.ways[way] = WayState {
            tag,
            valid: true,
            dirty,
            last_use: now,
            inserted_at: now,
        };
        self.repl.touch(way, ways);
    }

    /// Invalidates the way holding `tag`, returning whether it was dirty.
    /// Returns `None` if the tag is not present.
    pub fn invalidate(&mut self, tag: u64) -> Option<bool> {
        for w in &mut self.ways {
            if w.valid && w.tag == tag {
                w.valid = false;
                let was_dirty = w.dirty;
                w.dirty = false;
                return Some(was_dirty);
            }
        }
        None
    }

    /// Clears the dirty bit of the way holding `tag` (after a write-back).
    pub fn clean(&mut self, tag: u64) {
        for w in &mut self.ways {
            if w.valid && w.tag == tag {
                w.dirty = false;
            }
        }
    }

    /// Number of valid ways.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// The tag held by each way in way order (`None` for invalid ways).
    /// Feeds the owning cache's compact tag mirror, which must see way
    /// indices — [`CacheSet::iter_valid`] deliberately hides them.
    pub fn way_tags(&self) -> impl Iterator<Item = Option<u64>> + '_ {
        self.ways.iter().map(|w| w.valid.then_some(w.tag))
    }

    /// Iterates over the valid `(tag, dirty)` pairs in this set.
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| (w.tag, w.dirty))
    }

    /// Structural validity of the set's tag/replacement state, reported
    /// through [`invariants`](crate::invariants): no tag may occupy two
    /// valid ways (a double-fill would make `probe` nondeterministic),
    /// and no way may have been used before it was inserted. Both checks
    /// are independent of global access ordering, so they stay sound even
    /// with overlapping operations (non-blocking prefetch fills stamp
    /// sets "in the future" relative to the next demand access).
    pub fn check_invariants(&self, set_index: usize, now: Cycle) {
        for (i, a) in self.ways.iter().enumerate() {
            if !a.valid {
                continue;
            }
            if a.last_use < a.inserted_at {
                crate::invariants::report(
                    "set",
                    now,
                    Some(a.tag),
                    format!(
                        "set {set_index} way {i}: used at {} before insertion at {}",
                        a.last_use, a.inserted_at
                    ),
                );
            }
            for (j, b) in self.ways.iter().enumerate().skip(i + 1) {
                if b.valid && b.tag == a.tag {
                    crate::invariants::report(
                        "set",
                        now,
                        Some(a.tag),
                        format!("set {set_index}: tag duplicated in ways {i} and {j}"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_misses_with_clean_victim() {
        let mut set = CacheSet::new(2);
        match set.lookup(42) {
            LookupResult::Miss {
                victim: 0,
                dirty_tag: None,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut set = CacheSet::new(2);
        set.fill(0, 42, false, 1);
        assert_eq!(set.lookup(42), LookupResult::Hit(0));
        assert_eq!(set.probe(42), Some(0));
        assert_eq!(set.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = CacheSet::new(2);
        set.fill(0, 1, false, 1);
        set.fill(1, 2, false, 2);
        set.touch(0, 3, false); // tag 1 is now MRU
        match set.lookup(99) {
            LookupResult::Miss { victim, .. } => assert_eq!(victim, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut set = CacheSet::with_policy(2, ReplacementPolicy::Fifo, 1);
        set.fill(0, 1, false, 1);
        set.fill(1, 2, false, 2);
        set.touch(0, 50, false); // does not save tag 1 under FIFO
        match set.lookup(99) {
            LookupResult::Miss { victim, .. } => assert_eq!(victim, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plru_never_victimizes_the_most_recent() {
        let mut set = CacheSet::with_policy(4, ReplacementPolicy::TreePlru, 1);
        for (i, tag) in [10, 20, 30, 40].iter().enumerate() {
            set.fill(i, *tag, false, i as u64);
        }
        set.touch(2, 100, false);
        match set.lookup(99) {
            LookupResult::Miss { victim, .. } => assert_ne!(victim, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_victims_are_reproducible() {
        let run = || {
            let mut set = CacheSet::with_policy(4, ReplacementPolicy::Random, 7);
            for (i, tag) in [10, 20, 30, 40].iter().enumerate() {
                set.fill(i, *tag, false, i as u64);
            }
            let mut victims = Vec::new();
            for _ in 0..8 {
                if let LookupResult::Miss { victim, .. } = set.lookup(99) {
                    victims.push(victim);
                }
            }
            victims
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dirty_victim_reports_writeback_tag() {
        let mut set = CacheSet::new(1);
        set.fill(0, 5, false, 1);
        set.touch(0, 2, true);
        match set.lookup(6) {
            LookupResult::Miss {
                victim: 0,
                dirty_tag: Some(5),
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut set = CacheSet::new(2);
        set.fill(0, 1, true, 1);
        assert_eq!(set.invalidate(1), Some(true));
        assert_eq!(set.invalidate(1), None);
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    fn clean_clears_dirty_bit() {
        let mut set = CacheSet::new(1);
        set.fill(0, 9, true, 1);
        set.clean(9);
        match set.lookup(10) {
            LookupResult::Miss {
                dirty_tag: None, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_way_preferred_as_victim() {
        let mut set = CacheSet::new(4);
        set.fill(0, 1, false, 1);
        set.fill(1, 2, false, 2);
        match set.lookup(3) {
            LookupResult::Miss { victim: 2, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lru_tie_breaks_by_way_index() {
        let mut set = CacheSet::new(2);
        set.fill(0, 1, false, 5);
        set.fill(1, 2, false, 5);
        match set.lookup(3) {
            LookupResult::Miss { victim: 0, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid way")]
    fn touch_invalid_way_panics() {
        let mut set = CacheSet::new(1);
        set.touch(0, 1, false);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = CacheSet::new(0);
    }

    #[test]
    fn check_invariants_flags_duplicate_tags() {
        crate::invariants::take_violations();
        let mut set = CacheSet::new(2);
        set.fill(0, 7, false, 5);
        set.fill(1, 7, false, 6); // double-fill: same tag in two ways
        set.check_invariants(3, 10);
        let (list, _) = crate::invariants::take_violations();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].component, "set");
        assert_eq!(list[0].cycle, 10);
        assert_eq!(list[0].addr, Some(7));
        assert!(list[0].detail.contains("duplicated"), "{}", list[0].detail);

        // A clean set reports nothing.
        let mut ok = CacheSet::new(2);
        ok.fill(0, 1, false, 1);
        ok.fill(1, 2, true, 2);
        ok.touch(0, 9, false);
        ok.check_invariants(0, 20);
        assert_eq!(crate::invariants::take_violations().1, 0);
    }

    #[test]
    fn iter_valid_lists_contents() {
        let mut set = CacheSet::new(3);
        set.fill(0, 10, false, 1);
        set.fill(2, 20, true, 2);
        let mut v: Vec<_> = set.iter_valid().collect();
        v.sort();
        assert_eq!(v, vec![(10, false), (20, true)]);
    }
}

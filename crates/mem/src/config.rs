//! Cache configuration.

use crate::replacement::ReplacementPolicy;
use crate::MemError;
use sttcache_tech::{ArrayConfig, ArrayModel, CellKind};

/// Asymmetric write timing (the AWARE model of Kwon et al., paper
/// reference \[1\]).
///
/// STT-MRAM writes are asymmetric: the 0->1 MTJ transition is slower than
/// 1->0. AWARE restructures the array with redundant blocks so that most
/// writes complete at the fast transition time and only the occasional
/// write pays the slow one. This first-order model makes every
/// `slow_period`-th write take `slow_cycles` instead of the configured
/// write latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsymmetricWrite {
    /// Latency of the slow (0->1 dominated) writes, in cycles.
    pub slow_cycles: u64,
    /// One write in `slow_period` is slow (deterministic, so simulations
    /// stay reproducible).
    pub slow_period: u64,
}

impl AsymmetricWrite {
    /// A representative AWARE setting for the paper's NVM DL1: the
    /// redundant blocks absorb 7 of 8 slow transitions; the residual slow
    /// write takes twice the nominal latency.
    pub fn aware_default(write_cycles: u64) -> Self {
        AsymmetricWrite {
            slow_cycles: write_cycles * 2,
            slow_period: 8,
        }
    }
}

/// Write-hit policy of a cache level.
///
/// The paper's DL1 and L2 are write-back ("No write through is present to
/// the L2 and main memory, and a write-back policy is implemented");
/// write-through is provided for comparison studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum WritePolicy {
    /// Write-back with write-allocate (paper configuration).
    #[default]
    WriteBack,
    /// Write-through with no-allocate.
    WriteThrough,
}

/// Validated configuration for one [`crate::Cache`] level.
///
/// Construct with [`CacheConfig::builder`]; defaults describe the paper's
/// 64 KB 2-way STT-MRAM DL1 (64 B lines, 4-cycle read, 2-cycle write,
/// 4 banks, 4 MSHRs, 4 write-buffer entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    capacity_bytes: usize,
    associativity: usize,
    line_bytes: usize,
    banks: usize,
    read_cycles: u64,
    write_cycles: u64,
    mshr_entries: usize,
    write_buffer_entries: usize,
    write_policy: WritePolicy,
    asymmetric_write: Option<AsymmetricWrite>,
    replacement: ReplacementPolicy,
}

/// Builder for [`CacheConfig`].
///
/// # Example
///
/// ```
/// use sttcache_mem::CacheConfig;
///
/// # fn main() -> Result<(), sttcache_mem::MemError> {
/// // The paper's SRAM DL1: 64 KB, 2-way, 32 B lines, 1-cycle access.
/// let sram = CacheConfig::builder()
///     .line_bytes(32)
///     .read_cycles(1)
///     .write_cycles(1)
///     .build()?;
/// assert_eq!(sram.sets(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CacheConfigBuilder {
    capacity_bytes: usize,
    associativity: usize,
    line_bytes: usize,
    banks: usize,
    read_cycles: u64,
    write_cycles: u64,
    mshr_entries: usize,
    write_buffer_entries: usize,
    write_policy: WritePolicy,
    asymmetric_write: Option<AsymmetricWrite>,
    replacement: ReplacementPolicy,
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        CacheConfigBuilder {
            capacity_bytes: 64 * 1024,
            associativity: 2,
            line_bytes: 64,
            banks: 4,
            read_cycles: 4,
            write_cycles: 2,
            mshr_entries: 4,
            write_buffer_entries: 4,
            write_policy: WritePolicy::WriteBack,
            asymmetric_write: None,
            replacement: ReplacementPolicy::Lru,
        }
    }
}

impl CacheConfigBuilder {
    /// Total capacity in bytes (power of two).
    pub fn capacity_bytes(&mut self, v: usize) -> &mut Self {
        self.capacity_bytes = v;
        self
    }

    /// Set associativity (ways).
    pub fn associativity(&mut self, v: usize) -> &mut Self {
        self.associativity = v;
        self
    }

    /// Line size in bytes (power of two).
    pub fn line_bytes(&mut self, v: usize) -> &mut Self {
        self.line_bytes = v;
        self
    }

    /// Independently schedulable banks (power of two).
    pub fn banks(&mut self, v: usize) -> &mut Self {
        self.banks = v;
        self
    }

    /// Read access latency in cycles (≥ 1).
    pub fn read_cycles(&mut self, v: u64) -> &mut Self {
        self.read_cycles = v;
        self
    }

    /// Write access latency in cycles (≥ 1).
    pub fn write_cycles(&mut self, v: u64) -> &mut Self {
        self.write_cycles = v;
        self
    }

    /// Number of MSHR entries (≥ 1).
    pub fn mshr_entries(&mut self, v: usize) -> &mut Self {
        self.mshr_entries = v;
        self
    }

    /// Number of eviction write-buffer entries (≥ 1).
    pub fn write_buffer_entries(&mut self, v: usize) -> &mut Self {
        self.write_buffer_entries = v;
        self
    }

    /// Write-hit policy.
    pub fn write_policy(&mut self, v: WritePolicy) -> &mut Self {
        self.write_policy = v;
        self
    }

    /// Enables asymmetric (AWARE-style) write timing.
    pub fn asymmetric_write(&mut self, v: AsymmetricWrite) -> &mut Self {
        self.asymmetric_write = Some(v);
        self
    }

    /// Replacement policy (true LRU by default, as in the paper).
    pub fn replacement(&mut self, v: ReplacementPolicy) -> &mut Self {
        self.replacement = v;
        self
    }

    /// Pulls read/write latencies from a technology [`ArrayModel`] at the
    /// given clock (convenience for driving timing from `sttcache-tech`).
    pub fn timing_from(&mut self, model: &ArrayModel, clock_ghz: f64) -> &mut Self {
        self.read_cycles = model.read_cycles(clock_ghz);
        self.write_cycles = model.write_cycles(clock_ghz);
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] describing the first invalid field.
    pub fn build(&self) -> Result<CacheConfig, MemError> {
        let b = *self;
        if b.capacity_bytes == 0 || !b.capacity_bytes.is_power_of_two() {
            return Err(MemError::InvalidCapacity(b.capacity_bytes));
        }
        if b.line_bytes == 0 || !b.line_bytes.is_power_of_two() || b.line_bytes > b.capacity_bytes {
            return Err(MemError::InvalidLineBytes(b.line_bytes));
        }
        let lines = b.capacity_bytes / b.line_bytes;
        if b.associativity == 0 || b.associativity > lines || !lines.is_multiple_of(b.associativity)
        {
            return Err(MemError::InvalidAssociativity(b.associativity));
        }
        let sets = lines / b.associativity;
        if !sets.is_power_of_two() {
            return Err(MemError::InvalidAssociativity(b.associativity));
        }
        if b.banks == 0 || !b.banks.is_power_of_two() {
            return Err(MemError::InvalidBanks(b.banks));
        }
        if b.read_cycles == 0 {
            return Err(MemError::InvalidLatency("read"));
        }
        if b.write_cycles == 0 {
            return Err(MemError::InvalidLatency("write"));
        }
        if b.mshr_entries == 0 {
            return Err(MemError::InvalidBufferDepth {
                buffer: "mshr",
                depth: b.mshr_entries,
            });
        }
        if b.write_buffer_entries == 0 {
            return Err(MemError::InvalidBufferDepth {
                buffer: "write buffer",
                depth: b.write_buffer_entries,
            });
        }
        if let Some(aw) = b.asymmetric_write {
            if aw.slow_cycles < b.write_cycles {
                return Err(MemError::InvalidLatency("asymmetric slow write"));
            }
            if aw.slow_period == 0 {
                return Err(MemError::InvalidLatency("asymmetric write period"));
            }
        }
        Ok(CacheConfig {
            capacity_bytes: b.capacity_bytes,
            associativity: b.associativity,
            line_bytes: b.line_bytes,
            banks: b.banks,
            read_cycles: b.read_cycles,
            write_cycles: b.write_cycles,
            mshr_entries: b.mshr_entries,
            write_buffer_entries: b.write_buffer_entries,
            write_policy: b.write_policy,
            asymmetric_write: b.asymmetric_write,
            replacement: b.replacement,
        })
    }
}

impl CacheConfig {
    /// Starts a builder with the paper's STT-MRAM DL1 defaults.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Associativity.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Bank count.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Read latency in cycles.
    pub fn read_cycles(&self) -> u64 {
        self.read_cycles
    }

    /// Write latency in cycles.
    pub fn write_cycles(&self) -> u64 {
        self.write_cycles
    }

    /// MSHR entry count.
    pub fn mshr_entries(&self) -> usize {
        self.mshr_entries
    }

    /// Write-buffer entry count.
    pub fn write_buffer_entries(&self) -> usize {
        self.write_buffer_entries
    }

    /// Write-hit policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Asymmetric write timing, if enabled.
    pub fn asymmetric_write(&self) -> Option<AsymmetricWrite> {
        self.asymmetric_write
    }

    /// Replacement policy.
    pub fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.associativity
    }

    /// The matching technology-array configuration (for energy/area/leakage
    /// queries against `sttcache-tech`).
    ///
    /// # Errors
    ///
    /// Returns [`sttcache_tech::TechError`] if this cache geometry has no
    /// valid array realization for the given cell (should not happen for
    /// configurations that passed [`CacheConfigBuilder::build`]).
    pub fn array_config(&self, cell: CellKind) -> Result<ArrayConfig, sttcache_tech::TechError> {
        ArrayConfig::builder()
            .capacity_bytes(self.capacity_bytes)
            .associativity(self.associativity)
            .line_bits(self.line_bytes * 8)
            .banks(self.banks)
            .cell(cell)
            .build()
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::builder()
            .build()
            .expect("default cache config is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_stt_dl1() {
        let c = CacheConfig::default();
        assert_eq!(c.capacity_bytes(), 64 * 1024);
        assert_eq!(c.associativity(), 2);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.read_cycles(), 4);
        assert_eq!(c.write_cycles(), 2);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.write_policy(), WritePolicy::WriteBack);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(CacheConfig::builder().capacity_bytes(0).build().is_err());
        assert!(CacheConfig::builder().capacity_bytes(1000).build().is_err());
        assert!(CacheConfig::builder().line_bytes(0).build().is_err());
        assert!(CacheConfig::builder().line_bytes(48).build().is_err());
        assert!(CacheConfig::builder().associativity(0).build().is_err());
        assert!(CacheConfig::builder().banks(3).build().is_err());
        assert!(CacheConfig::builder().read_cycles(0).build().is_err());
        assert!(CacheConfig::builder().write_cycles(0).build().is_err());
        assert!(CacheConfig::builder().mshr_entries(0).build().is_err());
        assert!(CacheConfig::builder()
            .write_buffer_entries(0)
            .build()
            .is_err());
    }

    #[test]
    fn line_bigger_than_capacity_is_rejected() {
        assert!(CacheConfig::builder()
            .capacity_bytes(64)
            .line_bytes(128)
            .build()
            .is_err());
    }

    #[test]
    fn fully_associative_is_allowed() {
        let c = CacheConfig::builder()
            .capacity_bytes(256)
            .line_bytes(64)
            .associativity(4)
            .banks(1)
            .build()
            .unwrap();
        assert_eq!(c.sets(), 1);
    }

    #[test]
    fn non_power_of_two_sets_rejected() {
        // 8 lines / 3 ways does not divide evenly.
        assert!(CacheConfig::builder()
            .capacity_bytes(512)
            .line_bytes(64)
            .associativity(3)
            .build()
            .is_err());
    }

    #[test]
    fn timing_from_array_model() {
        let model = ArrayModel::new(ArrayConfig::builder().build().unwrap());
        let c = CacheConfig::builder()
            .timing_from(&model, 1.0)
            .build()
            .unwrap();
        assert_eq!(c.read_cycles(), 4);
        assert_eq!(c.write_cycles(), 2);
    }

    #[test]
    fn array_config_roundtrip() {
        let c = CacheConfig::default();
        let a = c.array_config(CellKind::SttMram).unwrap();
        assert_eq!(a.capacity_bytes(), c.capacity_bytes());
        assert_eq!(a.line_bits(), c.line_bytes() * 8);
    }
}

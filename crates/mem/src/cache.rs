//! The timed set-associative cache.

use crate::addr::{Addr, Cycle, DecodedAddr, LineAddr};
use crate::banks::BankSchedule;
use crate::config::{CacheConfig, WritePolicy};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::set::{CacheSet, LookupResult};
use crate::stats::CacheStats;
use crate::write_buffer::WriteBuffer;
use crate::MemoryLevel;

/// Which level ultimately provided the data for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// This cache level (a hit).
    ThisLevel,
    /// A lower level (this level missed).
    Lower,
    /// The main-memory backstop.
    Memory,
}

/// Timing result of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data is available (reads) or accepted (writes).
    pub complete_at: Cycle,
    /// Who served the access.
    pub served_by: ServedBy,
}

/// A timed, banked, set-associative, write-back/write-allocate cache with
/// MSHRs and an eviction write buffer.
///
/// Generic over its next level, so hierarchies compose by nesting:
/// `Cache<Cache<MainMemory>>`. All policies follow the paper's platform
/// (§VI): true LRU, write-back, write-allocate, line-interleaved banks.
///
/// # Example
///
/// ```
/// use sttcache_mem::{Addr, Cache, CacheConfig, MainMemory, MemoryLevel};
///
/// # fn main() -> Result<(), sttcache_mem::MemError> {
/// let l2 = Cache::new(
///     CacheConfig::builder()
///         .capacity_bytes(2 * 1024 * 1024)
///         .associativity(16)
///         .read_cycles(12)
///         .write_cycles(12)
///         .build()?,
///     MainMemory::new(100),
/// );
/// let mut dl1 = Cache::new(CacheConfig::builder().build()?, l2);
/// dl1.read(Addr(0), 0);
/// assert_eq!(dl1.next_level().stats().reads, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache<N> {
    config: CacheConfig,
    /// Cached [`CacheConfig::sets`]: the set count is derived by integer
    /// division, and the decode math needs it on every access.
    set_count: usize,
    sets: Vec<CacheSet>,
    banks: BankSchedule,
    mshrs: MshrFile,
    write_buffer: WriteBuffer,
    next: N,
    stats: CacheStats,
    /// Array writes performed (drives the deterministic AWARE slow-write
    /// cadence).
    array_writes: u64,
    /// Compact tag mirror of `sets` for the hit fast path: one `u64` tag
    /// per way, ways of a set contiguous (`set * ways + way`). Kept in
    /// lock-step with [`CacheSet::fill`]/invalidate by the only two code
    /// paths that change residency; audited against `sets` whenever the
    /// invariant gate is armed. Empty when the mirror is disabled
    /// (associativity above [`MIRROR_MAX_WAYS`]).
    mirror_tags: Vec<u64>,
    /// Valid-way bitmask per set, same lifetime rules as `mirror_tags`.
    mirror_valid: Vec<u64>,
    /// Telemetry component label (`"dl1"`, `"l2"`, …).
    component: &'static str,
    /// Pre-resolved wear/share telemetry slots, re-resolved whenever the
    /// component label changes.
    slot_set_writes: crate::telemetry::Slot,
    slot_bank_writes: crate::telemetry::Slot,
    slot_bank_reads: crate::telemetry::Slot,
}

/// Widest associativity the compact tag mirror can represent (one valid
/// bit per way in a `u64`). Wider caches simply take the general path.
const MIRROR_MAX_WAYS: usize = 64;

impl<N: MemoryLevel> Cache<N> {
    /// Creates a cache with the given configuration in front of `next`.
    pub fn new(config: CacheConfig, next: N) -> Self {
        let mirrored = config.associativity() <= MIRROR_MAX_WAYS;
        Cache {
            sets: (0..config.sets())
                .map(|i| {
                    CacheSet::with_policy(
                        config.associativity(),
                        config.replacement(),
                        i as u64 + 1,
                    )
                })
                .collect(),
            banks: BankSchedule::new(config.banks()),
            mshrs: MshrFile::new(config.mshr_entries()),
            write_buffer: WriteBuffer::new(config.write_buffer_entries()),
            mirror_tags: vec![
                0;
                if mirrored {
                    config.sets() * config.associativity()
                } else {
                    0
                }
            ],
            mirror_valid: vec![0; if mirrored { config.sets() } else { 0 }],
            set_count: config.sets(),
            config,
            next,
            stats: CacheStats::new(),
            array_writes: 0,
            component: "cache",
            slot_set_writes: crate::telemetry::Slot::indexed("cache", "set_writes"),
            slot_bank_writes: crate::telemetry::Slot::indexed("cache", "bank_writes"),
            slot_bank_reads: crate::telemetry::Slot::indexed("cache", "bank_reads"),
        }
    }

    /// Whether the compact tag mirror is maintained for this geometry.
    #[inline]
    fn mirrored(&self) -> bool {
        !self.mirror_valid.is_empty()
    }

    /// Records `tag` landing in `(set_index, way)` in the tag mirror.
    #[inline]
    fn mirror_fill(&mut self, set_index: usize, way: usize, tag: u64) {
        if self.mirrored() {
            self.mirror_tags[set_index * self.config.associativity() + way] = tag;
            self.mirror_valid[set_index] |= 1 << way;
        }
    }

    /// Rebuilds one set's slice of the tag mirror from the authoritative
    /// way state (used after invalidations, which do not know the way).
    fn mirror_rebuild_set(&mut self, set_index: usize) {
        if !self.mirrored() {
            return;
        }
        let ways = self.config.associativity();
        let base = set_index * ways;
        let mut mask = 0u64;
        for (way, tag) in self.sets[set_index].way_tags().enumerate() {
            if let Some(tag) = tag {
                self.mirror_tags[base + way] = tag;
                mask |= 1 << way;
            }
        }
        self.mirror_valid[set_index] = mask;
    }

    /// Probes the compact tag mirror for `tag` in `set_index`.
    #[inline]
    fn mirror_probe(&self, set_index: usize, tag: u64) -> Option<usize> {
        let base = set_index * self.config.associativity();
        let mut mask = self.mirror_valid[set_index];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            if self.mirror_tags[base + way] == tag {
                return Some(way);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Names the component this cache's telemetry is recorded under
    /// (propagated to the banks, MSHRs and write buffer). The platform
    /// labels its levels `"dl1"` and `"l2"`; standalone caches default to
    /// `"cache"`.
    pub fn set_telemetry_component(&mut self, component: &'static str) {
        self.component = component;
        self.slot_set_writes = crate::telemetry::Slot::indexed(component, "set_writes");
        self.slot_bank_writes = crate::telemetry::Slot::indexed(component, "bank_writes");
        self.slot_bank_reads = crate::telemetry::Slot::indexed(component, "bank_reads");
        self.banks.set_telemetry_component(component);
        self.mshrs.set_telemetry_component(component);
        self.write_buffer.set_telemetry_component(component);
    }

    /// Records one data-array write for the wear map and per-bank shares.
    #[inline]
    fn telemetry_array_write(&self, set_index: usize, bank: usize) {
        if crate::telemetry::enabled() {
            self.slot_set_writes.add_at(set_index, 1);
            self.slot_bank_writes.add_at(bank, 1);
        }
    }

    /// Records one data/tag-array read for the per-bank shares.
    #[inline]
    fn telemetry_array_read(&self, bank: usize) {
        if crate::telemetry::enabled() {
            self.slot_bank_reads.add_at(bank, 1);
        }
    }

    /// The latency of the next array write, honouring the asymmetric
    /// (AWARE) write model when configured.
    fn next_write_cycles(&mut self) -> u64 {
        self.array_writes += 1;
        match self.config.asymmetric_write() {
            Some(aw) if self.array_writes.is_multiple_of(aw.slow_period) => aw.slow_cycles,
            _ => self.config.write_cycles(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The next level (for inspecting its statistics).
    pub fn next_level(&self) -> &N {
        &self.next
    }

    /// Mutable access to the next level.
    pub fn next_level_mut(&mut self) -> &mut N {
        &mut self.next
    }

    /// Whether the line containing `addr` is present (tag probe only; no
    /// state change, no timing).
    pub fn contains(&self, addr: Addr) -> bool {
        let line = self.line_of(addr);
        let set = &self.sets[line.set_index(self.set_count)];
        set.probe(line.tag(self.set_count)).is_some()
    }

    /// Occupies the bank serving `addr` for `cycles` starting no earlier
    /// than `from`, returning the actual start cycle.
    ///
    /// Used by wide-buffer front-ends to model line promotions that keep
    /// the array busy after the critical word has been returned (paper
    /// §IV: "the promotion may take as long as 4 cache cycles").
    pub fn occupy_bank(&mut self, addr: Addr, from: Cycle, cycles: u64) -> Cycle {
        let bank = self.line_of(addr).bank(self.config.banks());
        self.banks.reserve(bank, from, cycles)
    }

    /// The cycle at which the bank serving `addr` becomes free.
    pub fn bank_free_at(&self, addr: Addr) -> Cycle {
        self.banks
            .free_at(self.line_of(addr).bank(self.config.banks()))
    }

    /// The MSHR file (for drain verification and occupancy checks).
    pub fn mshrs(&self) -> &MshrFile {
        &self.mshrs
    }

    /// The eviction write buffer (for drain verification).
    pub fn write_buffer(&self) -> &WriteBuffer {
        &self.write_buffer
    }

    /// Base addresses of every resident line, for post-run verification
    /// against a functional oracle: a drained hierarchy may only hold
    /// lines the program actually touched.
    pub fn resident_lines(&self) -> Vec<Addr> {
        let sets_count = self.set_count;
        let line_bytes = self.config.line_bytes();
        let mut lines = Vec::new();
        for (set_index, set) in self.sets.iter().enumerate() {
            for (tag, _) in set.iter_valid() {
                lines.push(LineAddr::from_parts(tag, set_index, sets_count).base(line_bytes));
            }
        }
        lines
    }

    /// Runs the per-set structural checks and the MSHR occupancy check,
    /// reporting through [`invariants`](crate::invariants). Called on the
    /// hot paths when the gate is on; harnesses may also call it directly.
    pub fn check_invariants(&self, now: Cycle) {
        for (i, set) in self.sets.iter().enumerate() {
            set.check_invariants(i, now);
        }
        self.check_mirror(now);
        self.mshrs.check_invariants(now);
        self.write_buffer.check_invariants(now);
    }

    /// Audits the compact tag mirror against the authoritative way state.
    /// The fast path never runs while the invariant gate is armed, so this
    /// catches maintenance bugs (a residency change that bypassed
    /// [`Cache::mirror_fill`]/[`Cache::mirror_rebuild_set`]) rather than
    /// fast-path bugs.
    fn check_mirror(&self, now: Cycle) {
        if !self.mirrored() {
            return;
        }
        let ways = self.config.associativity();
        for (i, set) in self.sets.iter().enumerate() {
            let mut mask = 0u64;
            for (way, tag) in set.way_tags().enumerate() {
                if let Some(tag) = tag {
                    mask |= 1 << way;
                    if self.mirror_tags[i * ways + way] != tag {
                        crate::invariants::report(
                            "cache",
                            now,
                            None,
                            format!(
                                "tag mirror stale in set {i} way {way}: mirror {:#x}, set {tag:#x}",
                                self.mirror_tags[i * ways + way]
                            ),
                        );
                    }
                }
            }
            if mask != self.mirror_valid[i] {
                crate::invariants::report(
                    "cache",
                    now,
                    None,
                    format!(
                        "valid mirror stale in set {i}: mirror {:#b}, set {mask:#b}",
                        self.mirror_valid[i]
                    ),
                );
            }
        }
    }

    /// End-of-run verification of this level: reports leaked MSHR
    /// allocations and any dirty line that survived draining. Levels
    /// below are checked by the caller (the front-end's drain verifier
    /// walks the hierarchy).
    pub fn check_drained(&self, now: Cycle) {
        self.mshrs.check_drained(now);
        let dirty = self.dirty_lines();
        if dirty > 0 {
            crate::invariants::report(
                "cache",
                now,
                None,
                format!("{dirty} dirty lines remain after drain"),
            );
        }
    }

    /// Number of dirty lines currently held.
    pub fn dirty_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter_valid().filter(|&(_, d)| d).count())
            .sum()
    }

    /// Writes every dirty line back to the next level (power-gating /
    /// checkpoint support: a volatile cache must drain before losing
    /// power; a non-volatile one keeps its contents and skips this).
    ///
    /// Lines stay resident and become clean. Returns the number of lines
    /// flushed and the cycle at which the last write-back has been
    /// accepted below.
    pub fn flush_dirty(&mut self, now: Cycle) -> (usize, Cycle) {
        let sets_count = self.set_count;
        let line_bytes = self.config.line_bytes();
        let mut flushed = 0;
        let mut done = now;
        for set_index in 0..sets_count {
            let dirty: Vec<u64> = self.sets[set_index]
                .iter_valid()
                .filter(|&(_, d)| d)
                .map(|(tag, _)| tag)
                .collect();
            for tag in dirty {
                let line = LineAddr::from_parts(tag, set_index, sets_count);
                // Read the line out of the array, then write it below.
                let bank = line.bank(self.config.banks());
                let start = self.banks.reserve(bank, done, self.config.read_cycles());
                let out = self
                    .next
                    .write(line.base(line_bytes), start + self.config.read_cycles());
                done = out.complete_at;
                self.sets[set_index].clean(tag);
                self.stats.writebacks += 1;
                flushed += 1;
            }
        }
        (flushed, done)
    }

    /// Invalidates the line containing `addr` if present, pushing it to the
    /// write buffer when dirty. Returns whether a line was invalidated.
    pub fn invalidate(&mut self, addr: Addr, now: Cycle) -> bool {
        let line = self.line_of(addr);
        let sets = self.set_count;
        let tag = line.tag(sets);
        match self.sets[line.set_index(sets)].invalidate(tag) {
            Some(dirty) => {
                self.mirror_rebuild_set(line.set_index(sets));
                if dirty {
                    self.push_writeback(line, now);
                }
                true
            }
            None => false,
        }
    }

    fn line_of(&self, addr: Addr) -> LineAddr {
        addr.line(self.config.line_bytes())
    }

    fn push_writeback(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        self.stats.writebacks += 1;
        let base = line.base(self.config.line_bytes());
        let proceed_at = {
            // Drain time: one next-level write from the moment the buffer
            // entry reaches the head. Use the next level's write timing.
            let drain_done = self.next.write(base, now).complete_at;
            let drain_cycles = drain_done.saturating_sub(now).max(1);
            self.write_buffer.push(line, now, drain_cycles)
        };
        self.stats.write_buffer_stall_cycles += proceed_at - now;
        proceed_at
    }

    /// Handles the miss path shared by reads and writes. Returns the cycle
    /// at which the line has been delivered to this level, and who served
    /// it.
    fn fill_miss(&mut self, line: LineAddr, now: Cycle) -> (Cycle, ServedBy) {
        // MSHR: merge with an in-flight fill, or allocate (waiting out a
        // full file first — one wait always frees an entry because every
        // allocation is completed within this call).
        let mut at = now;
        loop {
            match self.mshrs.probe_or_allocate(line, at) {
                MshrOutcome::Merged { ready_at } => {
                    self.stats.mshr_merges += 1;
                    return (ready_at.max(at), ServedBy::Lower);
                }
                MshrOutcome::Allocated => break,
                MshrOutcome::Full { retry_at } => {
                    self.stats.mshr_full_stall_cycles += retry_at.saturating_sub(at);
                    at = retry_at.max(at + 1);
                }
            }
        }

        // Tag check discovered the miss after one array read; the request
        // then goes below. The bank is busy for the tag read and again for
        // the fill write.
        let bank = line.bank(self.config.banks());
        let lookup_start = self.banks.reserve(bank, at, self.config.read_cycles());
        let lookup_done = lookup_start + self.config.read_cycles();
        self.telemetry_array_read(bank);

        let base = line.base(self.config.line_bytes());
        let below = self.next.read(base, lookup_done);
        let served_by = ServedBy::Lower;

        // Victim handling: a dirty victim goes to the write buffer. A full
        // buffer back-pressures the fill.
        let sets = self.set_count;
        let tag = line.tag(sets);
        let (victim, dirty_tag) = match self.sets[line.set_index(sets)].lookup(tag) {
            LookupResult::Miss { victim, dirty_tag } => (victim, dirty_tag),
            // A merged fill for this line may have installed it already.
            LookupResult::Hit(way) => {
                self.sets[line.set_index(sets)].touch(way, below.complete_at, false);
                self.mshrs.complete(line, below.complete_at);
                return (below.complete_at, served_by);
            }
        };
        let mut fill_ready = below.complete_at;
        if let Some(dtag) = dirty_tag {
            let victim_line = LineAddr::from_parts(dtag, line.set_index(sets), sets);
            let wb_ready = self.push_writeback(victim_line, fill_ready);
            fill_ready = fill_ready.max(wb_ready);
        }

        // Install the line; writing the fill occupies the bank.
        let fill_write = self.next_write_cycles();
        self.banks.reserve(bank, fill_ready, fill_write);
        let sets_len = self.set_count;
        self.sets[line.set_index(sets_len)].fill(victim, tag, false, fill_ready);
        self.mirror_fill(line.set_index(sets_len), victim, tag);
        self.stats.fills += 1;
        self.telemetry_array_write(line.set_index(sets_len), bank);
        self.mshrs.complete(line, fill_ready);
        (fill_ready, served_by)
    }

    /// Serves a read whose address decomposition was computed ahead of
    /// time (a compiled-trace replay). Identical in timing, statistics and
    /// state to [`MemoryLevel::read`]; the shift/mask address math is
    /// simply not repeated per access.
    ///
    /// `d` must be the address's decomposition under *this* cache's
    /// geometry (checked in debug builds).
    pub fn read_decoded(&mut self, d: DecodedAddr, now: Cycle) -> AccessOutcome {
        debug_assert_eq!(d.line, self.line_of(d.addr));
        debug_assert_eq!(d.set_index, d.line.set_index(self.set_count));
        debug_assert_eq!(d.bank, d.line.bank(self.config.banks()));
        self.read_at(d.addr, d.line, d.set_index, d.bank, now)
    }

    /// [`Cache::read_decoded`] for writes.
    pub fn write_decoded(&mut self, d: DecodedAddr, now: Cycle) -> AccessOutcome {
        debug_assert_eq!(d.line, self.line_of(d.addr));
        debug_assert_eq!(d.set_index, d.line.set_index(self.set_count));
        debug_assert_eq!(d.bank, d.line.bank(self.config.banks()));
        self.write_at(d.addr, d.line, d.set_index, d.bank, now)
    }

    /// The resident-hit fast path for reads: answers from the compact tag
    /// mirror without scanning the MSHR file or probing the gated
    /// observers. Byte-identical to the general path because it performs
    /// the same mutations in the same order (stats, bank schedule,
    /// replacement touch) and bails — returning `None` — in every
    /// situation where the general path would do anything more:
    ///
    /// * a fill is still in flight anywhere in this cache (the general
    ///   hit path consults [`MshrFile::ready_time`]);
    /// * the telemetry or invariant gate is armed (the general path
    ///   records observations / runs checks) — checked as one combined
    ///   atomic load through the `gates` cache;
    /// * the mirror misses (the access is a miss, or the mirror is
    ///   disabled for this geometry).
    #[inline]
    fn try_read_hit_fast(
        &mut self,
        line: LineAddr,
        set_index: usize,
        bank: usize,
        now: Cycle,
    ) -> Option<AccessOutcome> {
        if !self.mirrored() || self.mshrs.fills_pending(now) || crate::gates::any_observer_armed() {
            return None;
        }
        let tag = line.tag(self.set_count);
        let way = self.mirror_probe(set_index, tag)?;
        debug_assert_eq!(self.sets[set_index].probe(tag), Some(way));
        self.stats.reads += 1;
        self.stats.read_hits += 1;
        let start = self
            .banks
            .reserve_quiet(bank, now, self.config.read_cycles());
        self.sets[set_index].touch(way, start, false);
        // The full sync (not an incremental `start - now` bump) is
        // load-bearing: stage wrappers advance the bank tally between
        // accesses through `occupy_bank`, and the sync is what folds
        // those contributions into the report.
        self.sync_component_stats();
        Some(AccessOutcome {
            complete_at: start + self.config.read_cycles(),
            served_by: ServedBy::ThisLevel,
        })
    }

    /// [`Cache::try_read_hit_fast`] for write-back write hits. Also bails
    /// on write-through configurations (those touch the next level even on
    /// a hit). The AWARE slow-write cadence is preserved: the fast path
    /// advances the same `array_writes` counter through
    /// [`Cache::next_write_cycles`].
    #[inline]
    fn try_write_hit_fast(
        &mut self,
        line: LineAddr,
        set_index: usize,
        bank: usize,
        now: Cycle,
    ) -> Option<AccessOutcome> {
        if !self.mirrored()
            || !matches!(self.config.write_policy(), WritePolicy::WriteBack)
            || self.mshrs.fills_pending(now)
            || crate::gates::any_observer_armed()
        {
            return None;
        }
        let tag = line.tag(self.set_count);
        let way = self.mirror_probe(set_index, tag)?;
        debug_assert_eq!(self.sets[set_index].probe(tag), Some(way));
        self.stats.writes += 1;
        self.stats.write_hits += 1;
        let wc = self.next_write_cycles();
        let start = self.banks.reserve_quiet(bank, now, wc);
        self.sets[set_index].touch(way, start, true);
        self.sync_component_stats();
        Some(AccessOutcome {
            complete_at: start + wc,
            served_by: ServedBy::ThisLevel,
        })
    }

    /// Shared body of [`MemoryLevel::read`] and [`Cache::read_decoded`]:
    /// `line`, `set_index` and `bank` must be `addr`'s decomposition under
    /// this cache's geometry.
    #[inline]
    fn read_at(
        &mut self,
        addr: Addr,
        line: LineAddr,
        set_index: usize,
        bank: usize,
        now: Cycle,
    ) -> AccessOutcome {
        if let Some(out) = self.try_read_hit_fast(line, set_index, bank, now) {
            return out;
        }
        self.read_at_general(addr, line, set_index, bank, now)
    }

    /// The full read path (misses, in-flight fills, armed gates). The fast
    /// path falls through to this; the lane-equivalence tests drive it
    /// directly as the referee.
    fn read_at_general(
        &mut self,
        addr: Addr,
        line: LineAddr,
        set_index: usize,
        bank: usize,
        now: Cycle,
    ) -> AccessOutcome {
        self.stats.reads += 1;
        let tag = line.tag(self.set_count);

        let lookup = self.sets[set_index].lookup(tag);
        let outcome = match lookup {
            LookupResult::Hit(way) => {
                self.stats.read_hits += 1;
                // Data of an in-flight fill may not have arrived yet.
                let avail = self.mshrs.ready_time(line, now).map_or(now, |r| r.max(now));
                let start = self.banks.reserve(bank, avail, self.config.read_cycles());
                self.telemetry_array_read(bank);
                self.sets[set_index].touch(way, start, false);
                AccessOutcome {
                    complete_at: start + self.config.read_cycles(),
                    served_by: ServedBy::ThisLevel,
                }
            }
            LookupResult::Miss { .. } => {
                let (ready, served_by) = self.fill_miss(line, now);
                // The critical word is forwarded to the requester as the
                // fill arrives; no second array read is charged.
                AccessOutcome {
                    complete_at: ready,
                    served_by,
                }
            }
        };
        self.sync_component_stats();
        if crate::invariants::enabled() {
            self.check_access(addr, now, outcome.complete_at);
        }
        outcome
    }

    /// Shared body of [`MemoryLevel::write`] and [`Cache::write_decoded`].
    #[inline]
    fn write_at(
        &mut self,
        addr: Addr,
        line: LineAddr,
        set_index: usize,
        bank: usize,
        now: Cycle,
    ) -> AccessOutcome {
        if let Some(out) = self.try_write_hit_fast(line, set_index, bank, now) {
            return out;
        }
        self.write_at_general(addr, line, set_index, bank, now)
    }

    /// The full write path; see [`Cache::read_at_general`].
    fn write_at_general(
        &mut self,
        addr: Addr,
        line: LineAddr,
        set_index: usize,
        bank: usize,
        now: Cycle,
    ) -> AccessOutcome {
        self.stats.writes += 1;
        let sets = self.set_count;
        let tag = line.tag(sets);

        let lookup = self.sets[set_index].lookup(tag);
        let outcome = match (lookup, self.config.write_policy()) {
            (LookupResult::Hit(way), WritePolicy::WriteBack) => {
                self.stats.write_hits += 1;
                let avail = self.mshrs.ready_time(line, now).map_or(now, |r| r.max(now));
                let wc = self.next_write_cycles();
                let start = self.banks.reserve(bank, avail, wc);
                self.telemetry_array_write(set_index, bank);
                self.sets[set_index].touch(way, start, true);
                AccessOutcome {
                    complete_at: start + wc,
                    served_by: ServedBy::ThisLevel,
                }
            }
            (LookupResult::Hit(way), WritePolicy::WriteThrough) => {
                self.stats.write_hits += 1;
                let start = self.banks.reserve(bank, now, self.config.write_cycles());
                self.telemetry_array_write(set_index, bank);
                self.sets[set_index].touch(way, start, false);
                let below = self.next.write(line.base(self.config.line_bytes()), start);
                AccessOutcome {
                    complete_at: below.complete_at,
                    served_by: ServedBy::ThisLevel,
                }
            }
            (LookupResult::Miss { .. }, WritePolicy::WriteBack) => {
                // Write-allocate: fetch the line, then perform the write hit
                // ("the data in the cache location is loaded in the block
                // from the L2/main memory and this is followed by the write
                // hit operation", §IV).
                let (mut ready, served_by) = self.fill_miss(line, now);
                // A merged fill can complete without the line resident:
                // fills install eagerly at a future timestamp, so later
                // same-set misses in program order may already have
                // evicted the line this request merged into. Physically
                // the merged requester arrives after that eviction and
                // has to re-fetch the line like any fresh miss. The
                // retry makes progress: a merge always returns a ready
                // time strictly past the probe time, and once the probe
                // reaches it the stale entry is reclaimed and the fill
                // installs the line.
                let way = loop {
                    match self.sets[set_index].lookup(tag) {
                        LookupResult::Hit(way) => break way,
                        LookupResult::Miss { .. } => {
                            let (r, _) = self.fill_miss(line, ready);
                            ready = r;
                        }
                    }
                };
                let wc = self.next_write_cycles();
                let start = self.banks.reserve(bank, ready, wc);
                self.telemetry_array_write(set_index, bank);
                self.sets[set_index].touch(way, start, true);
                AccessOutcome {
                    complete_at: start + wc,
                    served_by,
                }
            }
            (LookupResult::Miss { .. }, WritePolicy::WriteThrough) => {
                // No-allocate: the write goes straight below.
                let below = self.next.write(line.base(self.config.line_bytes()), now);
                AccessOutcome {
                    complete_at: below.complete_at,
                    served_by: ServedBy::Lower,
                }
            }
        };
        self.sync_component_stats();
        if crate::invariants::enabled() {
            self.check_access(addr, now, outcome.complete_at);
        }
        outcome
    }

    fn sync_component_stats(&mut self) {
        self.stats.bank_conflict_cycles = self.banks.conflict_cycles();
        self.stats.mshr_merges = self.mshrs.merges();
    }

    /// Post-access checks run when the invariant gate is on: the touched
    /// set must be structurally valid, every MSHR allocation made during
    /// the access must have been completed before it returned, and time
    /// must not run backwards.
    fn check_access(&self, addr: Addr, now: Cycle, complete_at: Cycle) {
        if complete_at < now {
            crate::invariants::report(
                "cache",
                now,
                Some(addr.0),
                format!("access completed in the past (at {complete_at})"),
            );
        }
        let line = self.line_of(addr);
        let set_index = line.set_index(self.set_count);
        self.sets[set_index].check_invariants(set_index, complete_at);
        if self.mshrs.unfinished_allocations() > 0 {
            crate::invariants::report(
                "mshr",
                now,
                Some(addr.0),
                format!(
                    "{} allocation(s) left incomplete after an access returned",
                    self.mshrs.unfinished_allocations()
                ),
            );
        }
        self.write_buffer.check_invariants(now);
    }
}

impl<N: MemoryLevel> MemoryLevel for Cache<N> {
    fn read(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        let line = self.line_of(addr);
        let set_index = line.set_index(self.set_count);
        let bank = line.bank(self.config.banks());
        self.read_at(addr, line, set_index, bank, now)
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        let line = self.line_of(addr);
        let set_index = line.set_index(self.set_count);
        let bank = line.bank(self.config.banks());
        self.write_at(addr, line, set_index, bank, now)
    }

    fn line_bytes(&self) -> usize {
        self.config.line_bytes()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        self.banks.reset_stats();
        self.mshrs.reset_stats();
        self.write_buffer.reset_stats();
        self.next.reset_stats();
    }

    fn read_decoded(&mut self, d: DecodedAddr, now: Cycle) -> AccessOutcome {
        Cache::read_decoded(self, d, now)
    }

    fn write_decoded(&mut self, d: DecodedAddr, now: Cycle) -> AccessOutcome {
        Cache::write_decoded(self, d, now)
    }

    fn contains(&self, addr: Addr) -> bool {
        Cache::contains(self, addr)
    }

    fn occupy_bank(&mut self, addr: Addr, from: Cycle, cycles: u64) -> Cycle {
        Cache::occupy_bank(self, addr, from, cycles)
    }

    fn next_lower(&self) -> Option<&dyn MemoryLevel> {
        Some(&self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MainMemory;

    fn dl1() -> Cache<MainMemory> {
        Cache::new(
            CacheConfig::builder().build().unwrap(),
            MainMemory::new(100),
        )
    }

    fn sram_dl1() -> Cache<MainMemory> {
        Cache::new(
            CacheConfig::builder()
                .line_bytes(32)
                .read_cycles(1)
                .write_cycles(1)
                .build()
                .unwrap(),
            MainMemory::new(100),
        )
    }

    #[test]
    fn merged_write_refetches_an_evicted_line() {
        // Regression for a panic the trace fuzzer found: back-to-back
        // same-set write misses at the same cycle. The default config is
        // 2-way, so writes C and D (issued while A's fill is still in
        // flight) evict A; the second write to A then *merges* with A's
        // stale MSHR entry and used to find the line absent after
        // fill_miss returned ("line was just filled").
        let mut c = dl1();
        let sets = c.config().sets() as u64;
        let stride = sets * c.config().line_bytes() as u64;
        let a = Addr(0);
        c.write(a, 0); // allocate A; fill lands far in the future
        c.write(Addr(stride), 0); // B
        c.write(Addr(2 * stride), 0); // C — evicts A or B
        c.write(Addr(3 * stride), 0); // D — the other one is gone too
        let out = c.write(a, 1); // merges with A's in-flight entry
        assert!(out.complete_at > 1);
        assert!(c.contains(a), "the re-fetch must install the line");
    }

    #[test]
    fn cold_read_misses_to_memory() {
        let mut c = dl1();
        let out = c.read(Addr(0), 0);
        // Tag check (4) + memory (100).
        assert_eq!(out.complete_at, 104);
        assert_eq!(out.served_by, ServedBy::Lower);
        assert_eq!(c.stats().read_misses(), 1);
    }

    #[test]
    fn second_read_hits_at_read_latency() {
        let mut c = dl1();
        // Warm the line; wait out the fill-write bank shadow (2 cycles).
        let t = c.read(Addr(0), 0).complete_at + 10;
        let out = c.read(Addr(8), t);
        assert_eq!(out.complete_at, t + 4);
        assert_eq!(out.served_by, ServedBy::ThisLevel);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn hit_immediately_after_fill_waits_for_fill_write() {
        let mut c = dl1();
        let t = c.read(Addr(0), 0).complete_at;
        // The fill is still being written into the bank for write_cycles
        // (2); the hit read starts after it.
        assert_eq!(c.read(Addr(8), t).complete_at, t + 2 + 4);
    }

    #[test]
    fn sram_hit_is_one_cycle() {
        let mut c = sram_dl1();
        let t = c.read(Addr(0), 0).complete_at + 10;
        assert_eq!(c.read(Addr(0), t).complete_at, t + 1);
    }

    #[test]
    fn write_hit_takes_write_latency_and_dirties() {
        let mut c = dl1();
        let t = c.read(Addr(0), 0).complete_at + 10;
        let out = c.write(Addr(0), t);
        assert_eq!(out.complete_at, t + 2);
        assert_eq!(c.stats().write_hits, 1);
        // Evicting the dirty line later produces a write-back. Fill the set:
        // set 0 holds lines 0 and 512 (sets = 512); a third conflicting
        // line evicts LRU.
        let sets = c.config().sets() as u64;
        let lb = c.config().line_bytes() as u64;
        let t2 = c.read(Addr(sets * lb), out.complete_at).complete_at;
        let _ = c.read(Addr(2 * sets * lb), t2);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_miss_allocates() {
        let mut c = dl1();
        let out = c.write(Addr(0), 0);
        assert_eq!(c.stats().write_misses(), 1);
        assert_eq!(c.stats().fills, 1);
        // Tag check (4) + memory (100) + fill write (2) + write hit (2).
        assert_eq!(out.complete_at, 108);
        // The line is now present and dirty.
        assert!(c.contains(Addr(0)));
    }

    #[test]
    fn write_through_no_allocate() {
        let mut c = Cache::new(
            CacheConfig::builder()
                .write_policy(WritePolicy::WriteThrough)
                .build()
                .unwrap(),
            MainMemory::new(100),
        );
        let out = c.write(Addr(0), 0);
        assert!(!c.contains(Addr(0)));
        assert_eq!(out.complete_at, 100);
        // A write-through hit updates below as well.
        c.read(Addr(64), 0);
        let before = c.next_level().stats().writes;
        c.write(Addr(64), 500);
        assert_eq!(c.next_level().stats().writes, before + 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = dl1();
        let sets = c.config().sets() as u64;
        let lb = c.config().line_bytes() as u64;
        let stride = sets * lb; // same set, different tag
        let mut t = 0;
        t = c.read(Addr(0), t).complete_at;
        t = c.read(Addr(stride), t).complete_at;
        t = c.read(Addr(0), t).complete_at; // refresh line 0
        t = c.read(Addr(2 * stride), t).complete_at; // evicts `stride`
        assert!(c.contains(Addr(0)));
        assert!(!c.contains(Addr(stride)));
        let _ = t;
    }

    #[test]
    fn bank_conflicts_delay_same_bank_accesses() {
        let mut c = dl1();
        // Lines 0 and 4 share bank 0 (4 banks); warm both, plus line 1 in
        // bank 1; then wait out the fill shadows.
        let lb = c.config().line_bytes() as u64;
        let mut t = c.read(Addr(0), 0).complete_at;
        t = c.read(Addr(4 * lb), t).complete_at;
        t = c.read(Addr(lb), t).complete_at + 10;
        // Issue two same-bank reads in the same cycle: the second waits.
        let a = c.read(Addr(0), t);
        let b = c.read(Addr(4 * lb), t);
        assert_eq!(a.complete_at, t + 4);
        assert_eq!(b.complete_at, t + 8);
        assert!(c.stats().bank_conflict_cycles >= 4);
        // Different banks do not wait on each other.
        let warm = t + 100;
        let x = c.read(Addr(0), warm);
        let y = c.read(Addr(lb), warm);
        assert_eq!(x.complete_at, warm + 4);
        assert_eq!(y.complete_at, warm + 4);
    }

    #[test]
    fn mshr_merges_inflight_line() {
        let mut c = dl1();
        let a = c.read(Addr(0), 0);
        // Second access to the same line while the fill is in flight: the
        // tag is installed but data arrives with the fill, so the hit waits.
        let b = c.read(Addr(8), 1);
        assert!(b.complete_at >= a.complete_at);
    }

    #[test]
    fn occupy_bank_blocks_later_reads() {
        let mut c = dl1();
        let t = c.read(Addr(0), 0).complete_at + 10;
        // Simulate a 4-cycle promotion occupying bank 0 from t.
        c.occupy_bank(Addr(0), t, 4);
        let out = c.read(Addr(0), t);
        assert_eq!(out.complete_at, t + 4 + 4);
    }

    #[test]
    fn invalidate_dirty_line_writes_back() {
        let mut c = dl1();
        c.write(Addr(0), 0);
        let wb_before = c.stats().writebacks;
        assert!(c.invalidate(Addr(0), 200));
        assert_eq!(c.stats().writebacks, wb_before + 1);
        assert!(!c.contains(Addr(0)));
        assert!(!c.invalidate(Addr(0), 201));
    }

    #[test]
    fn stats_reset_cascades() {
        let mut c = dl1();
        c.read(Addr(0), 0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.next_level().stats().accesses(), 0);
    }

    #[test]
    fn two_level_hierarchy_counts_correctly() {
        let l2 = Cache::new(
            CacheConfig::builder()
                .capacity_bytes(2 * 1024 * 1024)
                .associativity(16)
                .read_cycles(12)
                .write_cycles(12)
                .banks(1)
                .build()
                .unwrap(),
            MainMemory::new(100),
        );
        let mut dl1 = Cache::new(CacheConfig::builder().build().unwrap(), l2);
        let t = dl1.read(Addr(0), 0).complete_at;
        // DL1 tag (4) + L2 tag (12) + memory (100) = 116.
        assert_eq!(t, 116);
        // A later read hits DL1 without touching L2 again.
        let t2 = dl1.read(Addr(0), t + 10).complete_at;
        assert_eq!(t2, t + 10 + 4);
        assert_eq!(dl1.next_level().stats().reads, 1);
    }

    #[test]
    fn flush_drains_every_dirty_line() {
        let mut c = dl1();
        let mut t = 0;
        for i in 0..6u64 {
            t = c.write(Addr(i * 64), t).complete_at + 5;
        }
        assert_eq!(c.dirty_lines(), 6);
        let wb_before = c.next_level().stats().writes;
        let (flushed, done) = c.flush_dirty(t);
        assert_eq!(flushed, 6);
        assert!(done > t);
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.next_level().stats().writes, wb_before + 6);
        // Lines remain resident (flush, not invalidate).
        assert!(c.contains(Addr(0)));
        // A second flush is free.
        assert_eq!(c.flush_dirty(done).0, 0);
    }

    #[test]
    fn asymmetric_writes_follow_the_cadence() {
        use crate::config::AsymmetricWrite;
        let cfg = CacheConfig::builder()
            .asymmetric_write(AsymmetricWrite {
                slow_cycles: 6,
                slow_period: 2,
            })
            .build()
            .unwrap();
        let mut c = Cache::new(cfg, MainMemory::new(100));
        // Warm the line, wait out the fill shadow.
        let t = c.read(Addr(0), 0).complete_at + 20;
        // Array writes so far: 1 (the fill). The next write is the 2nd
        // array write -> slow (6 cycles); the one after is fast (2).
        let w1 = c.write(Addr(0), t);
        assert_eq!(w1.complete_at, t + 6);
        let t2 = w1.complete_at + 10;
        let w2 = c.write(Addr(0), t2);
        assert_eq!(w2.complete_at, t2 + 2);
    }

    #[test]
    fn invalid_asymmetric_configs_rejected() {
        use crate::config::AsymmetricWrite;
        assert!(CacheConfig::builder()
            .asymmetric_write(AsymmetricWrite {
                slow_cycles: 1,
                slow_period: 4
            })
            .build()
            .is_err());
        assert!(CacheConfig::builder()
            .asymmetric_write(AsymmetricWrite {
                slow_cycles: 8,
                slow_period: 0
            })
            .build()
            .is_err());
    }

    #[test]
    fn decoded_accesses_match_plain_accesses() {
        let mut plain = dl1();
        let mut decoded = dl1();
        let sets = plain.config().sets();
        let banks = plain.config().banks();
        let lb = plain.config().line_bytes();
        let stride = (sets * lb) as u64;
        let addrs = [0u64, 8, 64, stride, 2 * stride, 0xdead_beef, u64::MAX];
        let mut t = 0;
        for (i, &raw) in addrs.iter().enumerate() {
            let a = Addr(raw);
            let d = DecodedAddr::decode(a, lb, sets, banks);
            let (p, q) = if i % 2 == 0 {
                (plain.read(a, t), decoded.read_decoded(d, t))
            } else {
                (plain.write(a, t), decoded.write_decoded(d, t))
            };
            assert_eq!(p, q, "decoded access diverged at {a}");
            t = p.complete_at + 3;
        }
        assert_eq!(plain.stats(), decoded.stats());
        assert_eq!(plain.dirty_lines(), decoded.dirty_lines());
    }

    #[test]
    fn hit_fast_path_matches_general_path() {
        // Drive one cache through the public entry points (fast path
        // eligible) and a twin through the general bodies only; every
        // outcome, the stats block and the dirty set must agree.
        let mut fast = dl1();
        let mut slow = dl1();
        let sets = fast.config().sets();
        let banks = fast.config().banks();
        let lb = fast.config().line_bytes();
        let stride = (sets * lb) as u64;
        // Misses, hits, same-set conflict evictions, same-bank conflicts,
        // an adversarial tag, and re-reads during fill shadows.
        let addrs = [
            0u64,
            0,
            8,
            64,
            64,
            stride,
            2 * stride,
            0,
            4 * lb as u64,
            4 * lb as u64,
            u64::MAX,
            u64::MAX,
            0,
        ];
        let mut t = 0;
        for (i, &raw) in addrs.iter().enumerate() {
            let a = Addr(raw);
            let line = a.line(lb);
            let (si, bk) = (line.set_index(sets), line.bank(banks));
            let (f, s) = if i % 3 == 2 {
                (fast.write(a, t), slow.write_at_general(a, line, si, bk, t))
            } else {
                (fast.read(a, t), slow.read_at_general(a, line, si, bk, t))
            };
            assert_eq!(f, s, "fast path diverged at access {i} ({a})");
            // Alternate between back-to-back issue (fill shadows, bank
            // conflicts) and drained issue (fast-path hits).
            t = if i % 2 == 0 {
                f.complete_at + 20
            } else {
                t + 1
            };
        }
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.dirty_lines(), slow.dirty_lines());
    }

    #[test]
    fn fast_path_preserves_aware_cadence() {
        use crate::config::AsymmetricWrite;
        let cfg = || {
            CacheConfig::builder()
                .asymmetric_write(AsymmetricWrite {
                    slow_cycles: 6,
                    slow_period: 2,
                })
                .build()
                .unwrap()
        };
        let mut fast = Cache::new(cfg(), MainMemory::new(100));
        let mut slow = Cache::new(cfg(), MainMemory::new(100));
        let sets = fast.config().sets();
        let banks = fast.config().banks();
        let lb = fast.config().line_bytes();
        let mut t = 0;
        for i in 0..6u64 {
            // Write-hit the same line repeatedly: the slow-write cadence is
            // global array-write count, so fast and general paths must
            // advance it identically.
            let a = Addr((i % 2) * 64);
            let line = a.line(lb);
            let f = fast.write(a, t);
            let s = slow.write_at_general(a, line, line.set_index(sets), line.bank(banks), t);
            assert_eq!(f, s, "cadence diverged at write {i}");
            t = f.complete_at + 20;
        }
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn mirror_survives_invalidation() {
        let mut c = dl1();
        c.write(Addr(0), 0);
        let t = c.read(Addr(64), 300).complete_at + 20;
        assert!(c.invalidate(Addr(0), t));
        // The invalidated line must miss — a stale mirror entry would let
        // the fast path "hit" it.
        let out = c.read(Addr(0), t + 10);
        assert_eq!(out.served_by, ServedBy::Lower);
        // The surviving line still fast-hits.
        let out2 = c.read(Addr(64), out.complete_at + 20);
        assert_eq!(out2.served_by, ServedBy::ThisLevel);
        assert_eq!(out2.complete_at, out.complete_at + 20 + 4);
    }

    #[test]
    fn telemetry_records_wear_bank_shares_and_occupancy() {
        use crate::telemetry;
        telemetry::take();
        telemetry::set_enabled(true);
        let mut c = dl1();
        c.set_telemetry_component("dl1");
        let mut t = 0;
        for i in 0..8u64 {
            t = c.write(Addr(i * 64), t).complete_at + 1;
        }
        telemetry::set_enabled(false);
        let snap = telemetry::take();
        // Every cold write is a fill (one array write) plus the write hit
        // that follows it (another), so the wear map totals 2 per access.
        let wear = snap.indexed_for("dl1", "set_writes").unwrap();
        assert_eq!(wear.total(), 16);
        assert_eq!(
            snap.indexed_for("dl1", "bank_writes").unwrap().total(),
            wear.total()
        );
        // The tag read of each miss is a bank read.
        assert_eq!(snap.indexed_for("dl1", "bank_reads").unwrap().total(), 8);
        // MSHR occupancy was observed once per miss.
        let occ = snap.histogram("dl1", "mshr_occupancy").unwrap();
        assert_eq!(occ.total, 8);
        // The same run with telemetry off must behave identically (the
        // instrumentation is read-only).
        let mut quiet = dl1();
        let mut t2 = 0;
        for i in 0..8u64 {
            t2 = quiet.write(Addr(i * 64), t2).complete_at + 1;
        }
        assert_eq!(t, t2);
        assert_eq!(c.stats(), quiet.stats());
    }

    #[test]
    fn wide_line_cache_indexing() {
        // 512-bit (64 B) lines vs 256-bit (32 B): adjacent 32 B blocks share
        // a 64 B line.
        let mut c = dl1();
        let t = c.read(Addr(0), 0).complete_at;
        let out = c.read(Addr(32), t);
        assert_eq!(out.served_by, ServedBy::ThisLevel);
        let mut s = sram_dl1();
        let t = s.read(Addr(0), 0).complete_at;
        let out = s.read(Addr(32), t);
        assert_eq!(out.served_by, ServedBy::Lower);
    }
}

//! Error type for hierarchy configuration.

use std::error::Error;
use std::fmt;

/// Error returned when a cache or hierarchy configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// Capacity is zero or not a power of two.
    InvalidCapacity(usize),
    /// Line size is zero, not a power of two, or exceeds the capacity.
    InvalidLineBytes(usize),
    /// Associativity is zero or exceeds the line count.
    InvalidAssociativity(usize),
    /// Bank count is zero or not a power of two.
    InvalidBanks(usize),
    /// Latency of zero cycles is not representable.
    InvalidLatency(&'static str),
    /// A buffer (MSHR file, write buffer) needs at least one entry.
    InvalidBufferDepth {
        /// Which buffer was misconfigured.
        buffer: &'static str,
        /// The rejected depth.
        depth: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidCapacity(c) => {
                write!(f, "capacity {c} bytes is not a non-zero power of two")
            }
            MemError::InvalidLineBytes(l) => write!(f, "line size {l} bytes is invalid"),
            MemError::InvalidAssociativity(a) => write!(f, "associativity {a} is invalid"),
            MemError::InvalidBanks(b) => write!(f, "bank count {b} is invalid"),
            MemError::InvalidLatency(which) => {
                write!(f, "{which} latency must be at least one cycle")
            }
            MemError::InvalidBufferDepth { buffer, depth } => {
                write!(f, "{buffer} depth {depth} must be at least one entry")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_concise() {
        for e in [
            MemError::InvalidCapacity(3),
            MemError::InvalidLineBytes(0),
            MemError::InvalidAssociativity(9),
            MemError::InvalidBanks(3),
            MemError::InvalidLatency("read"),
            MemError::InvalidBufferDepth {
                buffer: "write buffer",
                depth: 0,
            },
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}

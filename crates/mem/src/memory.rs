//! Main-memory backstop.

use crate::addr::{Addr, Cycle};
use crate::cache::{AccessOutcome, ServedBy};
use crate::stats::CacheStats;
use crate::MemoryLevel;

/// A fixed-latency main memory terminating the hierarchy.
///
/// Bandwidth is modelled with a single channel: back-to-back requests
/// serialize at `channel_cycles` apart (default: a quarter of the access
/// latency), which is sufficient for the paper's single-core platform.
///
/// # Example
///
/// ```
/// use sttcache_mem::{Addr, MainMemory, MemoryLevel};
///
/// let mut mem = MainMemory::new(100);
/// let out = mem.read(Addr(0), 0);
/// assert_eq!(out.complete_at, 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MainMemory {
    latency: u64,
    channel_cycles: u64,
    channel_free_at: Cycle,
    line_bytes: usize,
    stats: CacheStats,
}

impl MainMemory {
    /// Creates a memory with the given access latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(latency: u64) -> Self {
        assert!(latency > 0, "memory latency must be at least one cycle");
        MainMemory {
            latency,
            channel_cycles: (latency / 4).max(1),
            channel_free_at: 0,
            line_bytes: 64,
            stats: CacheStats::new(),
        }
    }

    /// Sets the channel occupancy per request (bandwidth model).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn with_channel_cycles(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "channel occupancy must be at least one cycle");
        self.channel_cycles = cycles;
        self
    }

    /// Sets the transfer granularity reported by [`MemoryLevel::line_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two.
    pub fn with_line_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes.is_power_of_two(), "line size must be a power of two");
        self.line_bytes = bytes;
        self
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    fn access(&mut self, now: Cycle) -> AccessOutcome {
        let start = self.channel_free_at.max(now);
        self.stats.bank_conflict_cycles += start - now;
        self.channel_free_at = start + self.channel_cycles;
        AccessOutcome {
            complete_at: start + self.latency,
            served_by: ServedBy::Memory,
        }
    }
}

impl MemoryLevel for MainMemory {
    fn read(&mut self, _addr: Addr, now: Cycle) -> AccessOutcome {
        self.stats.reads += 1;
        self.stats.read_hits += 1;
        self.access(now)
    }

    fn write(&mut self, _addr: Addr, now: Cycle) -> AccessOutcome {
        self.stats.writes += 1;
        self.stats.write_hits += 1;
        self.access(now)
    }

    fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    fn contains(&self, _addr: Addr) -> bool {
        // The backstop holds everything by definition.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_reads_and_writes() {
        let mut mem = MainMemory::new(100);
        assert_eq!(mem.read(Addr(0), 0).complete_at, 100);
        assert_eq!(mem.write(Addr(64), 200).complete_at, 300);
        assert_eq!(mem.stats().reads, 1);
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn channel_serializes_back_to_back_requests() {
        let mut mem = MainMemory::new(100).with_channel_cycles(25);
        assert_eq!(mem.read(Addr(0), 0).complete_at, 100);
        // Second request issued at the same cycle waits for the channel.
        assert_eq!(mem.read(Addr(64), 0).complete_at, 125);
        assert_eq!(mem.stats().bank_conflict_cycles, 25);
    }

    #[test]
    fn memory_never_misses() {
        let mut mem = MainMemory::new(10);
        mem.read(Addr(0), 0);
        mem.write(Addr(0), 0);
        assert_eq!(mem.stats().misses(), 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut mem = MainMemory::new(10);
        mem.read(Addr(0), 0);
        mem.reset_stats();
        assert_eq!(mem.stats().accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_panics() {
        let _ = MainMemory::new(0);
    }

    #[test]
    fn served_by_is_memory() {
        let mut mem = MainMemory::new(10);
        assert_eq!(mem.read(Addr(0), 0).served_by, ServedBy::Memory);
    }
}

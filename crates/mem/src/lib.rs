//! Memory-hierarchy framework for the `sttcache` simulator.
//!
//! This crate implements the memory substrate the paper's evaluation runs
//! on: set-associative write-back/write-allocate caches with true-LRU
//! replacement, banked data arrays with conflict modelling, miss-status
//! holding registers (MSHRs), eviction write buffers and a fixed-latency
//! main memory. Every component is timed in CPU clock cycles and keeps full
//! statistics so the paper's penalty decompositions (Fig. 4) are measured
//! rather than estimated.
//!
//! The hierarchy is composed through the [`MemoryLevel`] trait: a
//! [`Cache`] is generic over its next level, so the paper's platform is
//! simply `Cache (DL1) → Cache (L2) → MainMemory`.
//!
//! # Example
//!
//! ```
//! use sttcache_mem::{Addr, Cache, CacheConfig, MainMemory, MemoryLevel};
//!
//! # fn main() -> Result<(), sttcache_mem::MemError> {
//! // The paper's drop-in STT-MRAM DL1: 64 KB, 2-way, 64 B lines,
//! // 4 read / 2 write cycles, in front of a 100-cycle main memory.
//! let dl1 = CacheConfig::builder()
//!     .capacity_bytes(64 * 1024)
//!     .associativity(2)
//!     .line_bytes(64)
//!     .read_cycles(4)
//!     .write_cycles(2)
//!     .build()?;
//! let mut cache = Cache::new(dl1, MainMemory::new(100));
//! let miss = cache.read(Addr(0x1000), 0);
//! let hit = cache.read(Addr(0x1000), miss.complete_at);
//! assert!(miss.complete_at - 0 > hit.complete_at - miss.complete_at);
//! assert_eq!(cache.stats().read_hits, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod banks;
mod cache;
mod config;
mod error;
mod gates;
pub mod invariants;
mod memory;
mod mshr;
mod oracle;
mod prefetcher;
mod replacement;
mod set;
mod shared;
mod stats;
pub mod telemetry;
mod write_buffer;

pub use addr::{Addr, Cycle, DecodedAddr, LineAddr};
pub use banks::BankSchedule;
pub use cache::{AccessOutcome, Cache, ServedBy};
pub use config::{AsymmetricWrite, CacheConfig, CacheConfigBuilder, WritePolicy};
pub use error::MemError;
pub use invariants::InvariantViolation;
pub use memory::MainMemory;
pub use mshr::{MshrFile, MshrOutcome};
pub use oracle::ShadowOracle;
pub use prefetcher::{NextLinePrefetcher, PrefetcherStats};
pub use replacement::ReplacementPolicy;
pub use set::{CacheSet, LookupResult, Way};
pub use shared::Shared;
pub use stats::CacheStats;
pub use telemetry::TelemetrySnapshot;
pub use write_buffer::WriteBuffer;

/// A timed level of the memory hierarchy.
///
/// All operations take the current cycle `now` and return an
/// [`AccessOutcome`] whose `complete_at` is the cycle at which the data is
/// available (reads) or accepted (writes). Implementations maintain their
/// own internal resource timing (banks, buffers) and may therefore return
/// completion times later than `now + latency` under contention.
///
/// See the [crate-level example](crate) for composing levels into a
/// hierarchy.
pub trait MemoryLevel {
    /// Reads the line containing `addr`.
    fn read(&mut self, addr: Addr, now: Cycle) -> AccessOutcome;

    /// Writes into the line containing `addr`.
    fn write(&mut self, addr: Addr, now: Cycle) -> AccessOutcome;

    /// The line size of this level in bytes.
    fn line_bytes(&self) -> usize;

    /// Statistics for this level.
    fn stats(&self) -> &CacheStats;

    /// Resets statistics (not contents) of this level and everything below.
    fn reset_stats(&mut self);

    /// Whether the line containing `addr` is present at this level.
    ///
    /// A pure tag probe: no state, timing or statistics change. Levels
    /// without tags (the default) report `false`; [`MainMemory`] always
    /// reports `true`.
    fn contains(&self, _addr: Addr) -> bool {
        false
    }

    /// Reserves this level's access port for `addr` for `cycles` starting
    /// at `from`, returning the reservation's end cycle.
    ///
    /// Models side traffic (promotions, background fills) occupying the
    /// level's banks. Levels without bank contention (the default) accept
    /// the traffic for free and return `from` unchanged.
    fn occupy_bank(&mut self, _addr: Addr, from: Cycle, _cycles: u64) -> Cycle {
        from
    }

    /// [`MemoryLevel::read`] for an address whose line/set/bank
    /// decomposition was pre-computed by a trace-compilation pass.
    ///
    /// Must be timing- and state-identical to `read(d.addr, now)`. Levels
    /// that can exploit the decomposition ([`Cache`], when `d` was decoded
    /// under its geometry) override this; the default ignores it.
    fn read_decoded(&mut self, d: DecodedAddr, now: Cycle) -> AccessOutcome {
        self.read(d.addr, now)
    }

    /// [`MemoryLevel::read_decoded`] for writes.
    fn write_decoded(&mut self, d: DecodedAddr, now: Cycle) -> AccessOutcome {
        self.write(d.addr, now)
    }

    /// The level below this one, if it can be exposed by reference.
    ///
    /// Terminal levels ([`MainMemory`]) and levels with interior
    /// mutability ([`Shared`], whose contents live behind a `RefCell` and
    /// cannot be lent out) return `None`, ending hierarchy walks.
    fn next_lower(&self) -> Option<&dyn MemoryLevel> {
        None
    }

    /// Iterates this level and everything below it, top-down.
    ///
    /// ```
    /// use sttcache_mem::{Cache, CacheConfig, MainMemory, MemoryLevel};
    ///
    /// # fn main() -> Result<(), sttcache_mem::MemError> {
    /// let l2 = Cache::new(CacheConfig::builder().build()?, MainMemory::new(100));
    /// let dl1 = Cache::new(CacheConfig::builder().build()?, l2);
    /// assert_eq!(dl1.levels().count(), 3); // dl1, l2, memory
    /// # Ok(())
    /// # }
    /// ```
    fn levels(&self) -> Levels<'_>
    where
        Self: Sized,
    {
        Levels { cur: Some(self) }
    }
}

/// Top-down iterator over a hierarchy's levels (see [`MemoryLevel::levels`]).
pub struct Levels<'a> {
    cur: Option<&'a dyn MemoryLevel>,
}

impl std::fmt::Debug for Levels<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Levels")
            .field("exhausted", &self.cur.is_none())
            .finish()
    }
}

impl<'a> Iterator for Levels<'a> {
    type Item = &'a dyn MemoryLevel;

    fn next(&mut self) -> Option<Self::Item> {
        let cur = self.cur.take()?;
        self.cur = cur.next_lower();
        Some(cur)
    }
}

impl<M: MemoryLevel + ?Sized> MemoryLevel for Box<M> {
    fn read(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        (**self).read(addr, now)
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        (**self).write(addr, now)
    }

    fn line_bytes(&self) -> usize {
        (**self).line_bytes()
    }

    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }

    fn contains(&self, addr: Addr) -> bool {
        (**self).contains(addr)
    }

    fn occupy_bank(&mut self, addr: Addr, from: Cycle, cycles: u64) -> Cycle {
        (**self).occupy_bank(addr, from, cycles)
    }

    fn next_lower(&self) -> Option<&dyn MemoryLevel> {
        (**self).next_lower()
    }
}

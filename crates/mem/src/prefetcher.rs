//! Hardware next-line prefetcher.
//!
//! A tagged sequential prefetcher wrapped around a [`Cache`]: when two
//! consecutive demand reads touch adjacent lines, the line after next is
//! fetched in the background. This is the *hardware* alternative to the
//! paper's software (VWB-targeted) prefetching and is compared against it
//! by the extension experiments — the interesting result being that a
//! next-line prefetcher in the NVM DL1 cannot help NVM *read hits*, which
//! are the paper's actual bottleneck.

use crate::addr::{Addr, Cycle, LineAddr};
use crate::cache::{AccessOutcome, Cache};
use crate::stats::CacheStats;
use crate::MemoryLevel;

/// Statistics for the hardware prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetcherStats {
    /// Prefetches issued to the cache.
    pub issued: u64,
    /// Streams detected (adjacent-line read pairs).
    pub streams: u64,
    /// Prefetch candidates dropped because the line was already present.
    pub filtered: u64,
}

/// A next-line prefetcher in front of a [`Cache`].
///
/// Implements [`MemoryLevel`] and is therefore a drop-in wrapper anywhere
/// a cache goes.
///
/// # Example
///
/// ```
/// use sttcache_mem::{Addr, Cache, CacheConfig, MainMemory, MemoryLevel, NextLinePrefetcher};
///
/// # fn main() -> Result<(), sttcache_mem::MemError> {
/// let dl1 = Cache::new(CacheConfig::builder().build()?, MainMemory::new(100));
/// let mut pf = NextLinePrefetcher::new(dl1);
/// let mut now = 0;
/// // A sequential walk triggers stream detection and background fills.
/// for i in 0..4u64 {
///     now = pf.read(Addr(i * 64), now).complete_at + 5;
/// }
/// assert!(pf.prefetcher_stats().issued > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher<N> {
    inner: Cache<N>,
    last_line: Option<LineAddr>,
    stats: PrefetcherStats,
}

impl<N: MemoryLevel> NextLinePrefetcher<N> {
    /// Wraps a cache.
    pub fn new(inner: Cache<N>) -> Self {
        NextLinePrefetcher {
            inner,
            last_line: None,
            stats: PrefetcherStats::default(),
        }
    }

    /// The wrapped cache.
    pub fn inner(&self) -> &Cache<N> {
        &self.inner
    }

    /// Prefetcher statistics.
    pub fn prefetcher_stats(&self) -> &PrefetcherStats {
        &self.stats
    }

    fn observe(&mut self, line: LineAddr, now: Cycle) {
        if self.last_line == Some(LineAddr(line.0.wrapping_sub(1))) {
            self.stats.streams += 1;
            let next = LineAddr(line.0 + 1);
            let base = next.base(self.inner.config().line_bytes());
            if self.inner.contains(base) {
                self.stats.filtered += 1;
            } else {
                self.stats.issued += 1;
                // Background fill: the caller does not wait, but banks,
                // MSHRs and the next level see the traffic.
                let _ = self.inner.read(base, now);
            }
        }
        self.last_line = Some(line);
    }
}

impl<N: MemoryLevel> MemoryLevel for NextLinePrefetcher<N> {
    fn read(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        let out = self.inner.read(addr, now);
        let line = addr.line(self.inner.config().line_bytes());
        // Observe after the demand access so the prefetch contends behind
        // it, not ahead of it.
        self.observe(line, out.complete_at);
        out
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        self.inner.write(addr, now)
    }

    fn line_bytes(&self) -> usize {
        self.inner.line_bytes()
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
        self.inner.reset_stats();
    }

    fn contains(&self, addr: Addr) -> bool {
        self.inner.contains(addr)
    }

    fn occupy_bank(&mut self, addr: Addr, from: Cycle, cycles: u64) -> Cycle {
        self.inner.occupy_bank(addr, from, cycles)
    }

    fn next_lower(&self) -> Option<&dyn MemoryLevel> {
        MemoryLevel::next_lower(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::memory::MainMemory;

    fn pf() -> NextLinePrefetcher<MainMemory> {
        NextLinePrefetcher::new(Cache::new(
            CacheConfig::builder().build().expect("test config"),
            MainMemory::new(100),
        ))
    }

    #[test]
    fn sequential_walk_prefetches_ahead() {
        let mut p = pf();
        let mut now = 0;
        for i in 0..3u64 {
            now = p.read(Addr(i * 64), now).complete_at + 10;
        }
        assert!(p.prefetcher_stats().streams >= 2);
        assert!(p.prefetcher_stats().issued >= 1);
        // Line 3 was prefetched: a demand read at a quiet time is a hit.
        let out = p.read(Addr(3 * 64), now + 200);
        assert_eq!(out.served_by, crate::cache::ServedBy::ThisLevel);
    }

    #[test]
    fn random_accesses_do_not_trigger() {
        let mut p = pf();
        let mut now = 0;
        for addr in [0u64, 0x4000, 0x800, 0x10000] {
            now = p.read(Addr(addr), now).complete_at + 10;
        }
        assert_eq!(p.prefetcher_stats().streams, 0);
        assert_eq!(p.prefetcher_stats().issued, 0);
    }

    #[test]
    fn present_lines_are_filtered() {
        let mut p = pf();
        let mut now = 0;
        // Warm lines 0..4 backwards, then walk forwards: the next lines
        // are already present.
        for i in (0..4u64).rev() {
            now = p.read(Addr(i * 64), now).complete_at + 10;
        }
        for i in 0..3u64 {
            now = p.read(Addr(i * 64), now).complete_at + 10;
        }
        assert!(p.prefetcher_stats().filtered >= 2);
    }

    #[test]
    fn writes_do_not_train_the_prefetcher() {
        let mut p = pf();
        let mut now = 0;
        for i in 0..4u64 {
            now = p.write(Addr(i * 64), now).complete_at + 10;
        }
        assert_eq!(p.prefetcher_stats().streams, 0);
    }

    #[test]
    fn stats_reset_clears_everything() {
        let mut p = pf();
        let mut now = 0;
        for i in 0..3u64 {
            now = p.read(Addr(i * 64), now).complete_at + 10;
        }
        p.reset_stats();
        assert_eq!(*p.prefetcher_stats(), PrefetcherStats::default());
        assert_eq!(p.stats().accesses(), 0);
    }
}

//! Eviction write buffer.
//!
//! The paper: "A small write buffer is present … to hold the evicted data
//! temporarily, while being transferred to the L2, when the data block in
//! question has to be renewed." The buffer decouples dirty evictions from
//! the miss critical path; only when it is full does an eviction stall the
//! requester until the oldest entry drains.

use crate::addr::{Cycle, LineAddr};
use std::collections::VecDeque;

/// A FIFO of dirty lines draining to the next level.
///
/// # Example
///
/// ```
/// use sttcache_mem::{WriteBuffer, LineAddr};
///
/// let mut wb = WriteBuffer::new(2);
/// // Two evictions are absorbed without stalling...
/// assert_eq!(wb.push(LineAddr(1), 0, 100), 0);
/// assert_eq!(wb.push(LineAddr(2), 0, 100), 0);
/// // ...the third waits for the oldest entry to drain at cycle 100.
/// assert_eq!(wb.push(LineAddr(3), 0, 100), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBuffer {
    /// Pending entries and their drain-completion cycles.
    entries: VecDeque<(LineAddr, Cycle)>,
    capacity: usize,
    pushes: u64,
    full_stall_cycles: u64,
    /// Telemetry component label (the owning cache's name).
    component: &'static str,
    /// Pre-resolved depth telemetry slots (histogram + series).
    slot_depth_hist: crate::telemetry::Slot,
    slot_depth_series: crate::telemetry::Slot,
}

impl WriteBuffer {
    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            full_stall_cycles: 0,
            component: "cache",
            slot_depth_hist: crate::telemetry::Slot::histogram("cache", "write_buffer_depth"),
            slot_depth_series: crate::telemetry::Slot::series("cache", "write_buffer_depth"),
        }
    }

    /// Names the component telemetry is recorded under (the owning
    /// cache's label, e.g. `"dl1"`).
    pub fn set_telemetry_component(&mut self, component: &'static str) {
        self.component = component;
        self.slot_depth_hist = crate::telemetry::Slot::histogram(component, "write_buffer_depth");
        self.slot_depth_series = crate::telemetry::Slot::series(component, "write_buffer_depth");
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a dirty line at cycle `now`; the entry drains
    /// `drain_cycles` later. Returns the cycle at which the *requester* may
    /// proceed: `now` if space was free, otherwise the drain time of the
    /// oldest entry (a full-buffer stall).
    pub fn push(&mut self, line: LineAddr, now: Cycle, drain_cycles: u64) -> Cycle {
        self.drain(now);
        if crate::invariants::enabled() {
            self.check_reclaimed(now);
        }
        self.pushes += 1;
        let proceed_at = if self.entries.len() >= self.capacity {
            let oldest = self.entries.front().expect("full buffer is non-empty").1;
            self.full_stall_cycles += oldest.saturating_sub(now);
            self.drain(oldest);
            oldest
        } else {
            now
        };
        self.entries.push_back((line, proceed_at + drain_cycles));
        if crate::invariants::enabled() {
            self.check_invariants(now);
        }
        if crate::telemetry::enabled() {
            // Depth after the push; `entries.len()` directly — calling
            // `occupancy(now)` here would drain early and change
            // `contains()` behaviour under telemetry.
            let depth = self.entries.len() as u64;
            self.slot_depth_hist.observe(depth);
            self.slot_depth_series.sample(now, depth);
        }
        proceed_at
    }

    /// Structural checks, reported through
    /// [`invariants`](crate::invariants): occupancy never exceeds
    /// capacity. Sound at any cycle. Entries *leave* in push order by
    /// construction; their recorded completion times need not be
    /// monotone, because each models a next-level write charged at push
    /// time (a later victim can finish its L2 write earlier when it
    /// lands on an idle bank) — and under lazy reclamation a drained
    /// entry legitimately lingers until the next push or occupancy
    /// probe, so neither is checkable here.
    pub fn check_invariants(&self, now: Cycle) {
        if self.entries.len() > self.capacity {
            crate::invariants::report(
                "write-buffer",
                now,
                None,
                format!(
                    "{} entries exceed capacity {}",
                    self.entries.len(),
                    self.capacity
                ),
            );
        }
    }

    /// The stronger check that is only sound immediately after
    /// [`drain`](Self::drain) ran: no resident entry's completion may
    /// then lie in the past.
    fn check_reclaimed(&self, now: Cycle) {
        self.check_invariants(now);
        if let Some((line, done)) = self.entries.front() {
            if *done <= now {
                crate::invariants::report(
                    "write-buffer",
                    now,
                    Some(line.0),
                    format!("{line} drained at {done} but was not reclaimed"),
                );
            }
        }
    }

    /// Whether the buffer currently holds `line` (a read may be serviced
    /// from the buffer before the line reaches the next level).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Current occupancy at cycle `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.drain(now);
        self.entries.len()
    }

    /// Total lines pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total cycles requesters stalled on a full buffer.
    pub fn full_stall_cycles(&self) -> u64 {
        self.full_stall_cycles
    }

    /// Clears counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.pushes = 0;
        self.full_stall_cycles = 0;
    }

    fn drain(&mut self, now: Cycle) {
        while let Some(&(_, done)) = self.entries.front() {
            if done <= now {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_until_full() {
        let mut wb = WriteBuffer::new(3);
        for i in 0..3 {
            assert_eq!(wb.push(LineAddr(i), 0, 50), 0);
        }
        assert_eq!(wb.push(LineAddr(9), 0, 50), 50);
        assert_eq!(wb.full_stall_cycles(), 50);
    }

    #[test]
    fn drained_entries_free_space() {
        let mut wb = WriteBuffer::new(1);
        assert_eq!(wb.push(LineAddr(1), 0, 10), 0);
        // At cycle 20 the entry has drained; no stall.
        assert_eq!(wb.push(LineAddr(2), 20, 10), 20);
        assert_eq!(wb.full_stall_cycles(), 0);
    }

    #[test]
    fn contains_pending_lines() {
        let mut wb = WriteBuffer::new(2);
        wb.push(LineAddr(7), 0, 100);
        assert!(wb.contains(LineAddr(7)));
        assert!(!wb.contains(LineAddr(8)));
        assert_eq!(wb.occupancy(200), 0);
        assert!(!wb.contains(LineAddr(7)));
    }

    #[test]
    fn occupancy_reflects_drains() {
        let mut wb = WriteBuffer::new(4);
        wb.push(LineAddr(1), 0, 10);
        wb.push(LineAddr(2), 0, 10);
        assert_eq!(wb.occupancy(5), 2);
        assert_eq!(wb.occupancy(11), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = WriteBuffer::new(0);
    }

    #[test]
    fn stats_reset() {
        let mut wb = WriteBuffer::new(1);
        wb.push(LineAddr(1), 0, 10);
        wb.push(LineAddr(2), 0, 10);
        wb.reset_stats();
        assert_eq!(wb.pushes(), 0);
        assert_eq!(wb.full_stall_cycles(), 0);
    }
}

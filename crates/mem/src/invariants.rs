//! Runtime invariant checker behind a zero-cost env gate.
//!
//! Every structural invariant the timing models rely on — MSHR occupancy
//! bounds, replacement-state validity, bank-schedule consistency, FIFO
//! ordering of the buffers, monotone completion times — can be checked on
//! the hot paths when `STTCACHE_INVARIANTS=1` is set (or when a test calls
//! [`set_enabled`]). When the gate is off the only cost is a single
//! relaxed atomic load per check site, so production sweeps pay nothing
//! measurable (see `scripts/bench_snapshot.sh`, which records the
//! overhead instead of asserting it).
//!
//! Violations are *reported*, not panicked: each one becomes a structured
//! [`InvariantViolation`] naming the component, the cycle it was detected
//! at, and (when meaningful) the address involved. Reports accumulate in a
//! thread-local buffer so the parallel sweep workers never contaminate
//! each other; harnesses drain them with [`take_violations`].

use crate::addr::Cycle;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// A single detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The component that detected the violation (`"mshr"`, `"set"`,
    /// `"banks"`, `"write-buffer"`, `"store-buffer"`, `"vwb"`, `"l0"`,
    /// `"emshr"`, `"core"`, `"front-end"`).
    pub component: &'static str,
    /// The cycle at which the violation was detected.
    pub cycle: Cycle,
    /// The byte or line address involved, when one is meaningful.
    pub addr: Option<u64>,
    /// Human-readable description of what was violated.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} @ cycle {}] ", self.component, self.cycle)?;
        if let Some(a) = self.addr {
            write!(f, "addr {a:#x}: ")?;
        }
        f.write_str(&self.detail)
    }
}

/// Gate state: 0 = uninitialised, 1 = off, 2 = on.
static GATE: AtomicU8 = AtomicU8::new(0);

/// At most this many violations are retained per thread; the rest are
/// counted but dropped (a broken invariant on a hot path would otherwise
/// allocate without bound).
const MAX_RETAINED: usize = 256;

thread_local! {
    static VIOLATIONS: RefCell<(Vec<InvariantViolation>, usize)> =
        const { RefCell::new((Vec::new(), 0)) };
}

/// Whether invariant checking is enabled on this process.
///
/// Reads `STTCACHE_INVARIANTS` once (any value other than `0`/`false`/""
/// enables the gate); afterwards it is a single relaxed atomic load.
/// [`set_enabled`] overrides the environment at any time.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("STTCACHE_INVARIANTS")
        .map(|v| !v.is_empty() && v != "0" && v != "false")
        .unwrap_or(false);
    // Racing first calls agree on the same env-derived value, so a plain
    // store is fine; a concurrent set_enabled wins either way on its own
    // subsequent store.
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces the gate on or off, overriding `STTCACHE_INVARIANTS`.
pub fn set_enabled(on: bool) {
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    crate::gates::refresh();
}

/// Records a violation in the calling thread's buffer.
///
/// Callers are expected to have consulted [`enabled`] first; reporting
/// itself is unconditional so harness-level checks (drain verification)
/// can report even when the hot-path gate is off.
pub fn report(component: &'static str, cycle: Cycle, addr: Option<u64>, detail: String) {
    VIOLATIONS.with(|v| {
        let mut v = v.borrow_mut();
        v.1 += 1;
        if v.0.len() < MAX_RETAINED {
            v.0.push(InvariantViolation {
                component,
                cycle,
                addr,
                detail,
            });
        }
    });
}

/// Drains and returns this thread's recorded violations, resetting the
/// total count. At most the first 256 are retained verbatim; the return
/// also reports how many were observed in total.
pub fn take_violations() -> (Vec<InvariantViolation>, usize) {
    VIOLATIONS.with(|v| {
        let mut v = v.borrow_mut();
        let total = v.1;
        v.1 = 0;
        (std::mem::take(&mut v.0), total)
    })
}

/// Number of violations observed on this thread since the last
/// [`take_violations`] (including any dropped beyond the retention cap).
pub fn violation_count() -> usize {
    VIOLATIONS.with(|v| v.borrow().1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles_and_reports_are_thread_local() {
        set_enabled(true);
        assert!(enabled());
        report("mshr", 42, Some(0x1000), "test violation".into());
        assert_eq!(violation_count(), 1);
        let (list, total) = take_violations();
        assert_eq!(total, 1);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].component, "mshr");
        assert_eq!(list[0].cycle, 42);
        assert_eq!(list[0].addr, Some(0x1000));
        assert_eq!(violation_count(), 0);

        // Another thread sees an empty buffer even while this one reports.
        report("set", 1, None, "local".into());
        let other = std::thread::spawn(violation_count).join().unwrap();
        assert_eq!(other, 0);
        take_violations();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }

    #[test]
    fn retention_is_capped_but_counting_is_not() {
        take_violations();
        for i in 0..300 {
            report("banks", i, None, "overflow".into());
        }
        let (list, total) = take_violations();
        assert_eq!(total, 300);
        assert_eq!(list.len(), MAX_RETAINED);
    }

    #[test]
    fn display_names_component_cycle_and_addr() {
        let v = InvariantViolation {
            component: "vwb",
            cycle: 7,
            addr: Some(0x40),
            detail: "dirty entry after flush".into(),
        };
        let s = v.to_string();
        assert!(s.contains("vwb"), "{s}");
        assert!(s.contains("cycle 7"), "{s}");
        assert!(s.contains("0x40"), "{s}");
    }
}

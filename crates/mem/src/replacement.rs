//! Replacement policies.
//!
//! The paper's platform uses true LRU; the alternatives here (FIFO,
//! tree-PLRU, pseudo-random) are the policies a hardware team would weigh
//! against it — true LRU is expensive above a few ways — and are swept by
//! the ablation bench to show the paper's results are not an LRU artifact.

/// Victim-selection policy of a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ReplacementPolicy {
    /// True least-recently-used (paper configuration).
    #[default]
    Lru,
    /// First-in first-out (insertion order, untouched by hits).
    Fifo,
    /// Tree-based pseudo-LRU (single bit per tree node; the common
    /// hardware approximation for 4+ ways). Falls back to true LRU for
    /// non-power-of-two way counts.
    TreePlru,
    /// Pseudo-random (xorshift; deterministic per set, so simulations
    /// stay reproducible).
    Random,
}

impl ReplacementPolicy {
    /// All policies, for sweeps.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Random => "random",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-set replacement state (PLRU tree bits and the random stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ReplacementState {
    policy: ReplacementPolicy,
    /// Tree-PLRU node bits (node 1 is the root, children of `n` are `2n`
    /// and `2n+1`; a set bit means "the hot path went right").
    plru_bits: u64,
    /// Xorshift state for the random policy.
    rng: u64,
}

impl ReplacementState {
    pub fn new(policy: ReplacementPolicy, seed: u64) -> Self {
        // Golden-ratio mix so adjacent set indices get distinct streams.
        let rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        ReplacementState {
            policy,
            plru_bits: 0,
            rng,
        }
    }

    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Records a touch of `way` (hit or fill) for policies with access
    /// state.
    pub fn touch(&mut self, way: usize, ways: usize) {
        if self.policy == ReplacementPolicy::TreePlru && ways.is_power_of_two() && ways > 1 {
            // Flip the path bits so they point *away* from `way`.
            let levels = ways.trailing_zeros();
            let mut node = 1usize;
            for level in (0..levels).rev() {
                let went_right = (way >> level) & 1 == 1;
                if went_right {
                    self.plru_bits &= !(1 << node); // remember: hot is right => point left
                } else {
                    self.plru_bits |= 1 << node;
                }
                node = node * 2 + usize::from(went_right);
            }
        }
    }

    /// Picks a victim among `ways` ways using the per-way `(last_use,
    /// inserted_at)` metadata provided by the set.
    pub fn victim(&mut self, meta: &[(u64, u64)]) -> usize {
        let ways = meta.len();
        match self.policy {
            ReplacementPolicy::Lru => index_of_min(meta.iter().map(|&(last_use, _)| last_use)),
            ReplacementPolicy::Fifo => index_of_min(meta.iter().map(|&(_, inserted)| inserted)),
            ReplacementPolicy::TreePlru if ways.is_power_of_two() && ways > 1 => {
                let levels = ways.trailing_zeros();
                let mut node = 1usize;
                let mut way = 0usize;
                for _ in 0..levels {
                    let bit = (self.plru_bits >> node) & 1;
                    way = (way << 1) | bit as usize;
                    node = node * 2 + bit as usize;
                }
                way
            }
            ReplacementPolicy::TreePlru => index_of_min(meta.iter().map(|&(last_use, _)| last_use)),
            ReplacementPolicy::Random => {
                // xorshift64*
                self.rng ^= self.rng >> 12;
                self.rng ^= self.rng << 25;
                self.rng ^= self.rng >> 27;
                (self.rng.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % ways
            }
        }
    }
}

fn index_of_min(values: impl Iterator<Item = u64>) -> usize {
    let mut best = (u64::MAX, 0usize);
    for (i, v) in values.enumerate() {
        if v < best.0 {
            best = (v, i);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_the_oldest_use() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 1);
        assert_eq!(st.victim(&[(5, 0), (2, 1), (9, 2)]), 1);
    }

    #[test]
    fn fifo_picks_the_oldest_insert_regardless_of_use() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 1);
        assert_eq!(st.victim(&[(100, 3), (200, 1), (1, 2)]), 1);
    }

    #[test]
    fn plru_avoids_the_most_recent_way() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1);
        let meta = [(0u64, 0u64); 4];
        for _ in 0..16 {
            let v = st.victim(&meta);
            st.touch(v, 4);
            // Immediately after touching v it is never the next victim.
            assert_ne!(st.victim(&meta), v);
        }
    }

    #[test]
    fn plru_cycles_through_all_ways() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1);
        let meta = [(0u64, 0u64); 4];
        let mut seen = [false; 4];
        for _ in 0..8 {
            let v = st.victim(&meta);
            seen[v] = true;
            st.touch(v, 4);
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let sequence = |seed: u64| -> Vec<usize> {
            let mut st = ReplacementState::new(ReplacementPolicy::Random, seed);
            (0..32).map(|_| st.victim(&[(0, 0); 8])).collect()
        };
        let a = sequence(42);
        assert_eq!(a, sequence(42));
        assert_ne!(a, sequence(43));
        assert!(a.iter().all(|&v| v < 8));
        // Not stuck on one way.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 2);
    }

    #[test]
    fn plru_non_power_of_two_falls_back_to_lru() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1);
        assert_eq!(st.victim(&[(5, 0), (2, 0), (9, 0)]), 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::TreePlru.name(), "tree-plru");
        assert_eq!(ReplacementPolicy::ALL.len(), 4);
    }
}

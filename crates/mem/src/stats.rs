//! Per-level statistics.

/// Access and stall statistics for one level of the hierarchy.
///
/// All counters are cumulative since construction or the last reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Read accesses presented to this level.
    pub reads: u64,
    /// Write accesses presented to this level.
    pub writes: u64,
    /// Reads that hit.
    pub read_hits: u64,
    /// Writes that hit.
    pub write_hits: u64,
    /// Lines filled from the next level.
    pub fills: u64,
    /// Dirty lines evicted (write-backs generated).
    pub writebacks: u64,
    /// Cycles accesses waited on busy banks.
    pub bank_conflict_cycles: u64,
    /// Secondary misses merged into in-flight MSHR entries.
    pub mshr_merges: u64,
    /// Cycles accesses waited on a full MSHR file.
    pub mshr_full_stall_cycles: u64,
    /// Cycles evictions waited on a full write buffer.
    pub write_buffer_stall_cycles: u64,
}

impl CacheStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read misses.
    pub fn read_misses(&self) -> u64 {
        self.reads - self.read_hits
    }

    /// Write misses.
    pub fn write_misses(&self) -> u64 {
        self.writes - self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses() + self.write_misses()
    }

    /// Miss rate over all accesses (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Hit rate over all accesses (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            1.0 - self.miss_rate()
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.fills += other.fills;
        self.writebacks += other.writebacks;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.mshr_merges += other.mshr_merges;
        self.mshr_full_stall_cycles += other.mshr_full_stall_cycles;
        self.write_buffer_stall_cycles += other.write_buffer_stall_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = CacheStats {
            reads: 10,
            writes: 6,
            read_hits: 8,
            write_hits: 3,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 16);
        assert_eq!(s.read_misses(), 2);
        assert_eq!(s.write_misses(), 3);
        assert_eq!(s.misses(), 5);
        assert!((s.miss_rate() - 5.0 / 16.0).abs() < 1e-12);
        assert!((s.hit_rate() - 11.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn idle_rates_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = CacheStats {
            reads: 1,
            writebacks: 2,
            ..Default::default()
        };
        let b = CacheStats {
            reads: 3,
            writebacks: 4,
            mshr_merges: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 4);
        assert_eq!(a.writebacks, 6);
        assert_eq!(a.mshr_merges, 5);
    }
}

//! Shared hierarchy levels.
//!
//! The paper's platform has a *unified* L2: both the instruction and the
//! data side miss into the same array. Ownership-based composition
//! (`Cache<Cache<MainMemory>>`) cannot express that, so [`Shared`] wraps a
//! level in shared-mutable form; clones refer to the same underlying
//! level, and every port sees the same contents, bank contention and
//! statistics.
//!
//! The simulator is single-threaded (one core, one global cycle order), so
//! `Rc<RefCell<..>>` is the right tool; `Shared` is deliberately `!Send`.

use crate::addr::{Addr, Cycle};
use crate::cache::AccessOutcome;
use crate::stats::CacheStats;
use crate::MemoryLevel;
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// A cloneable handle to a shared hierarchy level.
///
/// [`MemoryLevel::stats`] on a handle returns the shared level's counters
/// *as of the last access made through that handle* (the trait hands out a
/// plain reference, which cannot observe later accesses through other
/// handles); use [`Shared::stats_snapshot`] for the live totals.
///
/// # Example
///
/// ```
/// use sttcache_mem::{Addr, Cache, CacheConfig, MainMemory, MemoryLevel, Shared};
///
/// # fn main() -> Result<(), sttcache_mem::MemError> {
/// let l2 = Shared::new(Cache::new(
///     CacheConfig::builder()
///         .capacity_bytes(2 * 1024 * 1024)
///         .associativity(16)
///         .read_cycles(12)
///         .write_cycles(12)
///         .build()?,
///     MainMemory::new(100),
/// ));
/// let mut dl1 = Cache::new(CacheConfig::builder().build()?, l2.clone());
/// let mut il1 = Cache::new(
///     CacheConfig::builder().capacity_bytes(32 * 1024).build()?,
///     l2.clone(),
/// );
/// dl1.read(Addr(0), 0);
/// il1.read(Addr(0x4000_0000), 0);
/// // Both misses reached the one L2.
/// assert_eq!(l2.stats_snapshot().reads, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Shared<M> {
    inner: Rc<RefCell<M>>,
    /// Mirror of the underlying stats, refreshed on every access through
    /// this handle, so `stats()` can return a plain reference.
    stats_mirror: CacheStats,
    line_bytes: usize,
}

impl<M> Clone for Shared<M> {
    fn clone(&self) -> Self {
        Shared {
            inner: Rc::clone(&self.inner),
            stats_mirror: self.stats_mirror,
            line_bytes: self.line_bytes,
        }
    }
}

impl<M: MemoryLevel> Shared<M> {
    /// Wraps a level for sharing.
    pub fn new(level: M) -> Self {
        let line_bytes = level.line_bytes();
        let stats_mirror = *level.stats();
        Shared {
            inner: Rc::new(RefCell::new(level)),
            stats_mirror,
            line_bytes,
        }
    }

    /// Borrows the underlying level immutably.
    ///
    /// # Panics
    ///
    /// Panics if the level is currently borrowed mutably (cannot happen
    /// through the [`MemoryLevel`] interface, which never holds borrows
    /// across calls).
    pub fn borrow(&self) -> Ref<'_, M> {
        self.inner.borrow()
    }

    /// Borrows the underlying level mutably — the owner-side escape hatch
    /// for operations that are not part of [`MemoryLevel`], such as
    /// draining a shared level once at end of run (`Cache::flush_dirty`)
    /// while every port still holds its handle.
    ///
    /// # Panics
    ///
    /// Panics if the level is currently borrowed (cannot happen through
    /// the [`MemoryLevel`] interface, which never holds borrows across
    /// calls).
    pub fn borrow_mut(&self) -> RefMut<'_, M> {
        self.inner.borrow_mut()
    }

    /// A live snapshot of the shared level's statistics.
    pub fn stats_snapshot(&self) -> CacheStats {
        *self.inner.borrow().stats()
    }

    /// Number of handles to the underlying level.
    pub fn handle_count(&self) -> usize {
        Rc::strong_count(&self.inner)
    }
}

impl<M: MemoryLevel> MemoryLevel for Shared<M> {
    fn read(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        let out = self.inner.borrow_mut().read(addr, now);
        self.stats_mirror = *self.inner.borrow().stats();
        out
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        let out = self.inner.borrow_mut().write(addr, now);
        self.stats_mirror = *self.inner.borrow().stats();
        out
    }

    fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    fn stats(&self) -> &CacheStats {
        &self.stats_mirror
    }

    fn reset_stats(&mut self) {
        self.inner.borrow_mut().reset_stats();
        self.stats_mirror = CacheStats::new();
    }

    fn contains(&self, addr: Addr) -> bool {
        self.inner.borrow().contains(addr)
    }

    fn occupy_bank(&mut self, addr: Addr, from: Cycle, cycles: u64) -> Cycle {
        self.inner.borrow_mut().occupy_bank(addr, from, cycles)
    }

    // `next_lower` stays `None`: the shared level lives behind a
    // `RefCell` and cannot be lent out as a plain reference.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::config::CacheConfig;
    use crate::memory::MainMemory;

    fn shared_l2() -> Shared<Cache<MainMemory>> {
        Shared::new(Cache::new(
            CacheConfig::builder()
                .capacity_bytes(1024 * 1024)
                .associativity(16)
                .read_cycles(12)
                .write_cycles(12)
                .banks(1)
                .build()
                .expect("test l2 config"),
            MainMemory::new(100),
        ))
    }

    #[test]
    fn two_ports_see_one_array() {
        let l2 = shared_l2();
        let mut a = l2.clone();
        let mut b = l2.clone();
        // Port A warms a line; port B hits it.
        let t = a.read(Addr(0x1000), 0).complete_at;
        let before = l2.stats_snapshot();
        let out = b.read(Addr(0x1000), t + 20);
        assert_eq!(l2.stats_snapshot().read_hits, before.read_hits + 1);
        assert_eq!(out.complete_at, t + 20 + 12);
    }

    #[test]
    fn contention_is_shared() {
        let l2 = shared_l2();
        let mut a = l2.clone();
        let mut b = l2.clone();
        let t = a.read(Addr(0), 0).complete_at + 50;
        a.read(Addr(0), t);
        // Same cycle, same (single) bank: port B queues behind port A.
        let out = b.read(Addr(64), t);
        assert!(out.complete_at > t + 12);
    }

    #[test]
    fn handle_stats_are_as_of_last_access() {
        let l2 = shared_l2();
        let mut a = l2.clone();
        let mut b = l2.clone();
        a.read(Addr(0), 0);
        b.read(Addr(4096), 0);
        // Handle A's mirror predates B's access...
        assert_eq!(a.stats().reads, 1);
        // ...while the live snapshot sees both.
        assert_eq!(l2.stats_snapshot().reads, 2);
    }

    #[test]
    fn reset_clears_for_everyone() {
        let l2 = shared_l2();
        let mut a = l2.clone();
        a.read(Addr(0), 0);
        let mut handle = l2.clone();
        handle.reset_stats();
        assert_eq!(l2.stats_snapshot().accesses(), 0);
    }

    #[test]
    fn handle_count_tracks_clones() {
        let l2 = shared_l2();
        assert_eq!(l2.handle_count(), 1);
        let a = l2.clone();
        let b = l2.clone();
        assert_eq!(l2.handle_count(), 3);
        drop(a);
        drop(b);
        assert_eq!(l2.handle_count(), 1);
    }

    #[test]
    fn owner_can_drain_through_borrow_mut() {
        let l2 = shared_l2();
        let mut a = l2.clone();
        let t = a.write(Addr(0), 0).complete_at;
        assert!(l2.borrow().dirty_lines() > 0);
        let (n, _) = l2.borrow_mut().flush_dirty(t);
        assert_eq!(n, 1);
        assert_eq!(l2.borrow().dirty_lines(), 0);
    }

    #[test]
    fn composes_under_a_cache() {
        let l2 = shared_l2();
        let mut dl1 = Cache::new(
            CacheConfig::builder().build().expect("dl1 config"),
            l2.clone(),
        );
        dl1.read(Addr(0), 0);
        assert_eq!(l2.stats_snapshot().reads, 1);
        assert_eq!(dl1.next_level().line_bytes(), 64);
    }
}

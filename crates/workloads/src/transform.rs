//! The paper's code-transformation toggles (§V).

/// Which of the paper's transformation families a kernel run applies.
///
/// The paper steers these "manually by the use of intrinsic functions";
/// here they select between pre-written kernel variants — the same thing a
/// compiler flag selects between generated code paths.
///
/// # Example
///
/// ```
/// use sttcache_workloads::Transformations;
///
/// let t = Transformations::all();
/// assert!(t.vectorize && t.prefetch && t.others);
/// assert_eq!(Transformations::none(), Transformations::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transformations {
    /// Innermost-loop vectorization (4-wide).
    pub vectorize: bool,
    /// Software prefetch of critical loop arrays into the VWB.
    pub prefetch: bool,
    /// Alignment, loop unrolling and branch-less conversion intrinsics.
    pub others: bool,
}

impl Transformations {
    /// No transformations (the paper's unoptimized runs).
    pub fn none() -> Self {
        Transformations::default()
    }

    /// All three families (the paper's fully optimized runs, Fig. 5).
    pub fn all() -> Self {
        Transformations {
            vectorize: true,
            prefetch: true,
            others: true,
        }
    }

    /// Only vectorization (Fig. 6 decomposition).
    pub fn only_vectorize() -> Self {
        Transformations {
            vectorize: true,
            ..Self::none()
        }
    }

    /// Only prefetching (Fig. 6 decomposition).
    pub fn only_prefetch() -> Self {
        Transformations {
            prefetch: true,
            ..Self::none()
        }
    }

    /// Only the "others" intrinsics (Fig. 6 decomposition).
    pub fn only_others() -> Self {
        Transformations {
            others: true,
            ..Self::none()
        }
    }

    /// The unroll factor loop overhead is divided by under `others`.
    pub fn unroll_factor(&self) -> u64 {
        if self.others {
            4
        } else {
            1
        }
    }

    /// Short label for figure output, e.g. `"v+p+o"`.
    pub fn label(&self) -> String {
        if *self == Transformations::none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.vectorize {
            parts.push("v");
        }
        if self.prefetch {
            parts.push("p");
        }
        if self.others {
            parts.push("o");
        }
        parts.join("+")
    }
}

impl std::fmt::Display for Transformations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Transformations::none().label(), "none");
        assert_eq!(Transformations::all().label(), "v+p+o");
        assert_eq!(Transformations::only_prefetch().label(), "p");
        assert_eq!(Transformations::only_vectorize().to_string(), "v");
    }

    #[test]
    fn unroll_factor_follows_others() {
        assert_eq!(Transformations::none().unroll_factor(), 1);
        assert_eq!(Transformations::only_others().unroll_factor(), 4);
    }
}

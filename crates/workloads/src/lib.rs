//! Instrumented PolyBench workloads for the `sttcache` simulator.
//!
//! The paper evaluates on "a subset of the PolyBench benchmark suite"
//! (Pouchet's polyhedral kernels). This crate re-implements sixteen of
//! those kernels in Rust as *instrumented computations*: every array
//! element access performs the real floating-point arithmetic **and** emits
//! a load/store event (with its exact byte address) into a
//! [`sttcache_cpu::Engine`], so the timing simulator observes precisely the
//! access stream the kernel's loop nest generates.
//!
//! ## Code transformations (paper §V)
//!
//! Each kernel supports the paper's three transformation families through
//! [`Transformations`]:
//!
//! * **vectorization** — the innermost vectorizable loops process four
//!   elements per operation (one wide load/store instead of four narrow
//!   ones), like the paper's manually steered loop vectorization;
//! * **prefetching** — critical loop arrays are prefetched one cache line
//!   ahead into the VWB via [`sttcache_cpu::Engine::prefetch`] hints;
//! * **others** — alignment of arrays (mis-aligned vector accesses
//!   otherwise split across lines), 4× loop unrolling (fewer back-edge
//!   branches and less index overhead) and branch-less inner conditionals.
//!
//! # Example
//!
//! ```
//! use sttcache_workloads::{Kernel, PolyBench, ProblemSize, Transformations};
//! use sttcache::{DCacheOrganization, Platform};
//!
//! # fn main() -> Result<(), sttcache::SttError> {
//! # let _ = (); // platform built from the core crate
//! let kernel = PolyBench::Atax.kernel(ProblemSize::Mini);
//! let platform = Platform::new(DCacheOrganization::nvm_vwb_default())?;
//! let result = platform.run(|e| kernel.run(e, Transformations::all()));
//! assert!(result.cycles() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! (The example depends on the `sttcache` platform crate; within this
//! crate's own tests a recording engine is used instead.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod conformance;
mod irregular;
pub mod kernels;
mod micro;
mod space;
mod suite;
mod transform;

pub use catalog::{Workload, WorkloadFamily, WorkloadSpec};
pub use irregular::{CsrBfs, GcMark, HashProbe, Irregular, ListChase};
pub use micro::{PointerChase, RandomWalk, StreamWalk, StrideWalk};
pub use space::{Array1, Array2, Array3, DataSpace};
pub use suite::{Kernel, PolyBench, ProblemSize};
pub use transform::Transformations;

//! `heat-3d`: 3-D heat-equation stencil.

use super::{checksum, for_n, seed_value, Kernel, LINE_ELEMS};
use crate::space::{Array3, DataSpace};
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Seven-point 3-D stencil (`A, B: N×N×N`, ping-pong over `tsteps`).
/// The `k`-dimension walk is unit stride but the `i`/`j` neighbours sit a
/// full plane / row apart — six of seven operands are line-sized strides,
/// the heaviest promotion traffic in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heat3d {
    n: usize,
    tsteps: usize,
}

impl Heat3d {
    /// Creates the kernel (`n × n × n` grid, `tsteps` steps).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `tsteps` is zero.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3, "heat-3d needs at least a 3x3x3 grid");
        assert!(tsteps > 0, "heat-3d needs at least one step");
        Heat3d { n, tsteps }
    }

    fn sweep(e: &mut dyn Engine, t: Transformations, src: &Array3, dst: &mut Array3) {
        let (n, _, _) = src.dims();
        for_n(e, 1, n - 2, |e, it| {
            let i = it + 1;
            for_n(e, 1, n - 2, |e, jt| {
                let j = jt + 1;
                for_n(e, t.unroll_factor(), n - 2, |e, kt| {
                    let k = kt + 1;
                    if t.prefetch && k % LINE_ELEMS == 1 && k + LINE_ELEMS < n {
                        e.prefetch(src.addr(i, j, k + LINE_ELEMS));
                    }
                    let v = 0.125f32
                        * (src.at(e, i + 1, j, k) - 2.0 * src.at(e, i, j, k)
                            + src.at(e, i - 1, j, k))
                        + 0.125f32
                            * (src.at(e, i, j + 1, k) - 2.0 * src.at(e, i, j, k)
                                + src.at(e, i, j - 1, k))
                        + 0.125f32
                            * (src.at(e, i, j, k + 1) - 2.0 * src.at(e, i, j, k)
                                + src.at(e, i, j, k - 1))
                        + src.at(e, i, j, k);
                    e.compute(12);
                    dst.set(e, i, j, k, v);
                });
            });
        });
    }
}

impl Kernel for Heat3d {
    fn name(&self) -> &'static str {
        "heat-3d"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut a = space.array3(n, n, n);
        let mut b = space.array3(n, n, n);
        a.fill(|i, j, k| seed_value(i * 31 + j + 197, k));
        b.fill(|i, j, k| seed_value(i * 31 + j + 199, k));

        for_n(e, 1, self.tsteps, |e, _| {
            Heat3d::sweep(e, t, &a, &mut b);
            Heat3d::sweep(e, t, &b, &mut a);
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Heat3d {
        Heat3d::new(7, 2)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Heat3d::new(20, 1));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        let (n, steps) = (5, 1);
        let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
        let mut a = vec![0.0f32; n * n * n];
        let mut b = vec![0.0f32; n * n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[idx(i, j, k)] = seed_value(i * 31 + j + 197, k);
                    b[idx(i, j, k)] = seed_value(i * 31 + j + 199, k);
                }
            }
        }
        let stencil = |src: &[f32], dst: &mut [f32]| {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    for k in 1..n - 1 {
                        dst[idx(i, j, k)] = 0.125
                            * (src[idx(i + 1, j, k)] - 2.0 * src[idx(i, j, k)]
                                + src[idx(i - 1, j, k)])
                            + 0.125
                                * (src[idx(i, j + 1, k)] - 2.0 * src[idx(i, j, k)]
                                    + src[idx(i, j - 1, k)])
                            + 0.125
                                * (src[idx(i, j, k + 1)] - 2.0 * src[idx(i, j, k)]
                                    + src[idx(i, j, k - 1)])
                            + src[idx(i, j, k)];
                    }
                }
            }
        };
        for _ in 0..steps {
            stencil(&a, &mut b);
            stencil(&b, &mut a);
        }
        let expect: f64 = a.iter().map(|&v| v as f64).sum();
        let got = Heat3d::new(n, steps).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

//! `mvt`: x1 += A·y1 and x2 += Aᵀ·y2.

use super::{checksum, dot_col, dot_row, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Matrix-vector product and transpose (`A: N×N`).
///
/// The second product walks `A` by *columns* — every element opens a new
/// cache line, the worst case for the VWB, recovered only by prefetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mvt {
    n: usize,
}

impl Mvt {
    /// Creates the kernel for an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "mvt dimension must be non-zero");
        Mvt { n }
    }
}

impl Kernel for Mvt {
    fn name(&self) -> &'static str {
        "mvt"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.n, self.n);
        let mut x1 = space.array1(self.n);
        let mut x2 = space.array1(self.n);
        let mut y1 = space.array1(self.n);
        let mut y2 = space.array1(self.n);
        a.fill(|i, j| seed_value(i + 29, j));
        x1.fill(|i| seed_value(i, 1));
        x2.fill(|i| seed_value(i, 2));
        y1.fill(|i| seed_value(i, 4));
        y2.fill(|i| seed_value(i, 8));

        // x1[i] += A[i] · y1  (row-wise)
        for_n(e, 1, self.n, |e, i| {
            let d = dot_row(e, t, &a, i, &y1);
            let v = x1.at(e, i) + d;
            e.compute(1);
            x1.set(e, i, v);
        });
        // x2[i] += A[:,i] · y2  (column-wise)
        for_n(e, 1, self.n, |e, i| {
            let d = dot_col(e, t, &a, i, &y2);
            let v = x2.at(e, i) + d;
            e.compute(1);
            x2.set(e, i, v);
        });
        checksum(x1.raw()) + checksum(x2.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Mvt {
        Mvt::new(13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Mvt::new(16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let n = 5;
        let a = |i: usize, j: usize| seed_value(i + 29, j);
        let mut expect = 0.0f64;
        for i in 0..n {
            let mut v1 = seed_value(i, 1);
            let mut v2 = seed_value(i, 2);
            for j in 0..n {
                v1 += a(i, j) * seed_value(j, 4);
                v2 += a(j, i) * seed_value(j, 8);
            }
            expect += v1 as f64 + v2 as f64;
        }
        let got = Mvt::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

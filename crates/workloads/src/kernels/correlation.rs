//! `correlation`: correlation matrix of a data set.

use super::{checksum, dot_col, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Correlation computation (`data: N×M`, `corr: M×M`): mean and standard
/// deviation per column, normalization, then column-pair dot products.
/// The stddev step contains the suite's one *data-dependent* branch (the
/// near-zero guard), which the "others" branch-less conversion removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Correlation {
    n: usize,
    m: usize,
}

const EPS: f32 = 0.1;

impl Correlation {
    /// Creates the kernel (`n` samples of `m` variables).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below two.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(
            n >= 2 && m >= 2,
            "correlation needs at least a 2x2 data set"
        );
        Correlation { n, m }
    }
}

impl Kernel for Correlation {
    fn name(&self) -> &'static str {
        "correlation"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let (n, m) = (self.n, self.m);
        let mut space = DataSpace::new(t.others);
        let mut data = space.array2(n, m);
        let mut mean = space.array1(m);
        let mut stddev = space.array1(m);
        let mut corr = space.array2(m, m);
        data.fill(|i, j| seed_value(i + 127, j));
        let ones = {
            let mut v = space.array1(n);
            v.fill(|_| 1.0);
            v
        };

        // Column means.
        for_n(e, 1, m, |e, j| {
            let s = dot_col(e, t, &data, j, &ones);
            e.compute(1);
            mean.set(e, j, s / n as f32);
        });

        // Column standard deviations, with the near-zero guard.
        for_n(e, 1, m, |e, j| {
            let mj = mean.at(e, j);
            let mut acc = 0.0f32;
            for_n(e, t.unroll_factor(), n, |e, i| {
                let d = data.at(e, i, j) - mj;
                acc += d * d;
                e.compute(3);
            });
            let sd = (acc / n as f32).sqrt();
            e.compute(2);
            let sd = if t.others {
                // Branch-less select (the paper's conditional-to-branchless
                // conversion): blend by mask instead of jumping.
                e.compute(2);
                let keep = (sd > EPS) as u32 as f32;
                keep * sd + (1.0 - keep) * 1.0
            } else {
                e.branch(sd <= EPS);
                if sd <= EPS {
                    1.0
                } else {
                    sd
                }
            };
            stddev.set(e, j, sd);
        });

        // Normalize in place.
        for_n(e, 1, n, |e, i| {
            for_n(e, t.unroll_factor(), m, |e, j| {
                let v = (data.at(e, i, j) - mean.at(e, j)) / ((n as f32).sqrt() * stddev.at(e, j));
                e.compute(4);
                data.set(e, i, j, v);
            });
        });

        // Correlation matrix (upper triangle, unit diagonal).
        for_n(e, 1, m, |e, j1| {
            corr.set(e, j1, j1, 1.0);
            for_n(e, 1, m - j1 - 1, |e, dj| {
                let j2 = j1 + 1 + dj;
                let mut acc = 0.0f32;
                for_n(e, t.unroll_factor(), n, |e, i| {
                    if t.prefetch && i + 2 < n {
                        e.prefetch(data.addr(i + 2, j1));
                    }
                    acc += data.at(e, i, j1) * data.at(e, i, j2);
                    e.compute(3);
                });
                corr.set(e, j1, j2, acc);
                corr.set(e, j2, j1, acc);
            });
        });
        checksum(corr.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Correlation {
        Correlation::new(12, 9)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn branchless_conversion_removes_data_dependent_branches() {
        let mut plain = Recorder::default();
        small().execute(&mut plain, Transformations::none());
        let mut opt = Recorder::default();
        small().execute(&mut opt, Transformations::only_others());
        // Unrolling removes loop branches AND the guard branches vanish.
        assert!(opt.branches.len() < plain.branches.len());
    }

    #[test]
    fn diagonal_is_unity() {
        use crate::space::test_support::Recorder;
        // The checksum includes m unit diagonal entries; with symmetric
        // off-diagonals the sum is m + 2*sum(upper).
        let got = Correlation::new(8, 3).execute(&mut Recorder::default(), Transformations::none());
        assert!(got.is_finite());
        assert!(got >= 3.0 - 2.0 * 3.0, "diagonal contributes m = 3");
    }
}

//! `cholesky`: Cholesky decomposition of a symmetric positive-definite
//! matrix.

use super::{checksum, dot_row_prefix_rows, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// In-place Cholesky factorization (`A: N×N`, diagonally dominated so the
/// factorization exists). The row-prefix dot products vectorize; the
/// diagonal square roots serialize, as in the PolyBench reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cholesky {
    n: usize,
}

impl Cholesky {
    /// Creates the kernel for an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cholesky dimension must be non-zero");
        Cholesky { n }
    }
}

impl Kernel for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(n, n);
        // Symmetric positive definite: small off-diagonals, dominant
        // diagonal.
        a.fill(|i, j| {
            if i == j {
                (n as f32) + 1.0
            } else {
                seed_value(i.min(j) + 131, i.max(j)) * 0.3
            }
        });

        for_n(e, 1, n, |e, i| {
            // Off-diagonal row: A[i][j] = (A[i][j] - A[i][:j]·A[j][:j]) / A[j][j]
            for_n(e, 1, i, |e, j| {
                let dot = dot_row_prefix_rows(e, t, &a, i, &a, j, j);
                let v = (a.at(e, i, j) - dot) / a.at(e, j, j);
                e.compute(3);
                a.set(e, i, j, v);
            });
            // Diagonal: A[i][i] = sqrt(A[i][i] - A[i][:i]·A[i][:i])
            let dot = dot_row_prefix_rows(e, t, &a, i, &a, i, i);
            let v = (a.at(e, i, i) - dot).max(1e-6).sqrt();
            e.compute(4);
            a.set(e, i, i, v);
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Cholesky {
        Cholesky::new(13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Cholesky::new(24));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Cholesky::new(40));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn factor_reproduces_the_matrix() {
        // Run the factorization on raw data and verify L·Lᵀ ≈ A for a
        // small instance.
        let n = 5;
        let orig = |i: usize, j: usize| -> f32 {
            if i == j {
                (n as f32) + 1.0
            } else {
                seed_value(i.min(j) + 131, i.max(j)) * 0.3
            }
        };
        // Compute the reference factor with plain loops.
        let mut l = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                l[i][j] = orig(i, j);
            }
        }
        for i in 0..n {
            for j in 0..i {
                let mut dot = 0.0f32;
                for k in 0..j {
                    dot += l[i][k] * l[j][k];
                }
                l[i][j] = (l[i][j] - dot) / l[j][j];
            }
            let mut dot = 0.0f32;
            for k in 0..i {
                dot += l[i][k] * l[i][k];
            }
            l[i][i] = (l[i][i] - dot).max(1e-6).sqrt();
        }
        // L·Lᵀ must reproduce the lower triangle of A.
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0f32;
                for k in 0..=j {
                    v += l[i][k] * l[j][k];
                }
                assert!(
                    (v - orig(i, j)).abs() < 1e-3,
                    "({i},{j}): {v} vs {}",
                    orig(i, j)
                );
            }
        }
        // And the kernel checksum matches the reference factor's sum over
        // the modified (lower + diagonal) part plus untouched upper part.
        let mut expect = 0.0f64;
        for (i, row) in l.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                expect += if j <= i { v as f64 } else { orig(i, j) as f64 };
            }
        }
        let got = Cholesky::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

//! `covariance`: covariance matrix of a data set.

use super::{checksum, dot_col, for_n, pf2, seed_value, Kernel, VEC};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Covariance computation (`data: N×M`, `cov: M×M`): mean subtraction
/// followed by column-pair dot products — a mix of streaming row walks and
/// the column walks that stress the VWB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Covariance {
    n: usize,
    m: usize,
}

impl Covariance {
    /// Creates the kernel (`n` samples of `m` variables).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below two.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n >= 2 && m >= 2, "covariance needs at least a 2x2 data set");
        Covariance { n, m }
    }
}

impl Kernel for Covariance {
    fn name(&self) -> &'static str {
        "covariance"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let (n, m) = (self.n, self.m);
        let mut space = DataSpace::new(t.others);
        let mut data = space.array2(n, m);
        let mut mean = space.array1(m);
        let mut cov = space.array2(m, m);
        data.fill(|i, j| seed_value(i + 113, j));

        // mean[j] = sum_i data[i][j] / n  (column reductions).
        let ones = {
            let mut v = space.array1(n);
            v.fill(|_| 1.0);
            v
        };
        for_n(e, 1, m, |e, j| {
            let s = dot_col(e, t, &data, j, &ones);
            e.compute(1);
            mean.set(e, j, s / n as f32);
        });

        // data[i][j] -= mean[j]  (row-wise, vectorizable).
        for_n(e, 1, n, |e, i| {
            if t.vectorize {
                let vec_end = m - m % VEC;
                let mut j = 0;
                while j < vec_end {
                    pf2(e, t, &data, i, j);
                    let dv = data.at_vec(e, i, j);
                    let mv = mean.at_vec(e, j);
                    let mut out = [0.0f32; VEC];
                    for l in 0..VEC {
                        out[l] = dv[l] - mv[l];
                    }
                    e.compute(super::VOP);
                    data.set_vec(e, i, j, out);
                    e.compute(1);
                    e.branch(j + VEC < vec_end);
                    j += VEC;
                }
                for_n(e, 1, m - vec_end, |e, jt| {
                    let j = vec_end + jt;
                    let v = data.at(e, i, j) - mean.at(e, j);
                    e.compute(2);
                    data.set(e, i, j, v);
                });
            } else {
                for_n(e, t.unroll_factor(), m, |e, j| {
                    pf2(e, t, &data, i, j);
                    let v = data.at(e, i, j) - mean.at(e, j);
                    e.compute(2);
                    data.set(e, i, j, v);
                });
            }
        });

        // cov[j1][j2] = sum_i data[i][j1]*data[i][j2] / (n-1), j2 >= j1.
        for_n(e, 1, m, |e, j1| {
            for_n(e, 1, m - j1, |e, dj| {
                let j2 = j1 + dj;
                let mut acc = 0.0f32;
                for_n(e, t.unroll_factor(), n, |e, i| {
                    if t.prefetch && i + 2 < n {
                        e.prefetch(data.addr(i + 2, j1));
                    }
                    acc += data.at(e, i, j1) * data.at(e, i, j2);
                    e.compute(3);
                });
                let v = acc / (n - 1) as f32;
                e.compute(1);
                cov.set(e, j1, j2, v);
                cov.set(e, j2, j1, v);
            });
        });
        checksum(cov.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Covariance {
        Covariance::new(12, 9)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Covariance::new(8, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn covariance_matrix_is_symmetric_and_diagonal_positive() {
        use crate::space::test_support::Recorder;
        // Re-derive the covariance from the same seeded data and check
        // the kernel checksum (sum over a symmetric matrix) matches.
        let (n, m) = (6, 4);
        let data = |i: usize, j: usize| seed_value(i + 113, j);
        let mut mean = vec![0.0f32; m];
        for (j, mv) in mean.iter_mut().enumerate() {
            for i in 0..n {
                *mv += data(i, j);
            }
            *mv /= n as f32;
        }
        let centred = |i: usize, j: usize| data(i, j) - mean[j];
        let mut expect = 0.0f64;
        for j1 in 0..m {
            for j2 in 0..m {
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += centred(i, j1) * centred(i, j2);
                }
                expect += (acc / (n - 1) as f32) as f64;
            }
        }
        let got = Covariance::new(n, m).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

//! `syr2k`: C = α·(A·Bᵀ + B·Aᵀ) + β·C (symmetric rank-2k update).

use super::{checksum, dot_rows, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Symmetric rank-2k update (`C: N×N` lower triangle, `A, B: N×M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syr2k {
    n: usize,
    m: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

impl Syr2k {
    /// Creates the kernel (`C: n × n`, `A, B: n × m`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "syr2k dimensions must be non-zero");
        Syr2k { n, m }
    }
}

impl Kernel for Syr2k {
    fn name(&self) -> &'static str {
        "syr2k"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut c = space.array2(self.n, self.n);
        let mut a = space.array2(self.n, self.m);
        let mut b = space.array2(self.n, self.m);
        c.fill(|i, j| seed_value(i + 61, j));
        a.fill(|i, j| seed_value(i + 67, j));
        b.fill(|i, j| seed_value(i + 71, j));

        for_n(e, 1, self.n, |e, i| {
            for_n(e, 1, i + 1, |e, j| {
                let d1 = dot_rows(e, t, &a, i, &b, j);
                let d2 = dot_rows(e, t, &b, i, &a, j);
                let v = BETA * c.at(e, i, j) + ALPHA * (d1 + d2);
                e.compute(4);
                c.set(e, i, j, v);
            });
        });
        checksum(c.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Syr2k {
        Syr2k::new(8, 9)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Syr2k::new(8, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }
}

//! `jacobi-1d`: three-point stencil over `TSTEPS` sweeps.

use super::{checksum, for_n, pf1, seed_value, Kernel, VEC};
use crate::space::{Array1, DataSpace};
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// 1-D Jacobi stencil (`A, B: N`, ping-pong over `tsteps`).
///
/// Purely streaming: three overlapping sequential reads and one sequential
/// write per point — the pattern where the VWB alone already recovers most
/// of the NVM read penalty and prefetching hides the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jacobi1d {
    n: usize,
    tsteps: usize,
}

impl Jacobi1d {
    /// Creates the kernel (`n` points, `tsteps` sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `tsteps` is zero.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3, "jacobi-1d needs at least three points");
        assert!(tsteps > 0, "jacobi-1d needs at least one sweep");
        Jacobi1d { n, tsteps }
    }

    fn sweep(e: &mut dyn Engine, t: Transformations, src: &Array1, dst: &mut Array1) {
        let n = src.len();
        if t.vectorize {
            let inner = n - 2;
            let vec_end = inner - inner % VEC;
            let mut i = 0;
            while i < vec_end {
                pf1(e, t, src, i);
                // Three shifted vector loads feed one vector store.
                let a = src.at_vec(e, i);
                let b = src.at_vec(e, i + 1);
                let c = src.at_vec(e, i + 2);
                let mut out = [0.0f32; VEC];
                for l in 0..VEC {
                    out[l] = 0.33333f32 * (a[l] + b[l] + c[l]);
                }
                e.compute(super::VOP);
                dst.set_vec(e, i + 1, out);
                e.compute(1);
                e.branch(i + VEC < vec_end);
                i += VEC;
            }
            for_n(e, 1, inner - vec_end, |e, it| {
                let i = vec_end + it + 1;
                let v = 0.33333f32 * (src.at(e, i - 1) + src.at(e, i) + src.at(e, i + 1));
                e.compute(4);
                dst.set(e, i, v);
            });
        } else {
            for_n(e, t.unroll_factor(), n - 2, |e, it| {
                let i = it + 1;
                pf1(e, t, src, i);
                let v = 0.33333f32 * (src.at(e, i - 1) + src.at(e, i) + src.at(e, i + 1));
                e.compute(4);
                dst.set(e, i, v);
            });
        }
    }
}

impl Kernel for Jacobi1d {
    fn name(&self) -> &'static str {
        "jacobi-1d"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array1(self.n);
        let mut b = space.array1(self.n);
        a.fill(|i| seed_value(i, 97));
        b.fill(|i| seed_value(i, 101));

        for_n(e, 1, self.tsteps, |e, _| {
            Jacobi1d::sweep(e, t, &a, &mut b);
            Jacobi1d::sweep(e, t, &b, &mut a);
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Jacobi1d {
        Jacobi1d::new(37, 3)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Jacobi1d::new(64, 2));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let (n, steps) = (9, 2);
        let mut a: Vec<f32> = (0..n).map(|i| seed_value(i, 97)).collect();
        let mut b: Vec<f32> = (0..n).map(|i| seed_value(i, 101)).collect();
        for _ in 0..steps {
            for i in 1..n - 1 {
                b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1]);
            }
            for i in 1..n - 1 {
                a[i] = 0.33333 * (b[i - 1] + b[i] + b[i + 1]);
            }
        }
        let expect: f64 = a.iter().map(|&v| v as f64).sum();
        let got =
            Jacobi1d::new(n, steps).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

//! `syrk`: C = α·A·Aᵀ + β·C (symmetric rank-k update, lower triangle).

use super::{checksum, dot_rows, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Symmetric rank-k update (`C: N×N` lower triangle, `A: N×M`).
///
/// Both operand walks are row-wise; the triangular `j ≤ i` bound makes the
/// inner trip count vary, exercising the loop-control modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syrk {
    n: usize,
    m: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

impl Syrk {
    /// Creates the kernel (`C: n × n`, `A: n × m`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "syrk dimensions must be non-zero");
        Syrk { n, m }
    }
}

impl Kernel for Syrk {
    fn name(&self) -> &'static str {
        "syrk"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut c = space.array2(self.n, self.n);
        let mut a = space.array2(self.n, self.m);
        c.fill(|i, j| seed_value(i + 53, j));
        a.fill(|i, j| seed_value(i + 59, j));

        for_n(e, 1, self.n, |e, i| {
            for_n(e, 1, i + 1, |e, j| {
                let d = dot_rows(e, t, &a, i, &a, j);
                let v = BETA * c.at(e, i, j) + ALPHA * d;
                e.compute(3);
                c.set(e, i, j, v);
            });
        });
        checksum(c.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Syrk {
        Syrk::new(9, 11)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Syrk::new(8, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn only_lower_triangle_is_updated() {
        use crate::space::test_support::Recorder;
        let n = 4;
        let mut expect = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let base = seed_value(i + 53, j);
                if j <= i {
                    let mut d = 0.0f32;
                    for k in 0..5 {
                        d += seed_value(i + 59, k) * seed_value(j + 59, k);
                    }
                    expect += (BETA * base + ALPHA * d) as f64;
                } else {
                    expect += base as f64;
                }
            }
        }
        let got = Syrk::new(n, 5).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

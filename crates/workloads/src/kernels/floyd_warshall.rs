//! `floyd-warshall`: all-pairs shortest paths.

use super::{checksum, for_n, pf2, seed_value, Kernel, VEC};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Floyd-Warshall all-pairs shortest paths (`paths: N×N`).
///
/// The min-update is a data-dependent conditional on every inner
/// iteration — the showcase for the "others" branch-less conversion. The
/// inner `j` loop vectorizes with a lane-wise min.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloydWarshall {
    n: usize,
}

impl FloydWarshall {
    /// Creates the kernel for an `n`-node graph.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "floyd-warshall needs at least one node");
        FloydWarshall { n }
    }
}

impl Kernel for FloydWarshall {
    fn name(&self) -> &'static str {
        "floyd-warshall"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut paths = space.array2(n, n);
        // Positive edge weights; 0 on the diagonal.
        paths.fill(|i, j| {
            if i == j {
                0.0
            } else {
                seed_value(i + 163, j).abs() * 9.0 + 1.0
            }
        });

        for_n(e, 1, n, |e, k| {
            for_n(e, 1, n, |e, i| {
                let d_ik = paths.at(e, i, k);
                if t.vectorize {
                    let vec_end = n - n % VEC;
                    let mut j = 0;
                    while j < vec_end {
                        pf2(e, t, &paths, i, j);
                        let ij = paths.at_vec(e, i, j);
                        let kj = paths.at_vec(e, k, j);
                        let mut out = [0.0f32; VEC];
                        for l in 0..VEC {
                            // SIMD min: branch-free by construction.
                            out[l] = ij[l].min(d_ik + kj[l]);
                        }
                        e.compute(super::VOP);
                        paths.set_vec(e, i, j, out);
                        e.compute(1);
                        e.branch(j + VEC < vec_end);
                        j += VEC;
                    }
                    for_n(e, 1, n - vec_end, |e, jt| {
                        let j = vec_end + jt;
                        let via = d_ik + paths.at(e, k, j);
                        let cur = paths.at(e, i, j);
                        e.compute(2);
                        paths.set(e, i, j, cur.min(via));
                    });
                } else {
                    for_n(e, t.unroll_factor(), n, |e, j| {
                        pf2(e, t, &paths, i, j);
                        let via = d_ik + paths.at(e, k, j);
                        let cur = paths.at(e, i, j);
                        e.compute(2);
                        if t.others {
                            // Branch-less min (conditional move).
                            e.compute(1);
                            paths.set(e, i, j, cur.min(via));
                        } else {
                            // The reference code branches on the compare;
                            // the outcome is data dependent.
                            e.branch(via < cur);
                            if via < cur {
                                paths.set(e, i, j, via);
                            }
                        }
                    });
                }
            });
        });
        checksum(paths.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> FloydWarshall {
        FloydWarshall::new(11)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&FloydWarshall::new(16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&FloydWarshall::new(20));
    }

    #[test]
    fn branchless_conversion_eliminates_data_dependent_branches() {
        let mut plain = Recorder::default();
        small().execute(&mut plain, Transformations::none());
        let mut opt = Recorder::default();
        small().execute(&mut opt, Transformations::only_others());
        // The n^3 min-compare branches disappear entirely.
        assert!(opt.branches.len() * 2 < plain.branches.len());
    }

    #[test]
    fn matches_naive_reference() {
        let n = 7;
        let mut p = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                p[i][j] = if i == j {
                    0.0
                } else {
                    seed_value(i + 163, j).abs() * 9.0 + 1.0
                };
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if p[i][k] + p[k][j] < p[i][j] {
                        p[i][j] = p[i][k] + p[k][j];
                    }
                }
            }
        }
        let expect: f64 = p.iter().flatten().map(|&v| v as f64).sum();
        let got = FloydWarshall::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn triangle_inequality_holds_after_the_run() {
        // Shortest paths satisfy d(i,j) <= d(i,k) + d(k,j) for all k.
        let n = 6;
        let mut p = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                p[i][j] = if i == j {
                    0.0
                } else {
                    seed_value(i + 163, j).abs() * 9.0 + 1.0
                };
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    p[i][j] = p[i][j].min(p[i][k] + p[k][j]);
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(p[i][j] <= p[i][k] + p[k][j] + 1e-4);
                }
            }
        }
    }
}

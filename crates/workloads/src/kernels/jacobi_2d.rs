//! `jacobi-2d`: five-point stencil over `TSTEPS` sweeps.

use super::{checksum, for_n, pf2, seed_value, Kernel, VEC};
use crate::space::{Array2, DataSpace};
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// 2-D Jacobi stencil (`A, B: N×N`, ping-pong over `tsteps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jacobi2d {
    n: usize,
    tsteps: usize,
}

impl Jacobi2d {
    /// Creates the kernel (`n × n` grid, `tsteps` sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `tsteps` is zero.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3, "jacobi-2d needs at least a 3x3 grid");
        assert!(tsteps > 0, "jacobi-2d needs at least one sweep");
        Jacobi2d { n, tsteps }
    }

    fn sweep(e: &mut dyn Engine, t: Transformations, src: &Array2, dst: &mut Array2) {
        let n = src.rows();
        for_n(e, 1, n - 2, |e, it| {
            let i = it + 1;
            if t.vectorize {
                let inner = n - 2;
                let vec_end = inner - inner % VEC;
                let mut jt = 0;
                while jt < vec_end {
                    let j = jt + 1;
                    pf2(e, t, src, i, j);
                    let c = src.at_vec(e, i, j);
                    let w = src.at_vec(e, i, j - 1);
                    let x = src.at_vec(e, i, j + 1);
                    let s = src.at_vec(e, i + 1, j);
                    let r = src.at_vec(e, i - 1, j);
                    let mut out = [0.0f32; VEC];
                    for l in 0..VEC {
                        out[l] = 0.2f32 * (c[l] + w[l] + x[l] + s[l] + r[l]);
                    }
                    e.compute(super::VOP + 2);
                    dst.set_vec(e, i, j, out);
                    e.compute(1);
                    e.branch(jt + VEC < vec_end);
                    jt += VEC;
                }
                for_n(e, 1, inner - vec_end, |e, rem| {
                    let j = vec_end + rem + 1;
                    let v = 0.2f32
                        * (src.at(e, i, j)
                            + src.at(e, i, j - 1)
                            + src.at(e, i, j + 1)
                            + src.at(e, i + 1, j)
                            + src.at(e, i - 1, j));
                    e.compute(6);
                    dst.set(e, i, j, v);
                });
            } else {
                for_n(e, t.unroll_factor(), n - 2, |e, jt| {
                    let j = jt + 1;
                    pf2(e, t, src, i, j);
                    let v = 0.2f32
                        * (src.at(e, i, j)
                            + src.at(e, i, j - 1)
                            + src.at(e, i, j + 1)
                            + src.at(e, i + 1, j)
                            + src.at(e, i - 1, j));
                    e.compute(6);
                    dst.set(e, i, j, v);
                });
            }
        });
    }
}

impl Kernel for Jacobi2d {
    fn name(&self) -> &'static str {
        "jacobi-2d"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.n, self.n);
        let mut b = space.array2(self.n, self.n);
        a.fill(|i, j| seed_value(i + 103, j));
        b.fill(|i, j| seed_value(i + 107, j));

        for_n(e, 1, self.tsteps, |e, _| {
            Jacobi2d::sweep(e, t, &a, &mut b);
            Jacobi2d::sweep(e, t, &b, &mut a);
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Jacobi2d {
        Jacobi2d::new(11, 2)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Jacobi2d::new(18, 2));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Jacobi2d::new(20, 2));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let (n, steps) = (6, 1);
        let mut a = vec![vec![0.0f32; n]; n];
        let mut b = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = seed_value(i + 103, j);
                b[i][j] = seed_value(i + 107, j);
            }
        }
        for _ in 0..steps {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    b[i][j] =
                        0.2 * (a[i][j] + a[i][j - 1] + a[i][j + 1] + a[i + 1][j] + a[i - 1][j]);
                }
            }
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    a[i][j] =
                        0.2 * (b[i][j] + b[i][j - 1] + b[i][j + 1] + b[i + 1][j] + b[i - 1][j]);
                }
            }
        }
        let expect: f64 = a.iter().flatten().map(|&v| v as f64).sum();
        let got =
            Jacobi2d::new(n, steps).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

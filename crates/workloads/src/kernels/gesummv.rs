//! `gesummv`: y = α·A·x + β·B·x.

use super::{checksum, dot_row, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Scalar–matrix–vector multiplication summed over two matrices
/// (`A, B: N×N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gesummv {
    n: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

impl Gesummv {
    /// Creates the kernel for `n × n` matrices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "gesummv dimension must be non-zero");
        Gesummv { n }
    }
}

impl Kernel for Gesummv {
    fn name(&self) -> &'static str {
        "gesummv"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.n, self.n);
        let mut b = space.array2(self.n, self.n);
        let mut x = space.array1(self.n);
        let mut y = space.array1(self.n);
        a.fill(|i, j| seed_value(i + 37, j));
        b.fill(|i, j| seed_value(i + 43, j));
        x.fill(|i| seed_value(i, 6));

        for_n(e, 1, self.n, |e, i| {
            let tmp = dot_row(e, t, &a, i, &x);
            let yv = dot_row(e, t, &b, i, &x);
            let out = ALPHA * tmp + BETA * yv;
            e.compute(3);
            y.set(e, i, out);
        });
        checksum(y.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Gesummv {
        Gesummv::new(13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Gesummv::new(16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let n = 6;
        let mut expect = 0.0f64;
        for i in 0..n {
            let mut ta = 0.0f32;
            let mut tb = 0.0f32;
            for j in 0..n {
                ta += seed_value(i + 37, j) * seed_value(j, 6);
                tb += seed_value(i + 43, j) * seed_value(j, 6);
            }
            expect += (ALPHA * ta + BETA * tb) as f64;
        }
        let got = Gesummv::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

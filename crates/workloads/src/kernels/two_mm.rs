//! `2mm`: D = α·A·B·C + β·D (two chained matrix products).

use super::{checksum, matmul, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Two matrix multiplications: `tmp = α·A·B`, then `D = tmp·C + β·D`
/// (`A: NI×NK`, `B: NK×NJ`, `C: NJ×NL`, `D: NI×NL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoMm {
    ni: usize,
    nj: usize,
    nk: usize,
    nl: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

impl TwoMm {
    /// Creates the kernel with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(ni: usize, nj: usize, nk: usize, nl: usize) -> Self {
        assert!(
            ni > 0 && nj > 0 && nk > 0 && nl > 0,
            "2mm dimensions must be non-zero"
        );
        TwoMm { ni, nj, nk, nl }
    }
}

impl Kernel for TwoMm {
    fn name(&self) -> &'static str {
        "2mm"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut tmp = space.array2(self.ni, self.nj);
        let mut a = space.array2(self.ni, self.nk);
        let mut b = space.array2(self.nk, self.nj);
        let mut c = space.array2(self.nj, self.nl);
        let mut d = space.array2(self.ni, self.nl);
        a.fill(|i, j| seed_value(i + 3, j));
        b.fill(|i, j| seed_value(i + 7, j));
        c.fill(|i, j| seed_value(i + 11, j));
        d.fill(|i, j| seed_value(i + 13, j));

        // tmp = alpha * A * B (tmp starts zeroed: beta term is 0).
        matmul(e, t, &mut tmp, &a, &b, ALPHA, 0.0);
        // D = tmp * C + beta * D.
        matmul(e, t, &mut d, &tmp, &c, 1.0, BETA);
        checksum(d.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> TwoMm {
        TwoMm::new(7, 8, 9, 10)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&TwoMm::new(8, 8, 8, 8));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn chains_two_products() {
        use crate::space::test_support::Recorder;
        let mut rec = Recorder::default();
        TwoMm::new(4, 4, 4, 4).execute(&mut rec, Transformations::none());
        // Roughly twice the traffic of one 4x4x4 gemm.
        let mut one = Recorder::default();
        super::super::Gemm::new(4, 4, 4).execute(&mut one, Transformations::none());
        assert!(rec.loads.len() > one.loads.len());
    }
}

//! `symm`: symmetric matrix-matrix multiplication.

use super::{checksum, for_n, pf2, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Symmetric matrix multiply, BLAS `SYMM` left-lower variant:
/// `C = α·A·B + β·C` with `A` symmetric and only its lower triangle
/// stored. The reference loop couples a column reduction with a running
/// row update, mixing both walk directions in one nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Symm {
    m: usize,
    n: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

impl Symm {
    /// Creates the kernel (`A: m × m`, `B, C: m × n`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "symm dimensions must be non-zero");
        Symm { m, n }
    }
}

impl Kernel for Symm {
    fn name(&self) -> &'static str {
        "symm"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let (m, n) = (self.m, self.n);
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(m, m);
        let mut b = space.array2(m, n);
        let mut c = space.array2(m, n);
        a.fill(|i, j| seed_value(i.min(j) + 167, i.max(j)));
        b.fill(|i, j| seed_value(i + 173, j));
        c.fill(|i, j| seed_value(i + 179, j));

        // PolyBench reference nest: for each (i, j), accumulate over k < i
        // into both temp and C[k][j].
        for_n(e, 1, m, |e, i| {
            for_n(e, 1, n, |e, j| {
                let mut temp2 = 0.0f32;
                let b_ij = b.at(e, i, j);
                for_n(e, t.unroll_factor(), i, |e, k| {
                    // A-row hints only; B/C column hints would thrash the
                    // buffer against three live streams.
                    pf2(e, t, &a, i, k);
                    let a_ik = a.at(e, i, k);
                    // C[k][j] += alpha * B[i][j] * A[i][k]
                    let upd = c.at(e, k, j) + ALPHA * b_ij * a_ik;
                    e.compute(3);
                    c.set(e, k, j, upd);
                    // temp2 += B[k][j] * A[i][k]
                    temp2 += b.at(e, k, j) * a_ik;
                    e.compute(2);
                });
                let v = BETA * c.at(e, i, j) + ALPHA * b_ij * a.at(e, i, i) + ALPHA * temp2;
                e.compute(5);
                c.set(e, i, j, v);
            });
        });
        checksum(c.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Symm {
        Symm::new(10, 9)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        let (m, n) = (5, 4);
        let a = |i: usize, j: usize| seed_value(i.min(j) + 167, i.max(j));
        let b = |i: usize, j: usize| seed_value(i + 173, j);
        let mut c = vec![vec![0.0f32; n]; m];
        for (i, row) in c.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = seed_value(i + 179, j);
            }
        }
        for i in 0..m {
            for j in 0..n {
                let mut temp2 = 0.0f32;
                for k in 0..i {
                    c[k][j] += ALPHA * b(i, j) * a(i, k);
                    temp2 += b(k, j) * a(i, k);
                }
                c[i][j] = BETA * c[i][j] + ALPHA * b(i, j) * a(i, i) + ALPHA * temp2;
            }
        }
        let expect: f64 = c.iter().flatten().map(|&v| v as f64).sum();
        let got = Symm::new(m, n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

//! `gemver`: vector multiplication and matrix addition
//! (Â = A + u1·v1ᵀ + u2·v2ᵀ; x = β·Âᵀ·y + z; w = α·Â·x).

use super::{checksum, dot_col, dot_row, for_n, pf2, seed_value, Kernel, VEC};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// The four-phase BLAS-2 composite of PolyBench (`A: N×N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemver {
    n: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 1.2;

impl Gemver {
    /// Creates the kernel for an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "gemver dimension must be non-zero");
        Gemver { n }
    }
}

impl Kernel for Gemver {
    fn name(&self) -> &'static str {
        "gemver"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(n, n);
        let mut u1 = space.array1(n);
        let mut v1 = space.array1(n);
        let mut u2 = space.array1(n);
        let mut v2 = space.array1(n);
        let mut w = space.array1(n);
        let mut x = space.array1(n);
        let mut y = space.array1(n);
        let mut z = space.array1(n);
        a.fill(|i, j| seed_value(i + 47, j));
        u1.fill(|i| seed_value(i, 10));
        v1.fill(|i| seed_value(i, 11));
        u2.fill(|i| seed_value(i, 12));
        v2.fill(|i| seed_value(i, 13));
        y.fill(|i| seed_value(i, 14));
        z.fill(|i| seed_value(i, 15));

        // Phase 1: Â = A + u1·v1ᵀ + u2·v2ᵀ (rank-2 update, row-wise).
        for_n(e, 1, n, |e, i| {
            let a1 = u1.at(e, i);
            let a2 = u2.at(e, i);
            if t.vectorize {
                let vec_end = n - n % VEC;
                let mut j = 0;
                while j < vec_end {
                    pf2(e, t, &a, i, j);
                    let av = a.at_vec(e, i, j);
                    let w1 = v1.at_vec(e, j);
                    let w2 = v2.at_vec(e, j);
                    let mut out = [0.0f32; VEC];
                    for l in 0..VEC {
                        out[l] = av[l] + a1 * w1[l] + a2 * w2[l];
                    }
                    e.compute(super::VOP);
                    a.set_vec(e, i, j, out);
                    e.compute(1);
                    e.branch(j + VEC < vec_end);
                    j += VEC;
                }
                for_n(e, 1, n - vec_end, |e, jt| {
                    let j = vec_end + jt;
                    let v = a.at(e, i, j) + a1 * v1.at(e, j) + a2 * v2.at(e, j);
                    e.compute(4);
                    a.set(e, i, j, v);
                });
            } else {
                for_n(e, t.unroll_factor(), n, |e, j| {
                    pf2(e, t, &a, i, j);
                    let v = a.at(e, i, j) + a1 * v1.at(e, j) + a2 * v2.at(e, j);
                    e.compute(4);
                    a.set(e, i, j, v);
                });
            }
        });

        // Phase 2: x = β·Âᵀ·y + z (column walk).
        for_n(e, 1, n, |e, i| {
            let d = dot_col(e, t, &a, i, &y);
            let v = BETA * d + z.at(e, i);
            e.compute(2);
            x.set(e, i, v);
        });

        // Phase 3: w = α·Â·x (row-wise).
        for_n(e, 1, n, |e, i| {
            let d = dot_row(e, t, &a, i, &x);
            e.compute(1);
            w.set(e, i, ALPHA * d);
        });
        checksum(w.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Gemver {
        Gemver::new(13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Gemver::new(16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let n = 5;
        let mut a = vec![vec![0.0f32; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = seed_value(i + 47, j)
                    + seed_value(i, 10) * seed_value(j, 11)
                    + seed_value(i, 12) * seed_value(j, 13);
            }
        }
        let mut x = vec![0.0f32; n];
        for i in 0..n {
            let mut d = 0.0f32;
            for j in 0..n {
                d += a[j][i] * seed_value(j, 14);
            }
            x[i] = BETA * d + seed_value(i, 15);
        }
        let mut expect = 0.0f64;
        for i in 0..n {
            let mut d = 0.0f32;
            for j in 0..n {
                d += a[i][j] * x[j];
            }
            expect += (ALPHA * d) as f64;
        }
        let got = Gemver::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

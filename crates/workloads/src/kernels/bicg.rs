//! `bicg`: s = Aᵀ·r and q = A·p (BiCG sub-kernel).

use super::{axpy_row, checksum, dot_row, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// The two matrix-vector products of the BiCGStab linear solver
/// (`A: N×M`, `s: M`, `q: N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bicg {
    n: usize,
    m: usize,
}

impl Bicg {
    /// Creates the kernel for an `n × m` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "bicg dimensions must be non-zero");
        Bicg { n, m }
    }
}

impl Kernel for Bicg {
    fn name(&self) -> &'static str {
        "bicg"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.n, self.m);
        let mut s = space.array1(self.m);
        let mut q = space.array1(self.n);
        let mut p = space.array1(self.m);
        let mut r = space.array1(self.n);
        a.fill(|i, j| seed_value(i + 23, j));
        p.fill(|i| seed_value(i, 3));
        r.fill(|i| seed_value(i, 9));

        for_n(e, t.unroll_factor(), self.m, |e, j| {
            s.set(e, j, 0.0);
        });
        for_n(e, 1, self.n, |e, i| {
            // s += r[i] · A[i]   (row update)
            let ri = r.at(e, i);
            axpy_row(e, t, &mut s, &a, i, ri);
            // q[i] = A[i] · p    (row dot)
            let qi = dot_row(e, t, &a, i, &p);
            q.set(e, i, qi);
        });
        checksum(s.raw()) + checksum(q.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Bicg {
        Bicg::new(11, 9)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Bicg::new(8, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let (n, m) = (4, 3);
        let a = |i: usize, j: usize| seed_value(i + 23, j);
        let p = |j: usize| seed_value(j, 3);
        let r = |i: usize| seed_value(i, 9);
        let mut s = vec![0.0f32; m];
        let mut q = vec![0.0f32; n];
        for i in 0..n {
            for (j, sv) in s.iter_mut().enumerate() {
                *sv += r(i) * a(i, j);
            }
            for j in 0..m {
                q[i] += a(i, j) * p(j);
            }
        }
        let expect: f64 =
            s.iter().map(|&v| v as f64).sum::<f64>() + q.iter().map(|&v| v as f64).sum::<f64>();
        let got = Bicg::new(n, m).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

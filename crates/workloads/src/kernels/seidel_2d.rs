//! `seidel-2d`: in-place nine-point Gauss-Seidel sweeps.

use super::{checksum, for_n, pf2, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// 2-D Gauss-Seidel (`A: N×N`, in place over `tsteps`).
///
/// The loop-carried dependence (`A[i][j]` uses the *updated* west and north
/// neighbours) makes the kernel **non-vectorizable** — the `vectorize`
/// toggle is a no-op here, exactly as the paper's per-benchmark Fig. 6
/// breakdown varies by kernel. Prefetching and unrolling still apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seidel2d {
    n: usize,
    tsteps: usize,
}

impl Seidel2d {
    /// Creates the kernel (`n × n` grid, `tsteps` sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `tsteps` is zero.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3, "seidel-2d needs at least a 3x3 grid");
        assert!(tsteps > 0, "seidel-2d needs at least one sweep");
        Seidel2d { n, tsteps }
    }
}

impl Kernel for Seidel2d {
    fn name(&self) -> &'static str {
        "seidel-2d"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(n, n);
        a.fill(|i, j| seed_value(i + 109, j));

        for_n(e, 1, self.tsteps, |e, _| {
            for_n(e, 1, n - 2, |e, it| {
                let i = it + 1;
                for_n(e, t.unroll_factor(), n - 2, |e, jt| {
                    let j = jt + 1;
                    pf2(e, t, &a, i, j);
                    let v = (a.at(e, i - 1, j - 1)
                        + a.at(e, i - 1, j)
                        + a.at(e, i - 1, j + 1)
                        + a.at(e, i, j - 1)
                        + a.at(e, i, j)
                        + a.at(e, i, j + 1)
                        + a.at(e, i + 1, j - 1)
                        + a.at(e, i + 1, j)
                        + a.at(e, i + 1, j + 1))
                        / 9.0;
                    e.compute(9);
                    a.set(e, i, j, v);
                });
            });
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Seidel2d {
        Seidel2d::new(9, 2)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorize_toggle_is_a_no_op() {
        // The dependence chain forbids vectorization: same event stream.
        let mut a = Recorder::default();
        small().execute(&mut a, Transformations::none());
        let mut b = Recorder::default();
        small().execute(&mut b, Transformations::only_vectorize());
        assert_eq!(a.loads.len(), b.loads.len());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Seidel2d::new(20, 2));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        let (n, steps) = (5, 1);
        let mut a = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = seed_value(i + 109, j);
            }
        }
        for _ in 0..steps {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    a[i][j] = (a[i - 1][j - 1]
                        + a[i - 1][j]
                        + a[i - 1][j + 1]
                        + a[i][j - 1]
                        + a[i][j]
                        + a[i][j + 1]
                        + a[i + 1][j - 1]
                        + a[i + 1][j]
                        + a[i + 1][j + 1])
                        / 9.0;
                }
            }
        }
        let expect: f64 = a.iter().flatten().map(|&v| v as f64).sum();
        let got =
            Seidel2d::new(n, steps).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

//! `gemm`: C = α·A·B + β·C.

use super::{checksum, matmul, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// General matrix-matrix multiplication (`C: NI×NJ`, `A: NI×NK`,
/// `B: NK×NJ`).
///
/// The scalar reference keeps PolyBench's `i, j, k` order, whose `B[k][j]`
/// column walk defeats small line buffers; the vectorized variant blocks
/// `j` by four with register accumulators, turning the `B` traffic into
/// sequential vector loads — the transformation that makes the VWB shine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemm {
    ni: usize,
    nj: usize,
    nk: usize,
}

pub(crate) const ALPHA: f32 = 1.5;
pub(crate) const BETA: f32 = 1.2;

impl Gemm {
    /// Creates the kernel with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(ni: usize, nj: usize, nk: usize) -> Self {
        assert!(
            ni > 0 && nj > 0 && nk > 0,
            "gemm dimensions must be non-zero"
        );
        Gemm { ni, nj, nk }
    }
}

impl Kernel for Gemm {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut c = space.array2(self.ni, self.nj);
        let mut a = space.array2(self.ni, self.nk);
        let mut b = space.array2(self.nk, self.nj);
        c.fill(seed_value);
        a.fill(|i, j| seed_value(i + 17, j));
        b.fill(|i, j| seed_value(i + 31, j));

        matmul(e, t, &mut c, &a, &b, ALPHA, BETA);
        checksum(c.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Gemm {
        Gemm::new(9, 10, 11)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Gemm::new(8, 16, 8));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        // Independent re-computation of C = alpha*A*B + beta*C with the
        // same seeded inputs.
        let (ni, nj, nk) = (5, 6, 7);
        let mut expect = 0.0f64;
        for i in 0..ni {
            for j in 0..nj {
                let mut acc = seed_value(i, j) * BETA;
                for k in 0..nk {
                    acc += ALPHA * seed_value(i + 17, k) * seed_value(k + 31, j);
                }
                expect += acc as f64;
            }
        }
        let got = Gemm::new(ni, nj, nk).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Gemm::new(0, 4, 4);
    }
}

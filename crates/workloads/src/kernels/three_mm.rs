//! `3mm`: G = (A·B)·(C·D) (three chained matrix products).

use super::{checksum, matmul, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Three matrix multiplications: `E = A·B`, `F = C·D`, `G = E·F`
/// (`A: NI×NK`, `B: NK×NJ`, `C: NJ×NM`, `D: NM×NL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeMm {
    ni: usize,
    nj: usize,
    nk: usize,
    nl: usize,
    nm: usize,
}

impl ThreeMm {
    /// Creates the kernel with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(ni: usize, nj: usize, nk: usize, nl: usize, nm: usize) -> Self {
        assert!(
            ni > 0 && nj > 0 && nk > 0 && nl > 0 && nm > 0,
            "3mm dimensions must be non-zero"
        );
        ThreeMm { ni, nj, nk, nl, nm }
    }
}

impl Kernel for ThreeMm {
    fn name(&self) -> &'static str {
        "3mm"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.ni, self.nk);
        let mut b = space.array2(self.nk, self.nj);
        let mut c = space.array2(self.nj, self.nm);
        let mut d = space.array2(self.nm, self.nl);
        let mut ef = space.array2(self.ni, self.nj);
        let mut fg = space.array2(self.nj, self.nl);
        let mut g = space.array2(self.ni, self.nl);
        a.fill(|i, j| seed_value(i + 3, j));
        b.fill(|i, j| seed_value(i + 7, j));
        c.fill(|i, j| seed_value(i + 11, j));
        d.fill(|i, j| seed_value(i + 13, j));

        matmul(e, t, &mut ef, &a, &b, 1.0, 0.0); // E = A·B
        matmul(e, t, &mut fg, &c, &d, 1.0, 0.0); // F = C·D
        matmul(e, t, &mut g, &ef, &fg, 1.0, 0.0); // G = E·F
        checksum(g.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> ThreeMm {
        ThreeMm::new(6, 7, 8, 9, 10)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&ThreeMm::new(8, 8, 8, 8, 8));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }
}

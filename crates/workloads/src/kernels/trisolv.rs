//! `trisolv`: forward substitution L·x = b.

use super::{checksum, dot_row_prefix, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Triangular solver (`L: N×N` lower triangular, diagonal made dominant so
/// the solve is numerically stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trisolv {
    n: usize,
}

impl Trisolv {
    /// Creates the kernel for an `n × n` system.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "trisolv dimension must be non-zero");
        Trisolv { n }
    }
}

impl Kernel for Trisolv {
    fn name(&self) -> &'static str {
        "trisolv"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut l = space.array2(self.n, self.n);
        let mut x = space.array1(self.n);
        let mut b = space.array1(self.n);
        // Diagonally dominant lower-triangular matrix.
        l.fill(|i, j| {
            if i == j {
                4.0 + seed_value(i, i).abs()
            } else {
                seed_value(i + 83, j) * 0.5
            }
        });
        b.fill(|i| seed_value(i, 21));

        for_n(e, 1, self.n, |e, i| {
            // x[i] = (b[i] - Σ_{j<i} L[i][j]·x[j]) / L[i][i]
            let sum = dot_row_prefix(e, t, &l, i, &x, i);
            let num = b.at(e, i) - sum;
            let den = l.at(e, i, i);
            e.compute(3); // subtract + divide
            x.set(e, i, num / den);
        });
        checksum(x.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Trisolv {
        Trisolv::new(21)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Trisolv::new(32));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn solves_the_system() {
        use crate::space::test_support::Recorder;
        // Verify L·x = b by re-running and substituting.
        let n = 8;
        let l = |i: usize, j: usize| {
            if i == j {
                4.0 + seed_value(i, i).abs()
            } else {
                seed_value(i + 83, j) * 0.5
            }
        };
        let b = |i: usize| seed_value(i, 21);
        let mut x = vec![0.0f32; n];
        for i in 0..n {
            let mut sum = 0.0f32;
            for (j, &xv) in x.iter().enumerate().take(i) {
                sum += l(i, j) * xv;
            }
            x[i] = (b(i) - sum) / l(i, i);
        }
        let expect: f64 = x.iter().map(|&v| v as f64).sum();
        let got = Trisolv::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

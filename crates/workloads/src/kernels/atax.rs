//! `atax`: y = Aᵀ(A·x).

use super::{axpy_row, checksum, dot_row, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Matrix-transpose-vector product (`A: M×N`).
///
/// Both inner loops walk `A` row-wise — the streaming pattern where VWB
/// promotions amortize over a whole line and one-line-ahead prefetching
/// hides the NVM read almost entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atax {
    m: usize,
    n: usize,
}

impl Atax {
    /// Creates the kernel for an `m × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "atax dimensions must be non-zero");
        Atax { m, n }
    }
}

impl Kernel for Atax {
    fn name(&self) -> &'static str {
        "atax"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.m, self.n);
        let mut x = space.array1(self.n);
        let mut y = space.array1(self.n);
        a.fill(|i, j| seed_value(i + 5, j));
        x.fill(|i| seed_value(i, 41));

        // y = 0
        for_n(e, t.unroll_factor(), self.n, |e, j| {
            y.set(e, j, 0.0);
        });

        for_n(e, 1, self.m, |e, i| {
            let tmp = dot_row(e, t, &a, i, &x); // tmp = A[i]·x
            axpy_row(e, t, &mut y, &a, i, tmp); // y += tmp·A[i]
        });
        checksum(y.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Atax {
        Atax::new(10, 13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Atax::new(8, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let (m, n) = (4, 5);
        let a = |i: usize, j: usize| seed_value(i + 5, j);
        let x = |j: usize| seed_value(j, 41);
        let mut y = vec![0.0f32; n];
        for i in 0..m {
            let mut tmp = 0.0f32;
            for j in 0..n {
                tmp += a(i, j) * x(j);
            }
            for (j, yv) in y.iter_mut().enumerate() {
                *yv += tmp * a(i, j);
            }
        }
        let expect: f64 = y.iter().map(|&v| v as f64).sum();
        let got = Atax::new(m, n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

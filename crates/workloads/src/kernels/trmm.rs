//! `trmm`: B = α·Aᵀ·B with A unit lower triangular.

use super::{checksum, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Triangular matrix multiplication (`A: M×M` unit lower triangular,
/// `B: M×N`).
///
/// The `A[k][i]` operand walks a *column* of `A`, while `B[k][j]` walks a
/// column of `B` — a doubly strided pattern; the vectorized variant blocks
/// `j` so the `B` walk becomes wide row access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trmm {
    m: usize,
    n: usize,
}

const ALPHA: f32 = 1.5;

impl Trmm {
    /// Creates the kernel (`A: m × m`, `B: m × n`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "trmm dimensions must be non-zero");
        Trmm { m, n }
    }
}

impl Kernel for Trmm {
    fn name(&self) -> &'static str {
        "trmm"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(self.m, self.m);
        let mut b = space.array2(self.m, self.n);
        a.fill(|i, j| seed_value(i + 73, j));
        b.fill(|i, j| seed_value(i + 79, j));
        let m = self.m;

        if t.vectorize {
            let nv = self.n - self.n % super::VEC;
            for_n(e, 1, m, |e, i| {
                let mut j = 0;
                while j < nv {
                    let mut acc = b.at_vec(e, i, j);
                    for_n(e, t.unroll_factor(), m - (i + 1), |e, kt| {
                        let k = i + 1 + kt;
                        if t.prefetch && k + 2 < m {
                            e.prefetch(a.addr(k + 2, i));
                        }
                        let aki = a.at(e, k, i);
                        let bv = b.at_vec(e, k, j);
                        for l in 0..super::VEC {
                            acc[l] += aki * bv[l];
                        }
                        e.compute(super::VOP);
                    });
                    let mut out = [0.0f32; super::VEC];
                    for l in 0..super::VEC {
                        out[l] = ALPHA * acc[l];
                    }
                    e.compute(1);
                    b.set_vec(e, i, j, out);
                    e.compute(1);
                    e.branch(j + super::VEC < nv);
                    j += super::VEC;
                }
                for_n(e, 1, self.n - nv, |e, jt| {
                    let j = nv + jt;
                    self.scalar_cell(e, t, &mut b, &a, i, j);
                });
            });
        } else {
            for_n(e, 1, m, |e, i| {
                for_n(e, 1, self.n, |e, j| {
                    self.scalar_cell(e, t, &mut b, &a, i, j);
                });
            });
        }
        checksum(b.raw())
    }
}

impl Trmm {
    fn scalar_cell(
        &self,
        e: &mut dyn Engine,
        t: Transformations,
        b: &mut crate::space::Array2,
        a: &crate::space::Array2,
        i: usize,
        j: usize,
    ) {
        let m = self.m;
        let mut acc = b.at(e, i, j);
        for_n(e, t.unroll_factor(), m - (i + 1), |e, kt| {
            let k = i + 1 + kt;
            if t.prefetch && k + 2 < m {
                e.prefetch(a.addr(k + 2, i));
                e.prefetch(b.addr(k + 2, j));
            }
            acc += a.at(e, k, i) * b.at(e, k, j);
            e.compute(3);
        });
        e.compute(1);
        b.set(e, i, j, ALPHA * acc);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Trmm {
        Trmm::new(9, 10)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Trmm::new(8, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let (m, n) = (4, 3);
        let a = |i: usize, j: usize| seed_value(i + 73, j);
        let mut b = vec![vec![0.0f32; n]; m];
        for (i, row) in b.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = seed_value(i + 79, j);
            }
        }
        for i in 0..m {
            for j in 0..n {
                let mut acc = b[i][j];
                for k in (i + 1)..m {
                    acc += a(k, i) * b[k][j];
                }
                b[i][j] = ALPHA * acc;
            }
        }
        let expect: f64 = b.iter().flatten().map(|&v| v as f64).sum();
        let got = Trmm::new(m, n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

//! `durbin`: Levinson-Durbin recursion for Toeplitz systems.

use super::{checksum, for_n, pf1, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// The Levinson-Durbin recursion (`r, y: N`). The reversed-index inner
/// product (`r[k-i-1]·y[i]`) walks one operand backwards — a pattern the
/// next-line prefetcher cannot help, so the software hints target the
/// forward operand only. Inherently serial across `k`; only the inner
/// loops vectorize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Durbin {
    n: usize,
}

impl Durbin {
    /// Creates the kernel for an order-`n` system.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "durbin needs at least order two");
        Durbin { n }
    }
}

impl Kernel for Durbin {
    fn name(&self) -> &'static str {
        "durbin"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut r = space.array1(n);
        let mut y = space.array1(n);
        let mut z = space.array1(n);
        // Toeplitz coefficients kept small so the recursion stays stable.
        r.fill(|i| seed_value(i, 137) * 0.1 - 0.2);

        let mut alpha = -r.at(e, 0);
        let mut beta = 1.0f32;
        y.set(e, 0, alpha);
        e.compute(2);

        for_n(e, 1, n - 1, |e, kt| {
            let k = kt + 1;
            beta *= 1.0 - alpha * alpha;
            e.compute(3);
            // sum = Σ_i r[k-i-1]·y[i]  (reversed walk on r).
            let mut sum = 0.0f32;
            for_n(e, t.unroll_factor(), k, |e, i| {
                pf1(e, t, &y, i);
                sum += r.at(e, k - i - 1) * y.at(e, i);
                e.compute(3);
            });
            alpha = -(r.at(e, k) + sum) / beta;
            e.compute(3);
            // z[i] = y[i] + alpha·y[k-i-1], then copy back.
            for_n(e, t.unroll_factor(), k, |e, i| {
                let v = y.at(e, i) + alpha * y.at(e, k - i - 1);
                e.compute(3);
                z.set(e, i, v);
            });
            for_n(e, t.unroll_factor(), k, |e, i| {
                let v = z.at(e, i);
                y.set(e, i, v);
            });
            y.set(e, k, alpha);
        });
        checksum(y.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Durbin {
        Durbin::new(24)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Durbin::new(64));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        let n = 8;
        let r: Vec<f32> = (0..n).map(|i| seed_value(i, 137) * 0.1 - 0.2).collect();
        let mut y = vec![0.0f32; n];
        let mut alpha = -r[0];
        let mut beta = 1.0f32;
        y[0] = alpha;
        for k in 1..n {
            beta *= 1.0 - alpha * alpha;
            let mut sum = 0.0f32;
            for i in 0..k {
                sum += r[k - i - 1] * y[i];
            }
            alpha = -(r[k] + sum) / beta;
            let z: Vec<f32> = (0..k).map(|i| y[i] + alpha * y[k - i - 1]).collect();
            y[..k].copy_from_slice(&z);
            y[k] = alpha;
        }
        let expect: f64 = y.iter().map(|&v| v as f64).sum();
        let got = Durbin::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

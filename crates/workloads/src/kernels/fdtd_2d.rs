//! `fdtd-2d`: 2-D finite-difference time-domain electromagnetic kernel.

use super::{checksum, for_n, pf2, seed_value, Kernel, VEC};
use crate::space::{Array2, DataSpace};
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// FDTD over the TM fields (`ex, ey, hz: NX×NY`, `tmax` steps). Three
/// interleaved stencils over three arrays triple the live working set —
/// exactly the pressure that differentiates VWB capacities (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fdtd2d {
    nx: usize,
    ny: usize,
    tmax: usize,
}

impl Fdtd2d {
    /// Creates the kernel (`nx × ny` grid, `tmax` time steps).
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2 or `tmax` is zero.
    pub fn new(nx: usize, ny: usize, tmax: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "fdtd-2d needs at least a 2x2 grid");
        assert!(tmax > 0, "fdtd-2d needs at least one time step");
        Fdtd2d { nx, ny, tmax }
    }

    #[allow(clippy::too_many_arguments)]
    fn row_update(
        e: &mut dyn Engine,
        t: Transformations,
        dst: &mut Array2,
        a: &Array2,
        b: &Array2,
        i: usize,
        j0: usize,
        coeff: f32,
        offset: (usize, usize),
    ) {
        // dst[i][j] -= coeff * (a[i][j] - b[i-di][j-dj]) for j in j0..cols.
        let cols = dst.cols();
        let (di, dj) = offset;
        if t.vectorize && cols - j0 >= VEC {
            let inner = cols - j0;
            let vec_end = j0 + (inner - inner % VEC);
            let mut j = j0;
            while j < vec_end {
                pf2(e, t, a, i, j);
                let dv = dst.at_vec(e, i, j);
                let av = a.at_vec(e, i, j);
                let bv = b.at_vec(e, i - di, j - dj);
                let mut out = [0.0f32; VEC];
                for l in 0..VEC {
                    out[l] = dv[l] - coeff * (av[l] - bv[l]);
                }
                e.compute(super::VOP);
                dst.set_vec(e, i, j, out);
                e.compute(1);
                e.branch(j + VEC < vec_end);
                j += VEC;
            }
            for_n(e, 1, cols - vec_end, |e, jt| {
                let j = vec_end + jt;
                let v = dst.at(e, i, j) - coeff * (a.at(e, i, j) - b.at(e, i - di, j - dj));
                e.compute(4);
                dst.set(e, i, j, v);
            });
        } else {
            for_n(e, t.unroll_factor(), cols - j0, |e, jt| {
                let j = j0 + jt;
                pf2(e, t, a, i, j);
                let v = dst.at(e, i, j) - coeff * (a.at(e, i, j) - b.at(e, i - di, j - dj));
                e.compute(4);
                dst.set(e, i, j, v);
            });
        }
    }
}

impl Kernel for Fdtd2d {
    fn name(&self) -> &'static str {
        "fdtd-2d"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let (nx, ny) = (self.nx, self.ny);
        let mut space = DataSpace::new(t.others);
        let mut ex = space.array2(nx, ny);
        let mut ey = space.array2(nx, ny);
        let mut hz = space.array2(nx, ny);
        ex.fill(|i, j| seed_value(i + 181, j));
        ey.fill(|i, j| seed_value(i + 191, j));
        hz.fill(|i, j| seed_value(i + 193, j));

        for_n(e, 1, self.tmax, |e, step| {
            // ey[0][j] = source(step)
            for_n(e, t.unroll_factor(), ny, |e, j| {
                e.compute(1);
                ey.set(e, 0, j, step as f32 * 0.01);
            });
            // ey[i][j] -= 0.5 (hz[i][j] - hz[i-1][j])
            for_n(e, 1, nx - 1, |e, it| {
                let i = it + 1;
                Fdtd2d::row_update(e, t, &mut ey, &hz, &hz, i, 0, 0.5, (1, 0));
            });
            // ex[i][j] -= 0.5 (hz[i][j] - hz[i][j-1])
            for_n(e, 1, nx, |e, i| {
                Fdtd2d::row_update(e, t, &mut ex, &hz, &hz, i, 1, 0.5, (0, 1));
            });
            // hz[i][j] -= 0.7 (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j])
            for_n(e, 1, nx - 1, |e, i| {
                for_n(e, t.unroll_factor(), ny - 1, |e, j| {
                    pf2(e, t, &hz, i, j);
                    let v = hz.at(e, i, j)
                        - 0.7f32
                            * (ex.at(e, i, j + 1) - ex.at(e, i, j) + ey.at(e, i + 1, j)
                                - ey.at(e, i, j));
                    e.compute(6);
                    hz.set(e, i, j, v);
                });
            });
        });
        checksum(hz.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Fdtd2d {
        Fdtd2d::new(10, 11, 2)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Fdtd2d::new(10, 18, 2));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Fdtd2d::new(10, 20, 2));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        let (nx, ny, tmax) = (5, 6, 2);
        let mut ex = vec![vec![0.0f32; ny]; nx];
        let mut ey = vec![vec![0.0f32; ny]; nx];
        let mut hz = vec![vec![0.0f32; ny]; nx];
        for i in 0..nx {
            for j in 0..ny {
                ex[i][j] = seed_value(i + 181, j);
                ey[i][j] = seed_value(i + 191, j);
                hz[i][j] = seed_value(i + 193, j);
            }
        }
        for step in 0..tmax {
            for j in 0..ny {
                ey[0][j] = step as f32 * 0.01;
            }
            for i in 1..nx {
                for j in 0..ny {
                    ey[i][j] -= 0.5 * (hz[i][j] - hz[i - 1][j]);
                }
            }
            for i in 0..nx {
                for j in 1..ny {
                    ex[i][j] -= 0.5 * (hz[i][j] - hz[i][j - 1]);
                }
            }
            for i in 0..nx - 1 {
                for j in 0..ny - 1 {
                    hz[i][j] -= 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
                }
            }
        }
        let expect: f64 = hz.iter().flatten().map(|&v| v as f64).sum();
        let got =
            Fdtd2d::new(nx, ny, tmax).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

//! `lu`: LU decomposition without pivoting.

use super::{checksum, dot_row_prefix_rows_col, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// In-place LU factorization (`A: N×N`, diagonally dominant so no pivoting
/// is needed). The `U` update dots a row prefix against a *column* prefix
/// — the hybrid pattern that keeps part of the traffic column-strided even
/// after vectorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lu {
    n: usize,
}

impl Lu {
    /// Creates the kernel for an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "lu dimension must be non-zero");
        Lu { n }
    }
}

impl Kernel for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(n, n);
        a.fill(|i, j| {
            if i == j {
                n as f32 + 2.0
            } else {
                seed_value(i + 139, j) * 0.4
            }
        });

        for_n(e, 1, n, |e, i| {
            // L part: A[i][j] = (A[i][j] - A[i][:j]·A[:j][j]) / A[j][j]
            for_n(e, 1, i, |e, j| {
                let dot = dot_row_prefix_rows_col(e, t, &a, i, j, j);
                let v = (a.at(e, i, j) - dot) / a.at(e, j, j);
                e.compute(3);
                a.set(e, i, j, v);
            });
            // U part: A[i][j] -= A[i][:i]·A[:i][j]
            for_n(e, 1, n - i, |e, dj| {
                let j = i + dj;
                let dot = dot_row_prefix_rows_col(e, t, &a, i, j, i);
                let v = a.at(e, i, j) - dot;
                e.compute(2);
                a.set(e, i, j, v);
            });
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Lu {
        Lu::new(13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Lu::new(40));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        let n = 6;
        let orig = |i: usize, j: usize| {
            if i == j {
                n as f32 + 2.0
            } else {
                seed_value(i + 139, j) * 0.4
            }
        };
        let mut a = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = orig(i, j);
            }
        }
        for i in 0..n {
            for j in 0..i {
                let mut dot = 0.0f32;
                for k in 0..j {
                    dot += a[i][k] * a[k][j];
                }
                a[i][j] = (a[i][j] - dot) / a[j][j];
            }
            for j in i..n {
                let mut dot = 0.0f32;
                for k in 0..i {
                    dot += a[i][k] * a[k][j];
                }
                a[i][j] -= dot;
            }
        }
        let expect: f64 = a.iter().flatten().map(|&v| v as f64).sum();
        let got = Lu::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

//! `ludcmp`: LU decomposition followed by forward/backward substitution.

use super::{checksum, dot_row_prefix, dot_row_prefix_rows_col, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// LU-based linear solve (`A: N×N`, `b, x, y: N`): factorize in place,
/// then `L·y = b` and `U·x = y`. The backward substitution walks rows in
/// reverse — the anti-streaming direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ludcmp {
    n: usize,
}

impl Ludcmp {
    /// Creates the kernel for an `n × n` system.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ludcmp dimension must be non-zero");
        Ludcmp { n }
    }
}

impl Kernel for Ludcmp {
    fn name(&self) -> &'static str {
        "ludcmp"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(n, n);
        let mut b = space.array1(n);
        let mut x = space.array1(n);
        let mut y = space.array1(n);
        a.fill(|i, j| {
            if i == j {
                n as f32 + 2.0
            } else {
                seed_value(i + 149, j) * 0.4
            }
        });
        b.fill(|i| seed_value(i, 151));

        // Factorize (same recurrence as the `lu` kernel).
        for_n(e, 1, n, |e, i| {
            for_n(e, 1, i, |e, j| {
                let dot = dot_row_prefix_rows_col(e, t, &a, i, j, j);
                let v = (a.at(e, i, j) - dot) / a.at(e, j, j);
                e.compute(3);
                a.set(e, i, j, v);
            });
            for_n(e, 1, n - i, |e, dj| {
                let j = i + dj;
                let dot = dot_row_prefix_rows_col(e, t, &a, i, j, i);
                let v = a.at(e, i, j) - dot;
                e.compute(2);
                a.set(e, i, j, v);
            });
        });

        // Forward substitution: y[i] = b[i] - A[i][:i]·y[:i].
        for_n(e, 1, n, |e, i| {
            let dot = dot_row_prefix(e, t, &a, i, &y, i);
            let v = b.at(e, i) - dot;
            e.compute(2);
            y.set(e, i, v);
        });

        // Backward substitution: x[i] = (y[i] - A[i][i+1:]·x[i+1:]) / A[i][i].
        for_n(e, 1, n, |e, rev| {
            let i = n - 1 - rev;
            let mut dot = 0.0f32;
            for_n(e, t.unroll_factor(), n - i - 1, |e, dj| {
                let j = i + 1 + dj;
                dot += a.at(e, i, j) * x.at(e, j);
                e.compute(3);
            });
            let v = (y.at(e, i) - dot) / a.at(e, i, i);
            e.compute(3);
            x.set(e, i, v);
        });
        checksum(x.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Ludcmp {
        Ludcmp::new(13)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Ludcmp::new(24));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Ludcmp::new(40));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn solves_the_system() {
        // Verify A·x = b by substitution on a small instance.
        let n = 6;
        let orig = |i: usize, j: usize| {
            if i == j {
                n as f32 + 2.0
            } else {
                seed_value(i + 149, j) * 0.4
            }
        };
        let b: Vec<f32> = (0..n).map(|i| seed_value(i, 151)).collect();
        // Reference solve with plain loops.
        let mut a = vec![vec![0.0f32; n]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = orig(i, j);
            }
        }
        for i in 0..n {
            for j in 0..i {
                let mut d = 0.0f32;
                for k in 0..j {
                    d += a[i][k] * a[k][j];
                }
                a[i][j] = (a[i][j] - d) / a[j][j];
            }
            for j in i..n {
                let mut d = 0.0f32;
                for k in 0..i {
                    d += a[i][k] * a[k][j];
                }
                a[i][j] -= d;
            }
        }
        let mut y = vec![0.0f32; n];
        for i in 0..n {
            let mut d = 0.0f32;
            for k in 0..i {
                d += a[i][k] * y[k];
            }
            y[i] = b[i] - d;
        }
        let mut x = vec![0.0f32; n];
        for i in (0..n).rev() {
            let mut d = 0.0f32;
            for k in i + 1..n {
                d += a[i][k] * x[k];
            }
            x[i] = (y[i] - d) / a[i][i];
        }
        // Check residual against the ORIGINAL matrix.
        for i in 0..n {
            let mut ax = 0.0f32;
            for (j, &xv) in x.iter().enumerate() {
                ax += orig(i, j) * xv;
            }
            assert!((ax - b[i]).abs() < 1e-3, "row {i}: {ax} vs {}", b[i]);
        }
        let expect: f64 = x.iter().map(|&v| v as f64).sum();
        let got = Ludcmp::new(n).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}

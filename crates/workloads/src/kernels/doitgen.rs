//! `doitgen`: multi-resolution analysis kernel
//! (A[r][q][p] = Σ_s A[r][q][s]·C4[s][p]).

use super::{checksum, for_n, pf2, seed_value, Kernel, VEC};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// The MADNESS `doitgen` kernel (`A: R×Q×P`, `C4: P×P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Doitgen {
    nr: usize,
    nq: usize,
    np: usize,
}

impl Doitgen {
    /// Creates the kernel with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nr: usize, nq: usize, np: usize) -> Self {
        assert!(
            nr > 0 && nq > 0 && np > 0,
            "doitgen dimensions must be non-zero"
        );
        Doitgen { nr, nq, np }
    }
}

impl Kernel for Doitgen {
    fn name(&self) -> &'static str {
        "doitgen"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let (nr, nq, np) = (self.nr, self.nq, self.np);
        let mut space = DataSpace::new(t.others);
        let mut a = space.array3(nr, nq, np);
        let mut c4 = space.array2(np, np);
        let mut sum = space.array1(np);
        a.fill(|r, q, p| seed_value(r * 31 + q, p));
        c4.fill(|i, j| seed_value(i + 89, j));

        for_n(e, 1, nr, |e, r| {
            for_n(e, 1, nq, |e, q| {
                if t.vectorize {
                    let vec_end = np - np % VEC;
                    let mut p = 0;
                    while p < vec_end {
                        let mut acc = [0.0f32; VEC];
                        for_n(e, t.unroll_factor(), np, |e, s| {
                            pf2(e, t, &c4, s, p);
                            let av = a.at(e, r, q, s);
                            let cv = c4.at_vec(e, s, p);
                            for l in 0..VEC {
                                acc[l] += av * cv[l];
                            }
                            e.compute(super::VOP);
                        });
                        for (l, &v) in acc.iter().enumerate() {
                            sum.set(e, p + l, v);
                        }
                        e.compute(1);
                        e.branch(p + VEC < vec_end);
                        p += VEC;
                    }
                    for_n(e, 1, np - vec_end, |e, pt| {
                        let p = vec_end + pt;
                        let mut acc = 0.0f32;
                        for_n(e, 1, np, |e, s| {
                            acc += a.at(e, r, q, s) * c4.at(e, s, p);
                            e.compute(3);
                        });
                        sum.set(e, p, acc);
                    });
                } else {
                    for_n(e, 1, np, |e, p| {
                        let mut acc = 0.0f32;
                        for_n(e, t.unroll_factor(), np, |e, s| {
                            if t.prefetch && s + 2 < np {
                                e.prefetch(c4.addr(s + 2, p));
                            }
                            acc += a.at(e, r, q, s) * c4.at(e, s, p);
                            e.compute(3);
                        });
                        sum.set(e, p, acc);
                    });
                }
                // Copy the accumulator row back into A[r][q][*].
                for_n(e, t.unroll_factor(), np, |e, p| {
                    let v = sum.at(e, p);
                    a.set(e, r, q, p, v);
                });
            });
        });
        checksum(a.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;

    fn small() -> Doitgen {
        Doitgen::new(4, 4, 9)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorization_reduces_loads() {
        assert_vectorization_reduces_loads(&Doitgen::new(3, 3, 16));
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&small());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn matches_naive_reference() {
        use crate::space::test_support::Recorder;
        let (nr, nq, np) = (2, 2, 3);
        let mut a = vec![0.0f32; nr * nq * np];
        for r in 0..nr {
            for q in 0..nq {
                for p in 0..np {
                    a[(r * nq + q) * np + p] = seed_value(r * 31 + q, p);
                }
            }
        }
        let c4 = |s: usize, p: usize| seed_value(s + 89, p);
        for r in 0..nr {
            for q in 0..nq {
                let mut sum = vec![0.0f32; np];
                for (p, sv) in sum.iter_mut().enumerate() {
                    for s in 0..np {
                        *sv += a[(r * nq + q) * np + s] * c4(s, p);
                    }
                }
                for p in 0..np {
                    a[(r * nq + q) * np + p] = sum[p];
                }
            }
        }
        let expect: f64 = a.iter().map(|&v| v as f64).sum();
        let got =
            Doitgen::new(nr, nq, np).execute(&mut Recorder::default(), Transformations::none());
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }
}

//! `gramschmidt`: modified Gram-Schmidt QR decomposition.

use super::{checksum, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// QR decomposition by modified Gram-Schmidt (`A: M×N` → `Q: M×N`,
/// `R: N×N`). Column-norm reductions and column-pair projections make
/// this the most column-walk-intensive kernel of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gramschmidt {
    m: usize,
    n: usize,
}

impl Gramschmidt {
    /// Creates the kernel (`A: m × n`, `m ≥ n` for full rank).
    ///
    /// # Panics
    ///
    /// Panics if `m < n` or `n` is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(n > 0 && m >= n, "gramschmidt needs m >= n > 0");
        Gramschmidt { m, n }
    }
}

impl Kernel for Gramschmidt {
    fn name(&self) -> &'static str {
        "gramschmidt"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let (m, n) = (self.m, self.n);
        let mut space = DataSpace::new(t.others);
        let mut a = space.array2(m, n);
        let mut q = space.array2(m, n);
        let mut r = space.array2(n, n);
        // A diagonally boosted random matrix stays numerically full rank.
        a.fill(|i, j| seed_value(i + 157, j) + if i == j { 3.0 } else { 0.0 });

        for_n(e, 1, n, |e, k| {
            // r[k][k] = ||A[:,k]||
            let mut nrm = 0.0f32;
            for_n(e, t.unroll_factor(), m, |e, i| {
                let v = a.at(e, i, k);
                nrm += v * v;
                e.compute(3);
            });
            let rkk = nrm.sqrt().max(1e-6);
            e.compute(2);
            r.set(e, k, k, rkk);
            // Q[:,k] = A[:,k] / r[k][k]
            for_n(e, t.unroll_factor(), m, |e, i| {
                let v = a.at(e, i, k) / rkk;
                e.compute(2);
                q.set(e, i, k, v);
            });
            // Project the remaining columns.
            for_n(e, 1, n - k - 1, |e, dj| {
                let j = k + 1 + dj;
                let mut rkj = 0.0f32;
                for_n(e, t.unroll_factor(), m, |e, i| {
                    rkj += q.at(e, i, k) * a.at(e, i, j);
                    e.compute(3);
                });
                r.set(e, k, j, rkj);
                for_n(e, t.unroll_factor(), m, |e, i| {
                    let v = a.at(e, i, j) - q.at(e, i, k) * rkj;
                    e.compute(3);
                    a.set(e, i, j, v);
                });
            });
        });
        checksum(q.raw()) + checksum(r.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;
    use crate::space::DataSpace;

    fn small() -> Gramschmidt {
        Gramschmidt::new(12, 8)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn prefetch_is_deliberately_withheld() {
        // Every loop walks columns with multiple live streams; hinting any
        // of them evicts another from the small VWB, so the manual
        // transformation leaves this kernel alone.
        use crate::space::test_support::Recorder;
        let mut rec = Recorder::default();
        small().execute(&mut rec, Transformations::only_prefetch());
        assert!(rec.prefetches.is_empty());
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn q_columns_are_orthonormal() {
        // Re-run the factorization on raw data and check QᵀQ ≈ I.
        let (m, n) = (10, 6);
        let mut space = DataSpace::new(true);
        let mut a = space.array2(m, n);
        a.fill(|i, j| seed_value(i + 157, j) + if i == j { 3.0 } else { 0.0 });
        let mut q = vec![vec![0.0f32; n]; m];
        let mut work: Vec<Vec<f32>> = (0..m)
            .map(|i| (0..n).map(|j| a.raw_at(i, j)).collect())
            .collect();
        for k in 0..n {
            let nrm: f32 = (0..m).map(|i| work[i][k] * work[i][k]).sum();
            let rkk = nrm.sqrt().max(1e-6);
            for i in 0..m {
                q[i][k] = work[i][k] / rkk;
            }
            for j in k + 1..n {
                let rkj: f32 = (0..m).map(|i| q[i][k] * work[i][j]).sum();
                for (i, row) in work.iter_mut().enumerate() {
                    row[j] -= q[i][k] * rkj;
                }
            }
        }
        for k1 in 0..n {
            for k2 in 0..n {
                let dot: f32 = (0..m).map(|i| q[i][k1] * q[i][k2]).sum();
                let expect = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-3, "({k1},{k2}): {dot}");
            }
        }
        // And the instrumented kernel produces a finite checksum.
        let got = Gramschmidt::new(m, n).execute(&mut Recorder::default(), Transformations::none());
        assert!(got.is_finite());
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn wide_matrix_panics() {
        let _ = Gramschmidt::new(4, 8);
    }
}

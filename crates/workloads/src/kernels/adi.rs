//! `adi`: alternating-direction-implicit integration.

use super::{checksum, for_n, pf2, seed_value, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// ADI integration (`u, v, p, q: N×N`, `tsteps` iterations). Each step
/// runs a column sweep (tridiagonal forward/backward along `i`) and a row
/// sweep (along `j`) — the classic alternating stride pattern: one of the
/// two sweeps is always anti-locality, whichever line size is chosen.
/// Inherently sequential along the sweep direction (recurrences), so the
/// `vectorize` toggle is a no-op, like `seidel-2d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adi {
    n: usize,
    tsteps: usize,
}

impl Adi {
    /// Creates the kernel (`n × n` grid, `tsteps` steps).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `tsteps` is zero.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3, "adi needs at least a 3x3 grid");
        assert!(tsteps > 0, "adi needs at least one step");
        Adi { n, tsteps }
    }
}

impl Kernel for Adi {
    fn name(&self) -> &'static str {
        "adi"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let n = self.n;
        let mut space = DataSpace::new(t.others);
        let mut u = space.array2(n, n);
        let mut v = space.array2(n, n);
        let mut p = space.array2(n, n);
        let mut q = space.array2(n, n);
        u.fill(|i, j| seed_value(i + 211, j) * 0.5 + 0.5);

        // PolyBench's precomputed tridiagonal coefficients.
        let (a, b, c, d, f) = (-0.1f32, 1.2f32, -0.1f32, -0.05f32, 1.1f32);

        for_n(e, 1, self.tsteps, |e, _| {
            // Column sweep: for each column j, forward recurrence over i
            // into p/q, then backward substitution into v.
            for_n(e, 1, n - 2, |e, jt| {
                let j = jt + 1;
                p.set(e, 0, j, 0.0);
                q.set(e, 0, j, 1.0);
                for_n(e, t.unroll_factor(), n - 2, |e, it| {
                    let i = it + 1;
                    if t.prefetch && it % super::LINE_ELEMS == 0 && i + super::LINE_ELEMS < n {
                        e.prefetch(u.addr(j, i + super::LINE_ELEMS)); // u row walk
                    }
                    let denom = b - a * p.at(e, i - 1, j);
                    let pv = c / denom;
                    e.compute(3);
                    p.set(e, i, j, pv);
                    let rhs = -d * u.at(e, j, i - 1) + (1.0 + 2.0 * d) * u.at(e, j, i)
                        - f * u.at(e, j, i + 1);
                    let qv = (rhs - a * q.at(e, i - 1, j)) / denom;
                    e.compute(7);
                    q.set(e, i, j, qv);
                });
                v.set(e, n - 1, j, 1.0);
                for_n(e, t.unroll_factor(), n - 2, |e, rt| {
                    let i = n - 2 - rt;
                    let vv = p.at(e, i, j) * v.at(e, i + 1, j) + q.at(e, i, j);
                    e.compute(3);
                    v.set(e, i, j, vv);
                });
            });
            // Row sweep: symmetric, along j, updating u.
            for_n(e, 1, n - 2, |e, it| {
                let i = it + 1;
                p.set(e, i, 0, 0.0);
                q.set(e, i, 0, 1.0);
                for_n(e, t.unroll_factor(), n - 2, |e, jt| {
                    let j = jt + 1;
                    pf2(e, t, &v, i, j);
                    let denom = b - a * p.at(e, i, j - 1);
                    let pv = c / denom;
                    e.compute(3);
                    p.set(e, i, j, pv);
                    let rhs = -d * v.at(e, j - 1, i) + (1.0 + 2.0 * d) * v.at(e, j, i)
                        - f * v.at(e, j + 1, i);
                    let qv = (rhs - a * q.at(e, i, j - 1)) / denom;
                    e.compute(7);
                    q.set(e, i, j, qv);
                });
                u.set(e, i, n - 1, 1.0);
                for_n(e, t.unroll_factor(), n - 2, |e, rt| {
                    let j = n - 2 - rt;
                    let uv = p.at(e, i, j) * u.at(e, i, j + 1) + q.at(e, i, j);
                    e.compute(3);
                    u.set(e, i, j, uv);
                });
            });
        });
        checksum(u.raw())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::assign_op_pattern)] // reference loops mirror the PolyBench C code
mod tests {
    use super::super::kernel_tests::*;
    use super::*;
    use crate::space::test_support::Recorder;

    fn small() -> Adi {
        Adi::new(10, 2)
    }

    #[test]
    fn conformance() {
        assert_kernel_conformance(&small());
    }

    #[test]
    fn vectorize_toggle_is_a_no_op() {
        let mut a = Recorder::default();
        small().execute(&mut a, Transformations::none());
        let mut b = Recorder::default();
        small().execute(&mut b, Transformations::only_vectorize());
        assert_eq!(a.loads.len(), b.loads.len());
    }

    #[test]
    fn prefetch_emits_hints() {
        assert_prefetch_emits_hints(&Adi::new(40, 1));
    }

    #[test]
    fn unrolling_reduces_branches() {
        assert_unrolling_reduces_branches(&small());
    }

    #[test]
    fn result_stays_bounded() {
        // The implicit scheme is stable: values remain finite and bounded
        // after several steps.
        let got = Adi::new(8, 4).execute(&mut Recorder::default(), Transformations::none());
        assert!(got.is_finite());
        assert!(got.abs() < 1e4);
    }
}

//! The PolyBench kernel subset.
//!
//! Each kernel follows its PolyBench/C reference loop nest. The scalar
//! variant keeps the reference loop order; the vectorized variant applies
//! the loop-interchange + 4-wide SIMD rewrite the paper's manual
//! vectorization performs; prefetch hints and unrolling/alignment follow
//! the [`Transformations`] toggles.

mod adi;
mod atax;
mod bicg;
mod cholesky;
mod correlation;
mod covariance;
mod doitgen;
mod durbin;
mod fdtd_2d;
mod floyd_warshall;
mod gemm;
mod gemver;
mod gesummv;
mod gramschmidt;
mod heat_3d;
mod jacobi_1d;
mod jacobi_2d;
mod lu;
mod ludcmp;
mod mvt;
mod seidel_2d;
mod symm;
mod syr2k;
mod syrk;
mod three_mm;
mod trisolv;
mod trmm;
mod two_mm;

pub use adi::Adi;
pub use atax::Atax;
pub use bicg::Bicg;
pub use cholesky::Cholesky;
pub use correlation::Correlation;
pub use covariance::Covariance;
pub use doitgen::Doitgen;
pub use durbin::Durbin;
pub use fdtd_2d::Fdtd2d;
pub use floyd_warshall::FloydWarshall;
pub use gemm::Gemm;
pub use gemver::Gemver;
pub use gesummv::Gesummv;
pub use gramschmidt::Gramschmidt;
pub use heat_3d::Heat3d;
pub use jacobi_1d::Jacobi1d;
pub use jacobi_2d::Jacobi2d;
pub use lu::Lu;
pub use ludcmp::Ludcmp;
pub use mvt::Mvt;
pub use seidel_2d::Seidel2d;
pub use symm::Symm;
pub use syr2k::Syr2k;
pub use syrk::Syrk;
pub use three_mm::ThreeMm;
pub use trisolv::Trisolv;
pub use trmm::Trmm;
pub use two_mm::TwoMm;

use crate::space::{Array1, Array2};
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// `f32` elements per 64-byte cache line.
pub(crate) const LINE_ELEMS: usize = 16;
/// Issue cost of one 4-wide vector arithmetic group in cycles. The A9's
/// NEON pipe is not free: permutes, lane extracts and the 2-cycle FMA
/// cadence bound the realized SIMD speed-up to the ~1.5-2x a compiler
/// gets on these kernels, rather than the ideal 4x.
pub(crate) const VOP: u64 = 10;
/// Elements per vector operation.
pub(crate) const VEC: usize = crate::space::VEC;

/// Drives an instrumented counted loop: the body runs for every index and
/// loop-control overhead (induction update + back-edge branch) is emitted
/// once per `unroll` iterations — the paper's unrolling intrinsic.
pub(crate) fn for_n(
    e: &mut dyn Engine,
    unroll: u64,
    n: usize,
    mut body: impl FnMut(&mut dyn Engine, usize),
) {
    let unroll = unroll.max(1) as usize;
    let mut i = 0;
    while i < n {
        let end = (i + unroll).min(n);
        for j in i..end {
            body(e, j);
        }
        e.compute(1);
        e.branch(end < n);
        i = end;
    }
}

/// Sequential-walk prefetch hint for a 1-D array: when element `i` starts a
/// new cache line, hint the line one ahead.
pub(crate) fn pf1(e: &mut dyn Engine, t: Transformations, a: &Array1, i: usize) {
    if t.prefetch && i.is_multiple_of(LINE_ELEMS) {
        let next = i + LINE_ELEMS;
        if next < a.len() {
            e.prefetch(a.addr(next));
        }
    }
}

/// Row-major-walk prefetch hint for a 2-D array: when element `(i, j)`
/// starts a new line, hint one line ahead within the row (or the start of
/// the next row at the row's end).
pub(crate) fn pf2(e: &mut dyn Engine, t: Transformations, a: &Array2, i: usize, j: usize) {
    if !t.prefetch || !j.is_multiple_of(LINE_ELEMS) {
        return;
    }
    let next = j + LINE_ELEMS;
    if next < a.cols() {
        e.prefetch(a.addr(i, next));
    } else if i + 1 < a.rows() {
        e.prefetch(a.addr(i + 1, 0));
    }
}

/// Scalar matrix-multiply-accumulate: `out = alpha·a·b + beta·out`, in
/// PolyBench's `i, j, k` reference order (the `b[k][j]` column walk is the
/// access pattern small line buffers struggle with).
pub(crate) fn matmul_scalar(
    e: &mut dyn Engine,
    t: Transformations,
    out: &mut Array2,
    a: &Array2,
    b: &Array2,
    alpha: f32,
    beta: f32,
) {
    let (ni, nj, nk) = (out.rows(), out.cols(), a.cols());
    debug_assert_eq!(a.rows(), ni);
    debug_assert_eq!(b.rows(), nk);
    debug_assert_eq!(b.cols(), nj);
    for_n(e, 1, ni, |e, i| {
        for_n(e, 1, nj, |e, j| {
            let mut acc = out.at(e, i, j) * beta;
            e.compute(1);
            for_n(e, t.unroll_factor(), nk, |e, k| {
                pf2(e, t, a, i, k);
                if t.prefetch && k + 2 < nk {
                    // Hint the B column walk two rows down: far enough to
                    // hide the promotion, close enough to survive in the
                    // four-entry VWB.
                    e.prefetch(b.addr(k + 2, j));
                }
                let av = a.at(e, i, k);
                let bv = b.at(e, k, j);
                acc += alpha * av * bv;
                e.compute(3);
            });
            out.set(e, i, j, acc);
        });
    });
}

/// Vectorized matrix-multiply-accumulate: `j` blocked by four with register
/// accumulators, turning the `B` traffic into sequential wide loads.
pub(crate) fn matmul_vectorized(
    e: &mut dyn Engine,
    t: Transformations,
    out: &mut Array2,
    a: &Array2,
    b: &Array2,
    alpha: f32,
    beta: f32,
) {
    let (ni, nj, nk) = (out.rows(), out.cols(), a.cols());
    let vec_end = nj - nj % VEC;
    for_n(e, 1, ni, |e, i| {
        let mut j = 0;
        while j < vec_end {
            let mut acc = [0.0f32; VEC];
            for_n(e, t.unroll_factor(), nk, |e, k| {
                pf2(e, t, a, i, k);
                pf2(e, t, b, k, j);
                let av = a.at(e, i, k);
                let bv = b.at_vec(e, k, j);
                for (l, &x) in bv.iter().enumerate() {
                    acc[l] += alpha * av * x;
                }
                e.compute(VOP);
            });
            let cv = out.at_vec(e, i, j);
            let mut res = [0.0f32; VEC];
            for l in 0..VEC {
                res[l] = acc[l] + beta * cv[l];
            }
            e.compute(VOP);
            out.set_vec(e, i, j, res);
            e.compute(1);
            e.branch(j + VEC < vec_end);
            j += VEC;
        }
        for_n(e, 1, nj - vec_end, |e, jt| {
            let j = vec_end + jt;
            let mut acc = out.at(e, i, j) * beta;
            e.compute(1);
            for_n(e, t.unroll_factor(), nk, |e, k| {
                let av = a.at(e, i, k);
                let bv = b.at(e, k, j);
                acc += alpha * av * bv;
                e.compute(3);
            });
            out.set(e, i, j, acc);
        });
    });
}

/// Instrumented dot product of matrix row `i` with vector `x`:
/// `Σ_j a[i][j]·x[j]`, vectorized when the transformations ask for it.
pub(crate) fn dot_row(
    e: &mut dyn Engine,
    t: Transformations,
    a: &Array2,
    i: usize,
    x: &Array1,
) -> f32 {
    let n = a.cols().min(x.len());
    let mut acc = 0.0f32;
    if t.vectorize {
        let vec_end = n - n % VEC;
        let mut j = 0;
        while j < vec_end {
            pf2(e, t, a, i, j);
            pf1(e, t, x, j);
            let av = a.at_vec(e, i, j);
            let xv = x.at_vec(e, j);
            for l in 0..VEC {
                acc += av[l] * xv[l];
            }
            e.compute(VOP);
            e.compute(1);
            e.branch(j + VEC < vec_end);
            j += VEC;
        }
        for_n(e, 1, n - vec_end, |e, jt| {
            let j = vec_end + jt;
            acc += a.at(e, i, j) * x.at(e, j);
            e.compute(3);
        });
    } else {
        for_n(e, t.unroll_factor(), n, |e, j| {
            pf2(e, t, a, i, j);
            pf1(e, t, x, j);
            acc += a.at(e, i, j) * x.at(e, j);
            e.compute(3);
        });
    }
    acc
}

/// Instrumented row update `y[j] += scale·a[i][j]` for all `j`, vectorized
/// when asked.
pub(crate) fn axpy_row(
    e: &mut dyn Engine,
    t: Transformations,
    y: &mut Array1,
    a: &Array2,
    i: usize,
    scale: f32,
) {
    let n = a.cols().min(y.len());
    if t.vectorize {
        let vec_end = n - n % VEC;
        let mut j = 0;
        while j < vec_end {
            pf2(e, t, a, i, j);
            let av = a.at_vec(e, i, j);
            let yv = y.at_vec(e, j);
            let mut out = [0.0f32; VEC];
            for l in 0..VEC {
                out[l] = yv[l] + scale * av[l];
            }
            e.compute(VOP);
            y.set_vec(e, j, out);
            e.compute(1);
            e.branch(j + VEC < vec_end);
            j += VEC;
        }
        for_n(e, 1, n - vec_end, |e, jt| {
            let j = vec_end + jt;
            let v = y.at(e, j) + scale * a.at(e, i, j);
            e.compute(3);
            y.set(e, j, v);
        });
    } else {
        for_n(e, t.unroll_factor(), n, |e, j| {
            pf2(e, t, a, i, j);
            let v = y.at(e, j) + scale * a.at(e, i, j);
            e.compute(3);
            y.set(e, j, v);
        });
    }
}

/// Instrumented prefix dot product `Σ_{j<prefix} a[i][j]·x[j]` (the
/// forward-substitution pattern), vectorized when asked.
pub(crate) fn dot_row_prefix(
    e: &mut dyn Engine,
    t: Transformations,
    a: &Array2,
    i: usize,
    x: &Array1,
    prefix: usize,
) -> f32 {
    let n = prefix.min(a.cols()).min(x.len());
    let mut acc = 0.0f32;
    if t.vectorize {
        let vec_end = n - n % VEC;
        let mut j = 0;
        while j < vec_end {
            pf2(e, t, a, i, j);
            let av = a.at_vec(e, i, j);
            let xv = x.at_vec(e, j);
            for l in 0..VEC {
                acc += av[l] * xv[l];
            }
            e.compute(VOP);
            e.compute(1);
            e.branch(j + VEC < vec_end);
            j += VEC;
        }
        for_n(e, 1, n - vec_end, |e, jt| {
            let j = vec_end + jt;
            acc += a.at(e, i, j) * x.at(e, j);
            e.compute(3);
        });
    } else {
        for_n(e, t.unroll_factor(), n, |e, j| {
            pf2(e, t, a, i, j);
            acc += a.at(e, i, j) * x.at(e, j);
            e.compute(3);
        });
    }
    acc
}

/// Instrumented dot product of row `i` of `a` with row `j` of `b`:
/// `Σ_k a[i][k]·b[j][k]`, vectorized when asked. Both walks are unit
/// stride (the `syrk`/`syr2k` pattern).
pub(crate) fn dot_rows(
    e: &mut dyn Engine,
    t: Transformations,
    a: &Array2,
    i: usize,
    b: &Array2,
    j: usize,
) -> f32 {
    let n = a.cols().min(b.cols());
    let mut acc = 0.0f32;
    if t.vectorize {
        let vec_end = n - n % VEC;
        let mut k = 0;
        while k < vec_end {
            pf2(e, t, a, i, k);
            pf2(e, t, b, j, k);
            let av = a.at_vec(e, i, k);
            let bv = b.at_vec(e, j, k);
            for l in 0..VEC {
                acc += av[l] * bv[l];
            }
            e.compute(VOP);
            e.compute(1);
            e.branch(k + VEC < vec_end);
            k += VEC;
        }
        for_n(e, 1, n - vec_end, |e, kt| {
            let k = vec_end + kt;
            acc += a.at(e, i, k) * b.at(e, j, k);
            e.compute(3);
        });
    } else {
        for_n(e, t.unroll_factor(), n, |e, k| {
            pf2(e, t, a, i, k);
            pf2(e, t, b, j, k);
            acc += a.at(e, i, k) * b.at(e, j, k);
            e.compute(3);
        });
    }
    acc
}

/// Instrumented prefix dot product of two matrix rows:
/// `Σ_{k<prefix} a[i][k]·b[j][k]` (the factorization-update pattern),
/// vectorized when asked.
pub(crate) fn dot_row_prefix_rows(
    e: &mut dyn Engine,
    t: Transformations,
    a: &Array2,
    i: usize,
    b: &Array2,
    j: usize,
    prefix: usize,
) -> f32 {
    let n = prefix.min(a.cols()).min(b.cols());
    let mut acc = 0.0f32;
    if t.vectorize {
        let vec_end = n - n % VEC;
        let mut k = 0;
        while k < vec_end {
            pf2(e, t, a, i, k);
            let av = a.at_vec(e, i, k);
            let bv = b.at_vec(e, j, k);
            for l in 0..VEC {
                acc += av[l] * bv[l];
            }
            e.compute(VOP);
            e.compute(1);
            e.branch(k + VEC < vec_end);
            k += VEC;
        }
        for_n(e, 1, n - vec_end, |e, kt| {
            let k = vec_end + kt;
            acc += a.at(e, i, k) * b.at(e, j, k);
            e.compute(3);
        });
    } else {
        for_n(e, t.unroll_factor(), n, |e, k| {
            pf2(e, t, a, i, k);
            acc += a.at(e, i, k) * b.at(e, j, k);
            e.compute(3);
        });
    }
    acc
}

/// Instrumented hybrid prefix dot product `Σ_{k<prefix} a[i][k]·a[k][j]`
/// (row of `a` against *column* `j` of `a` — the LU update). The column
/// operand is non-unit stride, so only the row operand's walk benefits
/// from wide loads; the scalar form is kept even under vectorization and
/// prefetch hints target the column walk.
pub(crate) fn dot_row_prefix_rows_col(
    e: &mut dyn Engine,
    t: Transformations,
    a: &Array2,
    i: usize,
    j: usize,
    prefix: usize,
) -> f32 {
    let n = prefix.min(a.cols()).min(a.rows());
    let mut acc = 0.0f32;
    for_n(e, t.unroll_factor(), n, |e, k| {
        // Only the row stream is hinted: a second hint for the column walk
        // would evict the row lines from the small VWB (the paper prefetches
        // selectively, by hand).
        pf2(e, t, a, i, k);
        acc += a.at(e, i, k) * a.at(e, k, j);
        e.compute(3);
    });
    acc
}

/// Instrumented dot product of matrix *column* `j` with vector `x`:
/// `Σ_i a[i][j]·x[i]` — the stride-N walk that thrashes small line
/// buffers. Never vectorized (non-unit stride); prefetch hints reach a few
/// rows ahead.
pub(crate) fn dot_col(
    e: &mut dyn Engine,
    t: Transformations,
    a: &Array2,
    j: usize,
    x: &Array1,
) -> f32 {
    let n = a.rows().min(x.len());
    let mut acc = 0.0f32;
    for_n(e, t.unroll_factor(), n, |e, i| {
        if t.prefetch && i + 2 < n {
            e.prefetch(a.addr(i + 2, j));
        }
        pf1(e, t, x, i);
        acc += a.at(e, i, j) * x.at(e, i);
        e.compute(3);
    });
    acc
}

/// Dispatches to the scalar or vectorized matmul per the transformations.
pub(crate) fn matmul(
    e: &mut dyn Engine,
    t: Transformations,
    out: &mut Array2,
    a: &Array2,
    b: &Array2,
    alpha: f32,
    beta: f32,
) {
    if t.vectorize {
        matmul_vectorized(e, t, out, a, b, alpha, beta);
    } else {
        matmul_scalar(e, t, out, a, b, alpha, beta);
    }
}

/// A runnable PolyBench kernel.
///
/// [`Kernel::execute`] performs the real computation while emitting every
/// memory event into `e`, and returns a checksum over the kernel's output
/// data so tests can verify that the transformed variants compute the same
/// result as the reference loop nest.
pub trait Kernel {
    /// The PolyBench kernel name (e.g. `"gemm"`).
    fn name(&self) -> &'static str;

    /// Runs the kernel, returning an output checksum.
    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64;

    /// Runs the kernel, discarding the checksum.
    fn run(&self, e: &mut dyn Engine, t: Transformations) {
        let _ = self.execute(e, t);
    }
}

/// Deterministic pseudo-random initializer in `[-1, 1)` (PolyBench-style
/// data without an RNG dependency). Murmur-style finalizer so both index
/// arguments mix thoroughly.
pub(crate) fn seed_value(i: usize, j: usize) -> f32 {
    let mut x = (i as u32)
        .wrapping_mul(2654435761)
        .wrapping_add((j as u32).wrapping_mul(2246822519))
        .wrapping_add(374761393);
    x ^= x >> 16;
    x = x.wrapping_mul(2246822507);
    x ^= x >> 13;
    x = x.wrapping_mul(3266489909);
    x ^= x >> 16;
    (x & 0xffff) as f32 / 32768.0 - 1.0
}

/// Checksum helper: sums a slice into an order-stable `f64`.
pub(crate) fn checksum(data: &[f32]) -> f64 {
    data.iter().map(|&v| v as f64).sum()
}

#[cfg(test)]
pub(crate) mod kernel_tests {
    //! Shared conformance checks every kernel's test module runs.

    use super::Kernel;
    use crate::space::test_support::Recorder;
    use crate::transform::Transformations;

    // The core contract lives in the public conformance module so the
    // cross-crate workload-catalog battery enforces the identical bar.
    pub use crate::conformance::assert_kernel_conformance;

    /// Vectorization must reduce the number of load events (wide loads
    /// replace groups of narrow ones).
    pub fn assert_vectorization_reduces_loads(k: &dyn Kernel) {
        let mut scalar = Recorder::default();
        k.execute(&mut scalar, Transformations::none());
        let mut vector = Recorder::default();
        k.execute(
            &mut vector,
            Transformations {
                vectorize: true,
                others: true,
                ..Default::default()
            },
        );
        assert!(
            vector.loads.len() < scalar.loads.len(),
            "{}: vectorized {} loads !< scalar {} loads",
            k.name(),
            vector.loads.len(),
            scalar.loads.len()
        );
    }

    /// Prefetching must emit hints.
    pub fn assert_prefetch_emits_hints(k: &dyn Kernel) {
        let mut rec = Recorder::default();
        k.execute(&mut rec, Transformations::only_prefetch());
        assert!(
            !rec.prefetches.is_empty(),
            "{}: no prefetch hints",
            k.name()
        );
        let mut none = Recorder::default();
        k.execute(&mut none, Transformations::none());
        assert!(
            none.prefetches.is_empty(),
            "{}: hints without the toggle",
            k.name()
        );
    }

    /// Unrolling ("others") must reduce branch events.
    pub fn assert_unrolling_reduces_branches(k: &dyn Kernel) {
        let mut scalar = Recorder::default();
        k.execute(&mut scalar, Transformations::none());
        let mut unrolled = Recorder::default();
        k.execute(&mut unrolled, Transformations::only_others());
        assert!(
            unrolled.branches.len() < scalar.branches.len(),
            "{}: unrolled {} branches !< scalar {}",
            k.name(),
            unrolled.branches.len(),
            scalar.branches.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::test_support::Recorder;
    use crate::space::DataSpace;

    #[test]
    fn for_n_visits_every_index_once() {
        let mut seen = Vec::new();
        let mut e = Recorder::default();
        for_n(&mut e, 4, 10, |_, i| seen.push(i));
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        // ceil(10 / 4) = 3 control points, last branch not taken.
        assert_eq!(e.branches, vec![true, true, false]);
    }

    #[test]
    fn for_n_without_unroll_branches_per_iteration() {
        let mut e = Recorder::default();
        for_n(&mut e, 1, 5, |_, _| {});
        assert_eq!(e.branches.len(), 5);
        assert_eq!(e.compute_ops, 5);
    }

    #[test]
    fn for_n_handles_empty_range() {
        let mut e = Recorder::default();
        for_n(&mut e, 4, 0, |_, _| panic!("body must not run"));
        assert!(e.branches.is_empty());
    }

    #[test]
    fn pf1_hints_one_line_ahead() {
        let mut space = DataSpace::new(true);
        let a = space.array1(64);
        let mut e = Recorder::default();
        let t = Transformations::only_prefetch();
        pf1(&mut e, t, &a, 0);
        pf1(&mut e, t, &a, 1); // mid-line: no hint
        pf1(&mut e, t, &a, 16);
        assert_eq!(e.prefetches, vec![a.addr(16), a.addr(32)]);
        // Near the end: no out-of-bounds hint.
        pf1(&mut e, t, &a, 48);
        assert_eq!(e.prefetches.len(), 2);
    }

    #[test]
    fn pf2_wraps_to_next_row() {
        let mut space = DataSpace::new(true);
        let a = space.array2(4, 16);
        let mut e = Recorder::default();
        let t = Transformations::only_prefetch();
        pf2(&mut e, t, &a, 0, 0);
        assert_eq!(e.prefetches, vec![a.addr(1, 0)]);
    }

    #[test]
    fn seed_value_is_deterministic_and_bounded() {
        assert_eq!(seed_value(3, 7), seed_value(3, 7));
        for i in 0..50 {
            for j in 0..50 {
                let v = seed_value(i, j);
                assert!((-1.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn checksum_sums() {
        assert_eq!(checksum(&[1.0, 2.0, 3.5]), 6.5);
    }
}

//! Instrumented data arrays.
//!
//! Kernels compute on real `f32` data held in these arrays; every element
//! access additionally emits the corresponding load/store (with its exact
//! simulated byte address) into the [`Engine`], which is how the timing
//! simulator sees the kernel's memory-access stream.
//!
//! A [`DataSpace`] lays the arrays out in a simulated physical address
//! space. With `aligned = true` (the paper's "others" alignment intrinsics)
//! every array starts on a cache-line boundary; otherwise arrays start at a
//! deliberately skewed offset, so 16-byte vector accesses periodically
//! straddle a line boundary and split into two loads — the cost the
//! alignment transformation removes.

use sttcache_cpu::Engine;
use sttcache_mem::Addr;

/// Element size of the `f32` arrays in bytes.
pub(crate) const ELEM: usize = 4;
/// Vector width in elements (16-byte NEON-class vectors).
pub(crate) const VEC: usize = 4;
/// Boundary used for the vector-split check (the narrower SRAM line).
const SPLIT_BOUNDARY: u64 = 32;
/// Skew applied to array bases when unaligned.
const MISALIGN_SKEW: u64 = 20;

fn emit_vec_load(e: &mut dyn Engine, addr: Addr, aligned: bool) {
    let bytes = (VEC * ELEM) as u64;
    if !aligned && (addr.0 % SPLIT_BOUNDARY) + bytes > SPLIT_BOUNDARY {
        // The vector access straddles a line boundary: two bus accesses.
        let first = SPLIT_BOUNDARY - (addr.0 % SPLIT_BOUNDARY);
        e.load(addr, first as usize);
        e.load(Addr(addr.0 + first), (bytes - first) as usize);
    } else {
        e.load(addr, bytes as usize);
    }
}

fn emit_vec_store(e: &mut dyn Engine, addr: Addr, aligned: bool) {
    let bytes = (VEC * ELEM) as u64;
    if !aligned && (addr.0 % SPLIT_BOUNDARY) + bytes > SPLIT_BOUNDARY {
        let first = SPLIT_BOUNDARY - (addr.0 % SPLIT_BOUNDARY);
        e.store(addr, first as usize);
        e.store(Addr(addr.0 + first), (bytes - first) as usize);
    } else {
        e.store(addr, bytes as usize);
    }
}

/// Allocates instrumented arrays in a simulated address space.
///
/// # Example
///
/// ```
/// use sttcache_workloads::DataSpace;
///
/// let mut space = DataSpace::new(true);
/// let a = space.array1(100);
/// let b = space.array2(10, 10);
/// assert_ne!(a.addr(0), b.addr(0, 0));
/// assert_eq!(a.addr(0).0 % 64, 0); // aligned allocation
/// ```
#[derive(Debug, Clone)]
pub struct DataSpace {
    next: u64,
    aligned: bool,
}

impl DataSpace {
    /// Creates a space; `aligned` controls whether arrays start on line
    /// boundaries (the "others" transformation) or at a skewed offset.
    pub fn new(aligned: bool) -> Self {
        DataSpace {
            next: 0x1000_0000,
            aligned,
        }
    }

    /// Whether allocations are line-aligned.
    pub fn is_aligned(&self) -> bool {
        self.aligned
    }

    fn alloc(&mut self, bytes: usize) -> u64 {
        // Round up to a line, then apply the skew if unaligned.
        self.next = (self.next + 63) & !63;
        let base = if self.aligned {
            self.next
        } else {
            self.next + MISALIGN_SKEW
        };
        self.next += (bytes as u64 + MISALIGN_SKEW + 63) & !63;
        base
    }

    /// Allocates a 1-D array of `len` `f32` elements, zero-initialized.
    pub fn array1(&mut self, len: usize) -> Array1 {
        Array1 {
            base: self.alloc(len * ELEM),
            aligned: self.aligned,
            data: vec![0.0; len],
        }
    }

    /// Allocates a row-major 2-D array of `rows × cols` `f32` elements.
    pub fn array2(&mut self, rows: usize, cols: usize) -> Array2 {
        Array2 {
            base: self.alloc(rows * cols * ELEM),
            aligned: self.aligned,
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Allocates a 3-D array of `d0 × d1 × d2` `f32` elements.
    pub fn array3(&mut self, d0: usize, d1: usize, d2: usize) -> Array3 {
        Array3 {
            base: self.alloc(d0 * d1 * d2 * ELEM),
            aligned: self.aligned,
            d0,
            d1,
            d2,
            data: vec![0.0; d0 * d1 * d2],
        }
    }
}

impl Default for DataSpace {
    fn default() -> Self {
        DataSpace::new(true)
    }
}

/// A 1-D instrumented `f32` array.
#[derive(Debug, Clone)]
pub struct Array1 {
    base: u64,
    aligned: bool,
    data: Vec<f32>,
}

impl Array1 {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated byte address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        Addr(self.base + (i * ELEM) as u64)
    }

    /// Instrumented load of element `i`.
    pub fn at(&self, e: &mut dyn Engine, i: usize) -> f32 {
        e.load(self.addr(i), ELEM);
        self.data[i]
    }

    /// Instrumented store of element `i`.
    pub fn set(&mut self, e: &mut dyn Engine, i: usize, v: f32) {
        e.store(self.addr(i), ELEM);
        self.data[i] = v;
    }

    /// Instrumented 4-wide vector load starting at `i`.
    pub fn at_vec(&self, e: &mut dyn Engine, i: usize) -> [f32; VEC] {
        emit_vec_load(e, self.addr(i), self.aligned);
        [
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ]
    }

    /// Instrumented 4-wide vector store starting at `i`.
    pub fn set_vec(&mut self, e: &mut dyn Engine, i: usize, v: [f32; VEC]) {
        emit_vec_store(e, self.addr(i), self.aligned);
        self.data[i..i + VEC].copy_from_slice(&v);
    }

    /// Uninstrumented view (initialization and result checking only).
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Uninstrumented mutable view (initialization only).
    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Initializes every element from an index function (uninstrumented).
    pub fn fill(&mut self, f: impl Fn(usize) -> f32) {
        for (i, v) in self.data.iter_mut().enumerate() {
            *v = f(i);
        }
    }
}

/// A row-major 2-D instrumented `f32` array.
#[derive(Debug, Clone)]
pub struct Array2 {
    base: u64,
    aligned: bool,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Array2 {
    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        i * self.cols + j
    }

    /// Simulated byte address of element `(i, j)`.
    pub fn addr(&self, i: usize, j: usize) -> Addr {
        Addr(self.base + (self.idx(i, j) * ELEM) as u64)
    }

    /// Instrumented load of `(i, j)`.
    pub fn at(&self, e: &mut dyn Engine, i: usize, j: usize) -> f32 {
        e.load(self.addr(i, j), ELEM);
        self.data[self.idx(i, j)]
    }

    /// Instrumented store of `(i, j)`.
    pub fn set(&mut self, e: &mut dyn Engine, i: usize, j: usize, v: f32) {
        e.store(self.addr(i, j), ELEM);
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Instrumented 4-wide vector load of `(i, j..j+4)`.
    pub fn at_vec(&self, e: &mut dyn Engine, i: usize, j: usize) -> [f32; VEC] {
        emit_vec_load(e, self.addr(i, j), self.aligned);
        let k = self.idx(i, j);
        [
            self.data[k],
            self.data[k + 1],
            self.data[k + 2],
            self.data[k + 3],
        ]
    }

    /// Instrumented 4-wide vector store of `(i, j..j+4)`.
    pub fn set_vec(&mut self, e: &mut dyn Engine, i: usize, j: usize, v: [f32; VEC]) {
        emit_vec_store(e, self.addr(i, j), self.aligned);
        let k = self.idx(i, j);
        self.data[k..k + VEC].copy_from_slice(&v);
    }

    /// Uninstrumented view.
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Uninstrumented element read (result checking only).
    pub fn raw_at(&self, i: usize, j: usize) -> f32 {
        self.data[self.idx(i, j)]
    }

    /// Initializes every element from an index function (uninstrumented).
    pub fn fill(&mut self, f: impl Fn(usize, usize) -> f32) {
        for i in 0..self.rows {
            for j in 0..self.cols {
                let k = i * self.cols + j;
                self.data[k] = f(i, j);
            }
        }
    }
}

/// A 3-D instrumented `f32` array (for `doitgen`).
#[derive(Debug, Clone)]
pub struct Array3 {
    base: u64,
    aligned: bool,
    d0: usize,
    d1: usize,
    d2: usize,
    data: Vec<f32>,
}

impl Array3 {
    /// Dimensions `(d0, d1, d2)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.d0, self.d1, self.d2)
    }

    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.d0 && j < self.d1 && k < self.d2);
        (i * self.d1 + j) * self.d2 + k
    }

    /// Simulated byte address of `(i, j, k)`.
    pub fn addr(&self, i: usize, j: usize, k: usize) -> Addr {
        Addr(self.base + (self.idx(i, j, k) * ELEM) as u64)
    }

    /// Instrumented load of `(i, j, k)`.
    pub fn at(&self, e: &mut dyn Engine, i: usize, j: usize, k: usize) -> f32 {
        e.load(self.addr(i, j, k), ELEM);
        self.data[self.idx(i, j, k)]
    }

    /// Instrumented store of `(i, j, k)`.
    pub fn set(&mut self, e: &mut dyn Engine, i: usize, j: usize, k: usize, v: f32) {
        e.store(self.addr(i, j, k), ELEM);
        let n = self.idx(i, j, k);
        self.data[n] = v;
    }

    /// Instrumented 4-wide vector load along the last dimension.
    pub fn at_vec(&self, e: &mut dyn Engine, i: usize, j: usize, k: usize) -> [f32; VEC] {
        emit_vec_load(e, self.addr(i, j, k), self.aligned);
        let n = self.idx(i, j, k);
        [
            self.data[n],
            self.data[n + 1],
            self.data[n + 2],
            self.data[n + 3],
        ]
    }

    /// Uninstrumented view.
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Initializes every element from an index function (uninstrumented).
    pub fn fill(&mut self, f: impl Fn(usize, usize, usize) -> f32) {
        for i in 0..self.d0 {
            for j in 0..self.d1 {
                for k in 0..self.d2 {
                    let n = (i * self.d1 + j) * self.d2 + k;
                    self.data[n] = f(i, j, k);
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use sttcache_cpu::Engine;
    use sttcache_mem::Addr;

    /// Records every event for assertion.
    #[derive(Debug, Default)]
    pub struct Recorder {
        pub loads: Vec<(Addr, usize)>,
        pub stores: Vec<(Addr, usize)>,
        pub prefetches: Vec<Addr>,
        pub compute_ops: u64,
        pub branches: Vec<bool>,
    }

    impl Engine for Recorder {
        fn load(&mut self, addr: Addr, bytes: usize) {
            self.loads.push((addr, bytes));
        }

        fn store(&mut self, addr: Addr, bytes: usize) {
            self.stores.push((addr, bytes));
        }

        fn prefetch(&mut self, addr: Addr) {
            self.prefetches.push(addr);
        }

        fn compute(&mut self, ops: u64) {
            self.compute_ops += ops;
        }

        fn branch(&mut self, taken: bool) {
            self.branches.push(taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::Recorder;
    use super::*;

    #[test]
    fn aligned_arrays_start_on_line_boundaries() {
        let mut space = DataSpace::new(true);
        for _ in 0..5 {
            let a = space.array1(33);
            assert_eq!(a.addr(0).0 % 64, 0);
        }
    }

    #[test]
    fn unaligned_arrays_are_skewed() {
        let mut space = DataSpace::new(false);
        let a = space.array1(10);
        assert_eq!(a.addr(0).0 % 64, MISALIGN_SKEW);
    }

    #[test]
    fn arrays_do_not_overlap() {
        let mut space = DataSpace::new(true);
        let a = space.array1(100);
        let b = space.array2(7, 9);
        let a_end = a.addr(99).0 + ELEM as u64;
        assert!(b.addr(0, 0).0 >= a_end);
    }

    #[test]
    fn scalar_access_emits_event_and_computes() {
        let mut space = DataSpace::new(true);
        let mut a = space.array1(8);
        let mut e = Recorder::default();
        a.set(&mut e, 3, 2.5);
        assert_eq!(a.at(&mut e, 3), 2.5);
        assert_eq!(e.stores, vec![(a.addr(3), 4)]);
        assert_eq!(e.loads, vec![(a.addr(3), 4)]);
    }

    #[test]
    fn aligned_vector_access_is_one_event() {
        let mut space = DataSpace::new(true);
        let a = space.array1(16);
        let mut e = Recorder::default();
        a.at_vec(&mut e, 4);
        assert_eq!(e.loads, vec![(a.addr(4), 16)]);
    }

    #[test]
    fn misaligned_vector_access_can_split() {
        let mut space = DataSpace::new(false);
        let a = space.array1(64);
        let mut e = Recorder::default();
        // base % 32 = 20; element 0 → offset 20; 20 + 16 > 32: split.
        a.at_vec(&mut e, 0);
        assert_eq!(e.loads.len(), 2);
        assert_eq!(e.loads[0].1 + e.loads[1].1, 16);
        // Element 3 → offset 32: aligned within the boundary, no split.
        let mut e2 = Recorder::default();
        a.at_vec(&mut e2, 3);
        assert_eq!(e2.loads.len(), 1);
    }

    #[test]
    fn array2_addressing_is_row_major() {
        let mut space = DataSpace::new(true);
        let m = space.array2(4, 8);
        assert_eq!(m.addr(1, 0).0 - m.addr(0, 0).0, 32);
        assert_eq!(m.addr(0, 1).0 - m.addr(0, 0).0, 4);
    }

    #[test]
    fn array2_vector_ops_roundtrip() {
        let mut space = DataSpace::new(true);
        let mut m = space.array2(2, 8);
        let mut e = Recorder::default();
        m.set_vec(&mut e, 1, 4, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.at_vec(&mut e, 1, 4), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.raw_at(1, 5), 2.0);
    }

    #[test]
    fn array3_addressing() {
        let mut space = DataSpace::new(true);
        let t = space.array3(2, 3, 4);
        assert_eq!(t.dims(), (2, 3, 4));
        assert_eq!(t.addr(0, 0, 1).0 - t.addr(0, 0, 0).0, 4);
        assert_eq!(t.addr(0, 1, 0).0 - t.addr(0, 0, 0).0, 16);
        assert_eq!(t.addr(1, 0, 0).0 - t.addr(0, 0, 0).0, 48);
    }

    #[test]
    fn fill_initializes_without_events() {
        let mut space = DataSpace::new(true);
        let mut a = space.array2(3, 3);
        a.fill(|i, j| (i * 10 + j) as f32);
        assert_eq!(a.raw_at(2, 1), 21.0);
    }
}

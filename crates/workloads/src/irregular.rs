//! The irregular (pointer-chasing) workload family.
//!
//! Four deterministic kernels whose access streams are the opposite of
//! the PolyBench loop nests: low spatial reuse, data-dependent addresses
//! and no profitable vectorization — the traffic class where an
//! STT-MRAM read penalty cannot hide behind a wide-interface buffer.
//! Every kernel is seeded (an in-module SplitMix64, no external RNG), so
//! recording the same kernel twice yields bit-identical traces and the
//! shared trace cache stays sound.
//!
//! Determinism contract (DESIGN.md §16): the computation — and therefore
//! the output checksum — is independent of the [`Transformations`]
//! toggles. `others` only moves array bases (alignment) and batches loop
//! overhead (unrolling), `prefetch` only adds hint events, and
//! `vectorize` is a no-op: dependent chains have no 4-wide variant, which
//! is precisely the property the family exists to measure.

use crate::kernels::{checksum, for_n, seed_value, Kernel};
use crate::space::DataSpace;
use crate::suite::ProblemSize;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// SplitMix64: the crate-local seeded generator behind every irregular
/// kernel's topology (list permutation, hash keys, graph edges, object
/// references). Small, fast and stable — the stream for a given seed is
/// part of the trace-reproducibility contract.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Seeded linked-list traversal: a Sattolo single-cycle permutation of
/// `nodes` list nodes walked for `steps` dependent hops, accumulating a
/// payload and writing it back periodically. Every load is on the
/// critical path and the successor is data-dependent, so no buffer or
/// prefetch distance short of following the pointer helps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListChase {
    nodes: usize,
    steps: usize,
    seed: u64,
}

impl ListChase {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `steps` is zero.
    pub fn new(nodes: usize, steps: usize, seed: u64) -> Self {
        assert!(
            nodes >= 2 && steps > 0,
            "list chase needs a cycle and steps"
        );
        ListChase { nodes, steps, seed }
    }
}

impl Kernel for ListChase {
    fn name(&self) -> &'static str {
        "list-chase"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut next = space.array1(self.nodes);
        let mut payload = space.array1(self.nodes);
        let mut sink = space.array1(1);

        // Sattolo's algorithm: a uniform random *single-cycle*
        // permutation, so the chase never gets stuck in a short loop.
        let mut rng = SplitMix64::new(self.seed);
        let mut perm: Vec<usize> = (0..self.nodes).collect();
        for i in (1..self.nodes).rev() {
            let j = rng.below(i);
            perm.swap(i, j);
        }
        let mut succ = vec![0usize; self.nodes];
        for w in 0..self.nodes {
            succ[perm[w]] = perm[(w + 1) % self.nodes];
        }
        next.fill(|i| succ[i] as f32);
        payload.fill(|i| seed_value(i, 11));

        let mut idx = rng.below(self.nodes);
        let mut acc = 0.0f32;
        for_n(e, t.unroll_factor(), self.steps, |e, s| {
            let nxt = next.at(e, idx) as usize;
            let v = payload.at(e, idx);
            acc += v;
            e.compute(3);
            if s % 16 == 0 {
                payload.set(e, idx, v + 0.5);
            }
            if t.prefetch {
                // The only prefetch a dependent chase admits: hint the
                // successor the moment its index is known.
                e.prefetch(next.addr(nxt));
            }
            idx = nxt;
        });
        sink.set(e, 0, acc + idx as f32);
        checksum(sink.raw())
    }
}

/// Open-addressing hash-table probes: seeded keys inserted with linear
/// probing, then a mixed present/absent lookup stream. Probe sequences
/// hash all over the table — short dependent runs with no spatial reuse
/// beyond the probe cluster itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashProbe {
    capacity: usize,
    keys: usize,
    probes: usize,
    seed: u64,
}

impl HashProbe {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if the table would be full (`keys >= capacity`) or any
    /// parameter is zero.
    pub fn new(capacity: usize, keys: usize, probes: usize, seed: u64) -> Self {
        assert!(
            capacity > 0 && keys > 0 && probes > 0 && keys < capacity,
            "hash probe needs a non-full table and work"
        );
        HashProbe {
            capacity,
            keys,
            probes,
            seed,
        }
    }

    fn slot_of(&self, key: u32) -> usize {
        let mut x = key.wrapping_mul(2654435761);
        x ^= x >> 15;
        (x as usize) % self.capacity
    }
}

impl Kernel for HashProbe {
    fn name(&self) -> &'static str {
        "hash-probe"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        // Slot 0.0 = empty; keys start at 1 and stay well inside f32's
        // exact-integer range.
        let mut slots = space.array1(self.capacity);
        let mut vals = space.array1(self.capacity);
        let mut sink = space.array1(1);

        let mut rng = SplitMix64::new(self.seed);
        let mut inserted = Vec::with_capacity(self.keys);
        for _ in 0..self.keys {
            let key = 1 + (rng.next_u64() % 0xFFFF) as u32;
            inserted.push(key);
            let mut h = self.slot_of(key);
            loop {
                let cur = slots.at(e, h);
                e.compute(2);
                let empty = cur == 0.0;
                e.branch(!empty);
                if empty {
                    slots.set(e, h, key as f32);
                    vals.set(e, h, seed_value(key as usize, 3));
                    break;
                }
                h = (h + 1) % self.capacity;
            }
        }

        let mut acc = 0.0f32;
        for_n(e, t.unroll_factor(), self.probes, |e, _| {
            // Three present lookups for every absent one.
            let present = rng.below(4) != 0;
            let key = if present {
                inserted[rng.below(inserted.len())]
            } else {
                0x1_0000 + (rng.next_u64() % 0xFFFF) as u32
            };
            let mut h = self.slot_of(key);
            if t.prefetch {
                // The probe cluster is the one predictable address run.
                e.prefetch(slots.addr((h + 1) % self.capacity));
            }
            loop {
                let cur = slots.at(e, h);
                e.compute(2);
                if cur == key as f32 {
                    e.branch(false);
                    acc += vals.at(e, h);
                    break;
                }
                if cur == 0.0 {
                    e.branch(false);
                    acc -= 0.125;
                    break;
                }
                e.branch(true);
                h = (h + 1) % self.capacity;
            }
        });
        sink.set(e, 0, acc);
        checksum(sink.raw())
    }
}

/// CSR graph BFS: level-synchronous frontier sweeps over a seeded random
/// graph. The row-pointer and column arrays stream, but the visited-
/// distance lookups scatter across the whole node range — the classic
/// graph-analytics mix of streaming metadata and random payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrBfs {
    nodes: usize,
    degree: usize,
    seed: u64,
}

impl CsrBfs {
    /// Creates the workload over `nodes` vertices with `degree` seeded
    /// out-edges each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `degree` is zero.
    pub fn new(nodes: usize, degree: usize, seed: u64) -> Self {
        assert!(nodes >= 2 && degree > 0, "BFS needs a graph");
        CsrBfs {
            nodes,
            degree,
            seed,
        }
    }
}

impl Kernel for CsrBfs {
    fn name(&self) -> &'static str {
        "csr-bfs"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let edges = self.nodes * self.degree;
        let mut row_ptr = space.array1(self.nodes + 1);
        let mut col = space.array1(edges);
        let mut dist = space.array1(self.nodes);
        let mut frontier = space.array1(self.nodes);
        let mut next_frontier = space.array1(self.nodes);

        let mut rng = SplitMix64::new(self.seed);
        let mut targets = vec![0usize; edges];
        for tgt in targets.iter_mut() {
            *tgt = rng.below(self.nodes);
        }
        row_ptr.fill(|i| (i * self.degree) as f32);
        col.fill(|j| targets[j] as f32);
        dist.fill(|_| -1.0);

        dist.set(e, 0, 0.0);
        frontier.set(e, 0, 0.0);
        let mut count = 1usize;
        let mut level = 0usize;
        while count > 0 {
            let mut produced = 0usize;
            for_n(e, t.unroll_factor(), count, |e, i| {
                let u = frontier.at(e, i) as usize;
                let start = row_ptr.at(e, u) as usize;
                let end = row_ptr.at(e, u + 1) as usize;
                for j in start..end {
                    let v = col.at(e, j) as usize;
                    if t.prefetch {
                        // Streaming over col is easy; the win is hinting
                        // the scattered distance slot before the check.
                        e.prefetch(dist.addr(v));
                    }
                    let d = dist.at(e, v);
                    e.compute(2);
                    let unseen = d < 0.0;
                    e.branch(unseen);
                    if unseen {
                        dist.set(e, v, (level + 1) as f32);
                        next_frontier.set(e, produced, v as f32);
                        produced += 1;
                    }
                }
            });
            for_n(e, t.unroll_factor(), produced, |e, i| {
                let v = next_frontier.at(e, i);
                frontier.set(e, i, v);
            });
            count = produced;
            level += 1;
        }
        checksum(dist.raw())
    }
}

/// GC-mark-style object-graph traversal: a seeded heap of fixed-shape
/// objects (two reference slots each, some null), marked from seeded
/// roots through an explicit worklist — the hwgc-flavored tracing load of
/// mark-bit read-modify-writes at data-dependent addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcMark {
    objects: usize,
    roots: usize,
    seed: u64,
}

/// Reference slots per heap object.
const GC_SLOTS: usize = 2;

impl GcMark {
    /// Creates the workload over `objects` heap objects marked from
    /// `roots` seeded roots.
    ///
    /// # Panics
    ///
    /// Panics if `objects < 2` or `roots` is zero.
    pub fn new(objects: usize, roots: usize, seed: u64) -> Self {
        assert!(objects >= 2 && roots > 0, "GC mark needs a heap and roots");
        GcMark {
            objects,
            roots,
            seed,
        }
    }
}

impl Kernel for GcMark {
    fn name(&self) -> &'static str {
        "gc-mark"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut refs = space.array1(GC_SLOTS * self.objects);
        let mut mark = space.array1(self.objects);
        // Worst case: every root plus both slots of every object get
        // pushed once — the worklist never grows past that.
        let mut stack = space.array1(self.roots + GC_SLOTS * self.objects);

        let mut rng = SplitMix64::new(self.seed);
        let mut slots = vec![-1.0f32; GC_SLOTS * self.objects];
        for s in slots.iter_mut() {
            // Three live references for every null slot.
            if rng.below(4) != 0 {
                *s = rng.below(self.objects) as f32;
            }
        }
        refs.fill(|i| slots[i]);

        let mut sp = 0usize;
        for_n(e, t.unroll_factor(), self.roots, |e, _| {
            let root = rng.below(self.objects);
            stack.set(e, sp, root as f32);
            sp += 1;
        });

        // The mark loop is a worklist drain, not a counted loop, so it
        // carries its own back-edge accounting (batched per unroll group
        // like `for_n` batches counted loops).
        let unroll = t.unroll_factor() as usize;
        let mut tick = 0usize;
        while sp > 0 {
            sp -= 1;
            let u = stack.at(e, sp) as usize;
            let m = mark.at(e, u);
            e.compute(1);
            let unmarked = m == 0.0;
            e.branch(unmarked);
            if unmarked {
                mark.set(e, u, 1.0);
                for slot in 0..GC_SLOTS {
                    let child = refs.at(e, GC_SLOTS * u + slot);
                    let live = child >= 0.0;
                    e.branch(live);
                    if live {
                        if t.prefetch {
                            e.prefetch(mark.addr(child as usize));
                        }
                        stack.set(e, sp, child);
                        sp += 1;
                    }
                }
            }
            tick += 1;
            if tick.is_multiple_of(unroll) {
                e.compute(1);
                e.branch(sp > 0);
            }
        }
        checksum(mark.raw())
    }
}

/// The irregular family, enumerable like [`crate::PolyBench`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the kernel names
pub enum Irregular {
    ListChase,
    HashProbe,
    CsrBfs,
    GcMark,
}

impl Irregular {
    /// Every irregular kernel, in catalog order.
    pub const ALL: [Irregular; 4] = [
        Irregular::ListChase,
        Irregular::HashProbe,
        Irregular::CsrBfs,
        Irregular::GcMark,
    ];

    /// The kernel's canonical name (also its CLI token).
    pub fn name(self) -> &'static str {
        match self {
            Irregular::ListChase => "list-chase",
            Irregular::HashProbe => "hash-probe",
            Irregular::CsrBfs => "csr-bfs",
            Irregular::GcMark => "gc-mark",
        }
    }

    /// Instantiates the kernel at the given problem size. Seeds are
    /// fixed per kernel: the topology is part of the workload identity.
    pub fn kernel(self, size: ProblemSize) -> Box<dyn Kernel> {
        let s = size.scale();
        match self {
            Irregular::ListChase => Box::new(ListChase::new(768 * s, 1536 * s, 0xC0FFEE)),
            Irregular::HashProbe => Box::new(HashProbe::new(1024 * s, 640 * s, 768 * s, 0xB1657)),
            Irregular::CsrBfs => Box::new(CsrBfs::new(320 * s, 4, 0x5EED)),
            Irregular::GcMark => Box::new(GcMark::new(512 * s, 24 * s, 0x6C_3A2B)),
        }
    }
}

impl std::fmt::Display for Irregular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::test_support::Recorder;

    #[test]
    fn names_match_kernels() {
        for w in Irregular::ALL {
            assert_eq!(w.kernel(ProblemSize::Mini).name(), w.name());
            assert_eq!(w.to_string(), w.name());
        }
    }

    #[test]
    fn recording_is_deterministic() {
        for w in Irregular::ALL {
            let run = || {
                let mut rec = Recorder::default();
                let sum = w
                    .kernel(ProblemSize::Mini)
                    .execute(&mut rec, Transformations::none());
                (rec.loads, rec.stores, sum.to_bits())
            };
            assert_eq!(run(), run(), "{w}");
        }
    }

    #[test]
    fn small_is_bigger_than_mini() {
        for w in Irregular::ALL {
            let count = |size| {
                let mut rec = Recorder::default();
                w.kernel(size).run(&mut rec, Transformations::none());
                rec.loads.len()
            };
            assert!(count(ProblemSize::Small) > count(ProblemSize::Mini), "{w}");
        }
    }

    #[test]
    fn prefetch_toggle_emits_hints_without_changing_results() {
        for w in Irregular::ALL {
            let mut plain = Recorder::default();
            let base = w
                .kernel(ProblemSize::Mini)
                .execute(&mut plain, Transformations::none());
            let mut hinted = Recorder::default();
            let out = w
                .kernel(ProblemSize::Mini)
                .execute(&mut hinted, Transformations::only_prefetch());
            assert!(plain.prefetches.is_empty(), "{w}: hints without the toggle");
            assert!(!hinted.prefetches.is_empty(), "{w}: no prefetch hints");
            assert_eq!(base.to_bits(), out.to_bits(), "{w}: prefetch changed data");
            assert_eq!(plain.loads, hinted.loads, "{w}: prefetch changed loads");
        }
    }

    #[test]
    fn bfs_reaches_most_of_the_graph() {
        let mut rec = Recorder::default();
        let sum = CsrBfs::new(320, 4, 0x5EED).execute(&mut rec, Transformations::none());
        // checksum(dist) = sum of levels over reached nodes - unreached
        // count; a connected-ish random graph reaches nearly everything,
        // so the sum is comfortably positive.
        assert!(sum > 0.0, "BFS reached too little of the graph: {sum}");
    }

    #[test]
    fn chase_visits_are_scattered() {
        let mut rec = Recorder::default();
        ListChase::new(256, 512, 1).run(&mut rec, Transformations::none());
        // Dependent hops through a random cycle: consecutive loads land
        // on different cache lines far more often than a stream would.
        let jumps = rec
            .loads
            .windows(2)
            .filter(|w| w[0].0 .0 / 64 != w[1].0 .0 / 64)
            .count();
        assert!(jumps * 2 > rec.loads.len(), "chase looks like a stream");
    }
}

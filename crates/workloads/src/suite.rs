//! Benchmark-suite enumeration and problem sizing.

pub use crate::kernels::Kernel;
use crate::kernels::{
    Adi, Atax, Bicg, Cholesky, Correlation, Covariance, Doitgen, Durbin, Fdtd2d, FloydWarshall,
    Gemm, Gemver, Gesummv, Gramschmidt, Heat3d, Jacobi1d, Jacobi2d, Lu, Ludcmp, Mvt, Seidel2d,
    Symm, Syr2k, Syrk, ThreeMm, Trisolv, Trmm, TwoMm,
};

/// The problem-size classes (PolyBench's `MINI`/`SMALL` spirit, scaled so
/// a full figure sweep simulates in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProblemSize {
    /// Smallest sizes — unit tests and smoke runs.
    #[default]
    Mini,
    /// The figure-generation sizes.
    Small,
    /// Stress sizes (~27x the mini simulation time for the cubic
    /// kernels); use for one-off validation, not sweeps.
    Large,
}

impl ProblemSize {
    pub(crate) fn scale(self) -> usize {
        match self {
            ProblemSize::Mini => 1,
            ProblemSize::Small => 2,
            ProblemSize::Large => 3,
        }
    }
}

/// The PolyBench subset the paper evaluates on.
///
/// # Example
///
/// ```
/// use sttcache_workloads::{PolyBench, ProblemSize};
///
/// let kernels = PolyBench::suite(ProblemSize::Mini);
/// assert_eq!(kernels.len(), 28);
/// assert_eq!(kernels[0].name(), "2mm");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the benchmark names
pub enum PolyBench {
    TwoMm,
    ThreeMm,
    Adi,
    Atax,
    Bicg,
    Cholesky,
    Correlation,
    Covariance,
    Doitgen,
    Durbin,
    Fdtd2d,
    FloydWarshall,
    Gemm,
    Gemver,
    Gesummv,
    Gramschmidt,
    Heat3d,
    Jacobi1d,
    Jacobi2d,
    Lu,
    Ludcmp,
    Mvt,
    Seidel2d,
    Symm,
    Syr2k,
    Syrk,
    Trisolv,
    Trmm,
}

impl PolyBench {
    /// Every benchmark, in the order the figures print them.
    pub const ALL: [PolyBench; 28] = [
        PolyBench::TwoMm,
        PolyBench::ThreeMm,
        PolyBench::Adi,
        PolyBench::Atax,
        PolyBench::Bicg,
        PolyBench::Cholesky,
        PolyBench::Correlation,
        PolyBench::Covariance,
        PolyBench::Doitgen,
        PolyBench::Durbin,
        PolyBench::Fdtd2d,
        PolyBench::FloydWarshall,
        PolyBench::Gemm,
        PolyBench::Gemver,
        PolyBench::Gesummv,
        PolyBench::Gramschmidt,
        PolyBench::Heat3d,
        PolyBench::Jacobi1d,
        PolyBench::Jacobi2d,
        PolyBench::Lu,
        PolyBench::Ludcmp,
        PolyBench::Mvt,
        PolyBench::Seidel2d,
        PolyBench::Symm,
        PolyBench::Syr2k,
        PolyBench::Syrk,
        PolyBench::Trisolv,
        PolyBench::Trmm,
    ];

    /// The benchmark's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            PolyBench::TwoMm => "2mm",
            PolyBench::ThreeMm => "3mm",
            PolyBench::Adi => "adi",
            PolyBench::Atax => "atax",
            PolyBench::Bicg => "bicg",
            PolyBench::Cholesky => "cholesky",
            PolyBench::Correlation => "correlation",
            PolyBench::Covariance => "covariance",
            PolyBench::Doitgen => "doitgen",
            PolyBench::Durbin => "durbin",
            PolyBench::Fdtd2d => "fdtd-2d",
            PolyBench::FloydWarshall => "floyd-warshall",
            PolyBench::Gemm => "gemm",
            PolyBench::Gemver => "gemver",
            PolyBench::Gesummv => "gesummv",
            PolyBench::Gramschmidt => "gramschmidt",
            PolyBench::Heat3d => "heat-3d",
            PolyBench::Jacobi1d => "jacobi-1d",
            PolyBench::Jacobi2d => "jacobi-2d",
            PolyBench::Lu => "lu",
            PolyBench::Ludcmp => "ludcmp",
            PolyBench::Mvt => "mvt",
            PolyBench::Seidel2d => "seidel-2d",
            PolyBench::Symm => "symm",
            PolyBench::Syr2k => "syr2k",
            PolyBench::Syrk => "syrk",
            PolyBench::Trisolv => "trisolv",
            PolyBench::Trmm => "trmm",
        }
    }

    /// Instantiates the kernel at the given problem size.
    pub fn kernel(self, size: ProblemSize) -> Box<dyn Kernel> {
        let s = size.scale();
        match self {
            PolyBench::TwoMm => Box::new(TwoMm::new(16 * s, 18 * s, 20 * s, 22 * s)),
            PolyBench::Adi => Box::new(Adi::new(24 * s, 6 * s)),
            PolyBench::ThreeMm => Box::new(ThreeMm::new(14 * s, 16 * s, 18 * s, 20 * s, 22 * s)),
            PolyBench::Atax => Box::new(Atax::new(76 * s, 84 * s)),
            PolyBench::Bicg => Box::new(Bicg::new(84 * s, 76 * s)),
            PolyBench::Cholesky => Box::new(Cholesky::new(40 * s)),
            PolyBench::Correlation => Box::new(Correlation::new(28 * s, 24 * s)),
            PolyBench::Covariance => Box::new(Covariance::new(28 * s, 24 * s)),
            PolyBench::Durbin => Box::new(Durbin::new(120 * s)),
            PolyBench::Fdtd2d => Box::new(Fdtd2d::new(24 * s, 28 * s, 8 * s)),
            PolyBench::FloydWarshall => Box::new(FloydWarshall::new(24 * s)),
            PolyBench::Doitgen => Box::new(Doitgen::new(8 * s, 8 * s, 24 * s)),
            PolyBench::Gemm => Box::new(Gemm::new(20 * s, 22 * s, 24 * s)),
            PolyBench::Gemver => Box::new(Gemver::new(72 * s)),
            PolyBench::Gesummv => Box::new(Gesummv::new(80 * s)),
            PolyBench::Gramschmidt => Box::new(Gramschmidt::new(32 * s, 20 * s)),
            PolyBench::Heat3d => Box::new(Heat3d::new(14 * s, 4 * s)),
            PolyBench::Jacobi1d => Box::new(Jacobi1d::new(1200 * s, 12 * s)),
            PolyBench::Jacobi2d => Box::new(Jacobi2d::new(36 * s, 10 * s)),
            PolyBench::Lu => Box::new(Lu::new(32 * s)),
            PolyBench::Ludcmp => Box::new(Ludcmp::new(32 * s)),
            PolyBench::Mvt => Box::new(Mvt::new(80 * s)),
            PolyBench::Seidel2d => Box::new(Seidel2d::new(36 * s, 8 * s)),
            PolyBench::Symm => Box::new(Symm::new(28 * s, 24 * s)),
            PolyBench::Syr2k => Box::new(Syr2k::new(20 * s, 24 * s)),
            PolyBench::Syrk => Box::new(Syrk::new(24 * s, 28 * s)),
            PolyBench::Trisolv => Box::new(Trisolv::new(120 * s)),
            PolyBench::Trmm => Box::new(Trmm::new(24 * s, 28 * s)),
        }
    }

    /// Instantiates the whole suite at one size.
    pub fn suite(size: ProblemSize) -> Vec<Box<dyn Kernel>> {
        PolyBench::ALL.iter().map(|b| b.kernel(size)).collect()
    }
}

impl std::fmt::Display for PolyBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::test_support::Recorder;
    use crate::transform::Transformations;

    #[test]
    fn names_match_kernels() {
        for b in PolyBench::ALL {
            let k = b.kernel(ProblemSize::Mini);
            assert_eq!(k.name(), b.name());
        }
    }

    #[test]
    fn all_kernels_run_at_mini_size() {
        for b in PolyBench::ALL {
            let k = b.kernel(ProblemSize::Mini);
            let mut rec = Recorder::default();
            let sum = k.execute(&mut rec, Transformations::none());
            assert!(sum.is_finite(), "{b}");
            assert!(!rec.loads.is_empty(), "{b}");
        }
    }

    #[test]
    fn small_is_bigger_than_mini() {
        for b in [PolyBench::Gemm, PolyBench::Atax, PolyBench::Jacobi2d] {
            let mut mini = Recorder::default();
            b.kernel(ProblemSize::Mini)
                .run(&mut mini, Transformations::none());
            let mut small = Recorder::default();
            b.kernel(ProblemSize::Small)
                .run(&mut small, Transformations::none());
            assert!(small.loads.len() > 2 * mini.loads.len(), "{b}");
        }
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(PolyBench::Jacobi2d.to_string(), "jacobi-2d");
    }
}

//! Diagnostic micro-workloads.
//!
//! Four synthetic access patterns that isolate the mechanisms the
//! PolyBench kernels mix together: a pure stream (the VWB's best case), a
//! parameterized strided walk (its worst case beyond one line), a hashed
//! random walk (no pattern for anything to exploit) and a dependent
//! pointer chase (every load on the critical path, latency fully exposed).
//! The ablation bench sweeps these to characterize the VWB's hit rate and
//! the drop-in penalty as functions of locality.

use crate::kernels::{checksum, for_n, pf1, Kernel};
use crate::space::DataSpace;
use crate::transform::Transformations;
use sttcache_cpu::Engine;

/// Sequential read-modify-write sweep over an array (`passes` times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamWalk {
    n: usize,
    passes: usize,
}

impl StreamWalk {
    /// Creates the workload (`n` elements, `passes` sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `passes` is zero.
    pub fn new(n: usize, passes: usize) -> Self {
        assert!(n > 0 && passes > 0, "stream walk needs elements and passes");
        StreamWalk { n, passes }
    }
}

impl Kernel for StreamWalk {
    fn name(&self) -> &'static str {
        "micro-stream"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array1(self.n);
        a.fill(|i| i as f32 * 0.5);
        for_n(e, 1, self.passes, |e, _| {
            for_n(e, t.unroll_factor(), self.n, |e, i| {
                pf1(e, t, &a, i);
                let v = a.at(e, i) + 1.0;
                e.compute(2);
                a.set(e, i, v);
            });
        });
        checksum(a.raw())
    }
}

/// Strided read walk: every access `stride` elements apart (modulo the
/// array), `steps` accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideWalk {
    n: usize,
    stride: usize,
    steps: usize,
}

impl StrideWalk {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(n: usize, stride: usize, steps: usize) -> Self {
        assert!(
            n > 0 && stride > 0 && steps > 0,
            "stride walk parameters must be non-zero"
        );
        StrideWalk { n, stride, steps }
    }

    /// The stride in elements.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Kernel for StrideWalk {
    fn name(&self) -> &'static str {
        "micro-stride"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array1(self.n);
        a.fill(|i| i as f32);
        let mut acc = 0.0f32;
        let mut idx = 0usize;
        let mut sink = space.array1(1);
        for_n(e, t.unroll_factor(), self.steps, |e, _| {
            if t.prefetch {
                let ahead = (idx + 2 * self.stride) % self.n;
                e.prefetch(a.addr(ahead));
            }
            acc += a.at(e, idx);
            e.compute(2);
            idx = (idx + self.stride) % self.n;
        });
        sink.set(e, 0, acc);
        checksum(sink.raw())
    }
}

/// Hashed random read walk: `steps` loads at xorshift-derived indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomWalk {
    n: usize,
    steps: usize,
}

impl RandomWalk {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `steps` is zero.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(
            n > 0 && steps > 0,
            "random walk parameters must be non-zero"
        );
        RandomWalk { n, steps }
    }
}

impl Kernel for RandomWalk {
    fn name(&self) -> &'static str {
        "micro-random"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut a = space.array1(self.n);
        a.fill(|i| (i % 17) as f32);
        let mut sink = space.array1(1);
        let mut acc = 0.0f32;
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for_n(e, t.unroll_factor(), self.steps, |e, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let idx = (state % self.n as u64) as usize;
            acc += a.at(e, idx);
            e.compute(4); // index hash + accumulate
        });
        sink.set(e, 0, acc);
        checksum(sink.raw())
    }
}

/// Dependent pointer chase: each index is read from the previous element,
/// so every load is on the critical path and no overlap or buffering can
/// hide it — the upper bound of the read penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChase {
    n: usize,
    steps: usize,
}

impl PointerChase {
    /// Creates the workload over an `n`-element cyclic permutation.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `steps` is zero.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(n >= 2 && steps > 0, "pointer chase needs a cycle and steps");
        PointerChase { n, steps }
    }
}

impl Kernel for PointerChase {
    fn name(&self) -> &'static str {
        "micro-chase"
    }

    fn execute(&self, e: &mut dyn Engine, t: Transformations) -> f64 {
        let mut space = DataSpace::new(t.others);
        let mut next = space.array1(self.n);
        // A full cycle with a line-defeating stride (Sattolo-flavoured:
        // i -> (i + large odd step) mod n).
        let step = (self.n / 2) | 1;
        next.fill(|i| ((i + step) % self.n) as f32);
        let mut sink = space.array1(1);
        let mut idx = 0usize;
        for_n(e, t.unroll_factor(), self.steps, |e, _| {
            let v = next.at(e, idx);
            e.compute(1);
            idx = v as usize;
        });
        sink.set(e, 0, idx as f32);
        checksum(sink.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::test_support::Recorder;

    #[test]
    fn stream_touches_every_element_each_pass() {
        let mut rec = Recorder::default();
        StreamWalk::new(32, 3).run(&mut rec, Transformations::none());
        assert_eq!(rec.loads.len(), 96);
        assert_eq!(rec.stores.len(), 96);
    }

    #[test]
    fn stride_walk_visits_with_the_configured_stride() {
        let mut rec = Recorder::default();
        let w = StrideWalk::new(64, 16, 4);
        w.run(&mut rec, Transformations::none());
        assert_eq!(w.stride(), 16);
        let addrs: Vec<u64> = rec.loads.iter().map(|(a, _)| a.0).collect();
        assert_eq!(addrs[1] - addrs[0], 64); // 16 f32 elements
    }

    #[test]
    fn random_walk_is_deterministic() {
        let run = || {
            let mut rec = Recorder::default();
            RandomWalk::new(256, 64).run(&mut rec, Transformations::none());
            rec.loads
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pointer_chase_follows_a_cycle() {
        let mut rec = Recorder::default();
        let n = 16;
        PointerChase::new(n, 2 * n).run(&mut rec, Transformations::none());
        // A full cyclic permutation: the first n loads visit n distinct
        // elements, then repeat.
        let first: std::collections::HashSet<u64> =
            rec.loads.iter().take(n).map(|(a, _)| a.0).collect();
        assert_eq!(first.len(), n);
        assert_eq!(rec.loads[0].0, rec.loads[n].0);
    }

    #[test]
    fn checksums_are_finite() {
        let mut rec = Recorder::default();
        for k in [
            Box::new(StreamWalk::new(64, 2)) as Box<dyn Kernel>,
            Box::new(StrideWalk::new(128, 8, 64)),
            Box::new(RandomWalk::new(128, 64)),
            Box::new(PointerChase::new(64, 128)),
        ] {
            assert!(
                k.execute(&mut rec, Transformations::none()).is_finite(),
                "{}",
                k.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            StreamWalk::new(8, 1).name(),
            StrideWalk::new(8, 2, 4).name(),
            RandomWalk::new(8, 4).name(),
            PointerChase::new(8, 4).name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 4);
    }
}

//! Kernel conformance checks, available to external test batteries.
//!
//! Every kernel — in this crate's suites or registered in the
//! [`crate::catalog`] — must satisfy one contract: it emits real memory
//! traffic, its checksum is finite, and every [`Transformations`]
//! combination computes the same result as the scalar reference. The
//! per-kernel unit tests and the cross-crate workload-catalog battery
//! both call [`assert_kernel_conformance`], so a kernel cannot join the
//! catalog without passing the same bar the PolyBench ports pass.

use crate::suite::Kernel;
use crate::transform::Transformations;
use sttcache_cpu::Engine;
use sttcache_mem::Addr;

/// Minimal counting engine: enough observation to enforce the contract
/// without depending on any test-only machinery.
#[derive(Debug, Default)]
struct Probe {
    loads: usize,
    stores: usize,
}

impl Engine for Probe {
    fn load(&mut self, _addr: Addr, _bytes: usize) {
        self.loads += 1;
    }

    fn store(&mut self, _addr: Addr, _bytes: usize) {
        self.stores += 1;
    }

    fn prefetch(&mut self, _addr: Addr) {}

    fn compute(&mut self, _ops: u64) {}

    fn branch(&mut self, _taken: bool) {}
}

/// All eight transformation combinations.
pub fn all_transform_combos() -> Vec<Transformations> {
    let mut v = Vec::new();
    for &vectorize in &[false, true] {
        for &prefetch in &[false, true] {
            for &others in &[false, true] {
                v.push(Transformations {
                    vectorize,
                    prefetch,
                    others,
                });
            }
        }
    }
    v
}

/// Every variant must produce the same output checksum as the scalar
/// reference (the transformations are semantics-preserving), and every
/// variant must emit memory traffic.
///
/// # Panics
///
/// Panics with a named diagnostic when the kernel violates the contract.
pub fn assert_kernel_conformance(k: &dyn Kernel) {
    let mut reference = Probe::default();
    let base = k.execute(&mut reference, Transformations::none());
    assert!(
        reference.loads > 0,
        "{}: scalar variant emitted no loads",
        k.name()
    );
    assert!(
        reference.stores > 0,
        "{}: scalar variant emitted no stores",
        k.name()
    );
    assert!(base.is_finite(), "{}: checksum is not finite", k.name());
    for t in all_transform_combos() {
        let mut probe = Probe::default();
        let out = k.execute(&mut probe, t);
        let tol = base.abs().max(1.0) * 5e-4;
        assert!(
            (out - base).abs() <= tol,
            "{}: variant {} checksum {} != reference {}",
            k.name(),
            t.label(),
            out,
            base
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolyBench;

    #[test]
    fn combos_cover_all_eight() {
        let combos = all_transform_combos();
        assert_eq!(combos.len(), 8);
        let distinct: std::collections::HashSet<_> = combos.into_iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn a_known_good_kernel_passes() {
        assert_kernel_conformance(&*PolyBench::Gemm.kernel(Default::default()));
    }
}

//! The workload catalog.
//!
//! One authoritative enumeration of every runnable workload — name, CLI
//! token, family and kernel factory — mirroring the organization catalog
//! in `sttcache::catalog`: the trace cache, mix grammar, `sim`/`figures`
//! binaries, explain mode and the differential fuzzer all walk this list
//! instead of matching on `PolyBench` privately. Adding a workload here
//! (an affine kernel, an irregular kernel, or nothing at all for
//! externally recorded traces) makes it show up everywhere at once.

use crate::irregular::Irregular;
use crate::suite::{Kernel, PolyBench, ProblemSize};

/// The workload families the catalog groups by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// The paper's PolyBench subset: affine loop nests, streaming reuse.
    Affine,
    /// Pointer-chasing kernels: data-dependent, low-reuse access streams.
    Irregular,
    /// Externally recorded traces ingested from disk (no kernel).
    External,
}

impl WorkloadFamily {
    /// Lowercase family tag (used in tables and labels).
    pub fn tag(self) -> &'static str {
        match self {
            WorkloadFamily::Affine => "affine",
            WorkloadFamily::Irregular => "irregular",
            WorkloadFamily::External => "external",
        }
    }
}

/// A workload identity: what a trace-cache key, a mix entry or a sweep
/// grid point names. Kernel-backed workloads come from the catalog;
/// external traces are identified by the content hash of their recorded
/// event stream, so the same file ingested twice (or from two paths) is
/// one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A PolyBench kernel (the "affine" family).
    Affine(PolyBench),
    /// An irregular pointer-chasing kernel.
    Irregular(Irregular),
    /// An externally recorded trace, named by its content hash.
    External(u64),
}

impl Workload {
    /// The family the workload belongs to.
    pub fn family(self) -> WorkloadFamily {
        match self {
            Workload::Affine(_) => WorkloadFamily::Affine,
            Workload::Irregular(_) => WorkloadFamily::Irregular,
            Workload::External(_) => WorkloadFamily::External,
        }
    }

    /// Instantiates the kernel, or `None` for an external trace (which
    /// has no kernel — its event stream was recorded elsewhere).
    pub fn kernel(self, size: ProblemSize) -> Option<Box<dyn Kernel>> {
        match self {
            Workload::Affine(b) => Some(b.kernel(size)),
            Workload::Irregular(k) => Some(k.kernel(size)),
            Workload::External(_) => None,
        }
    }

    /// Human-readable label: the catalog name for kernel-backed
    /// workloads, `trace:<hash>` for external ones.
    pub fn label(self) -> String {
        match self {
            Workload::Affine(b) => b.name().to_string(),
            Workload::Irregular(k) => k.name().to_string(),
            Workload::External(hash) => format!("trace:{hash:016x}"),
        }
    }
}

impl From<PolyBench> for Workload {
    fn from(b: PolyBench) -> Self {
        Workload::Affine(b)
    }
}

impl From<Irregular> for Workload {
    fn from(k: Irregular) -> Self {
        Workload::Irregular(k)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One catalog row: a kernel-backed workload plus everything the
/// harnesses need to present it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Human-readable name (identical to the kernel's
    /// [`Kernel::name`]).
    pub name: &'static str,
    /// Stable lowercase token for CLI flags and the mix grammar.
    pub cli: &'static str,
    /// The family the workload belongs to.
    pub family: WorkloadFamily,
    /// The trace-key identity.
    pub workload: Workload,
    /// What the access pattern exercises (one line, for the README).
    pub pattern: &'static str,
}

impl WorkloadSpec {
    /// Instantiates the entry's kernel at the given problem size.
    ///
    /// # Panics
    ///
    /// Never for catalog entries: every row is kernel-backed (external
    /// traces are not catalog rows — they are ingested at run time).
    pub fn kernel(&self, size: ProblemSize) -> Box<dyn Kernel> {
        self.workload
            .kernel(size)
            .expect("catalog entries are kernel-backed")
    }
}

fn affine_pattern(b: PolyBench) -> &'static str {
    match b {
        PolyBench::Jacobi1d | PolyBench::Jacobi2d | PolyBench::Seidel2d => "stencil sweep",
        PolyBench::Fdtd2d | PolyBench::Heat3d | PolyBench::Adi => "stencil sweep",
        _ => "affine loop nest",
    }
}

fn irregular_pattern(k: Irregular) -> &'static str {
    match k {
        Irregular::ListChase => "dependent linked-list hops",
        Irregular::HashProbe => "open-addressing probe runs",
        Irregular::CsrBfs => "frontier sweeps + scattered visits",
        Irregular::GcMark => "object-graph mark worklist",
    }
}

/// Every kernel-backed workload: the 28 affine kernels in figure order,
/// then the irregular family in catalog order.
pub fn catalog() -> Vec<WorkloadSpec> {
    let affine = PolyBench::ALL.iter().map(|&b| WorkloadSpec {
        name: b.name(),
        cli: b.name(),
        family: WorkloadFamily::Affine,
        workload: Workload::Affine(b),
        pattern: affine_pattern(b),
    });
    let irregular = Irregular::ALL.iter().map(|&k| WorkloadSpec {
        name: k.name(),
        cli: k.name(),
        family: WorkloadFamily::Irregular,
        workload: Workload::Irregular(k),
        pattern: irregular_pattern(k),
    });
    affine.chain(irregular).collect()
}

/// Looks a workload up by its CLI token.
pub fn by_cli(token: &str) -> Option<WorkloadSpec> {
    catalog().into_iter().find(|w| w.cli == token)
}

/// Looks the catalog row up for a workload identity (`None` for
/// external traces, which have no row).
pub fn by_workload(w: Workload) -> Option<WorkloadSpec> {
    catalog().into_iter().find(|s| s.workload == w)
}

/// The catalog entries of one family, in catalog order.
pub fn family(f: WorkloadFamily) -> Vec<WorkloadSpec> {
    catalog().into_iter().filter(|w| w.family == f).collect()
}

/// The irregular rows as a Markdown table (the README's workload table
/// is generated from this; a test keeps them in sync). The affine rows
/// are deliberately summarized in prose there — 28 near-identical lines
/// would bury the table.
pub fn readme_table() -> String {
    let mut s = String::from(
        "| Workload | CLI token | Family | Access pattern |\n\
         |---|---|---|---|\n",
    );
    for w in family(WorkloadFamily::Irregular) {
        s.push_str(&format!(
            "| {} | `{}` | {} | {} |\n",
            w.name,
            w.cli,
            w.family.tag(),
            w.pattern
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_consistent() {
        let entries = catalog();
        assert_eq!(entries.len(), PolyBench::ALL.len() + Irregular::ALL.len());
        // Affine entries first, in PolyBench::ALL order, names intact —
        // the figure output's row order depends on this.
        for (i, &b) in PolyBench::ALL.iter().enumerate() {
            assert_eq!(entries[i].workload, Workload::Affine(b));
            assert_eq!(entries[i].name, b.name());
        }
        for e in &entries {
            assert_eq!(e.name, e.kernel(ProblemSize::Mini).name(), "{}", e.cli);
            assert_eq!(e.family, e.workload.family(), "{}", e.cli);
        }
        let mut tokens: Vec<&str> = entries.iter().map(|e| e.cli).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), entries.len(), "duplicate CLI tokens");
    }

    #[test]
    fn cli_lookup_round_trips() {
        for e in catalog() {
            assert_eq!(by_cli(e.cli).unwrap().workload, e.workload);
            assert_eq!(by_workload(e.workload).unwrap().cli, e.cli);
        }
        assert!(by_cli("no-such-kernel").is_none());
        assert!(by_workload(Workload::External(42)).is_none());
    }

    #[test]
    fn families_partition_the_catalog() {
        let affine = family(WorkloadFamily::Affine);
        let irregular = family(WorkloadFamily::Irregular);
        assert_eq!(affine.len(), PolyBench::ALL.len());
        assert_eq!(irregular.len(), Irregular::ALL.len());
        assert!(family(WorkloadFamily::External).is_empty());
        assert_eq!(affine.len() + irregular.len(), catalog().len());
    }

    #[test]
    fn labels_and_conversions_agree() {
        assert_eq!(Workload::from(PolyBench::Gemm).label(), "gemm");
        assert_eq!(Workload::from(Irregular::CsrBfs).label(), "csr-bfs");
        assert_eq!(
            Workload::External(0xAB).to_string(),
            "trace:00000000000000ab"
        );
        assert_eq!(Workload::External(1).family(), WorkloadFamily::External);
        assert!(Workload::External(1).kernel(ProblemSize::Mini).is_none());
    }
}

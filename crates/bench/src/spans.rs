//! Span-based sweep tracing exported as Chrome `trace_event` JSON.
//!
//! The phase counters in [`crate::profile`] answer *how much* time each
//! trace-cache phase cost in aggregate; this module keeps *when*: one
//! span per record/compile/replay/direct execution and one per printed
//! artifact, each stamped with a start offset from a process epoch and
//! the worker thread that ran it. The export loads directly into
//! `chrome://tracing` / Perfetto, so a sweep's schedule — which figures
//! overlap, where the record-once phase serialises, how evenly the
//! workers are loaded — is visible as a flame view.
//!
//! Recording follows the telemetry discipline
//! ([`sttcache_mem::telemetry`]): disarmed, [`record`] is one relaxed
//! atomic load and an early return; `figures --telemetry-json PATH` (or
//! `STTCACHE_TELEMETRY=1`) arms it. The sink is bounded at [`SPAN_CAP`]
//! events — a full buffer drops further spans and counts them, so a
//! pathological sweep cannot grow memory without bound.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// The sink never retains more than this many spans.
pub const SPAN_CAP: usize = 65_536;

static ARMED: AtomicBool = AtomicBool::new(false);

/// Spans dropped because the sink was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Whether span recording is armed (one relaxed load).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms span recording and pins the trace epoch to now (first arm only).
pub fn arm() {
    epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// The instant all span timestamps are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span, timestamped in microseconds from the epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (a phase or artifact name).
    pub name: &'static str,
    /// Category: `"phase"` for trace-cache phases, `"artifact"` for
    /// printed figures.
    pub cat: &'static str,
    /// Start offset from the epoch, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Small dense thread number (0 = first thread seen).
    pub tid: u64,
}

fn sink() -> &'static Mutex<Vec<SpanEvent>> {
    static SINK: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Maps opaque [`ThreadId`]s to small dense numbers so the export's
/// `tid` field is stable and readable.
fn thread_number() -> u64 {
    static IDS: OnceLock<Mutex<HashMap<ThreadId, u64>>> = OnceLock::new();
    let map = IDS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().expect("thread id map lock");
    let next = map.len() as u64;
    *map.entry(std::thread::current().id()).or_insert(next)
}

/// Records one completed span; a no-op while disarmed.
pub fn record(name: &'static str, cat: &'static str, start: Instant, dur: Duration) {
    if !armed() {
        return;
    }
    // A start captured before the first `arm` clamps to the epoch.
    let ts = start
        .checked_duration_since(epoch())
        .unwrap_or(Duration::ZERO);
    let event = SpanEvent {
        name,
        cat,
        ts_us: ts.as_micros().min(u64::MAX as u128) as u64,
        dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
        tid: thread_number(),
    };
    let mut events = sink().lock().expect("span sink lock");
    if events.len() < SPAN_CAP {
        events.push(event);
    } else {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drains every recorded span (and resets the dropped counter),
/// returning them in recording order together with the drop count.
pub fn drain() -> (Vec<SpanEvent>, u64) {
    let events = std::mem::take(&mut *sink().lock().expect("span sink lock"));
    (events, DROPPED.swap(0, Ordering::Relaxed))
}

/// Renders spans as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in an object, as `chrome://tracing` and Perfetto load it).
/// Hand-rolled — the workspace is dependency-free. `dropped` non-zero
/// is surfaced in `otherData` so truncation is never silent.
pub fn export_chrome_json(events: &[SpanEvent], dropped: u64) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {} }}{}",
            e.name, e.cat, e.ts_us, e.dur_us, e.tid, comma
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"otherData\": {{ \"spans\": {}, \"dropped\": {} }}",
        events.len(),
        dropped
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "record",
                cat: "phase",
                ts_us: 0,
                dur_us: 1500,
                tid: 0,
            },
            SpanEvent {
                name: "fig1",
                cat: "artifact",
                ts_us: 1500,
                dur_us: 250,
                tid: 1,
            },
        ]
    }

    /// Pins the Chrome `trace_event` schema: every event is a complete
    /// (`"ph": "X"`) event carrying exactly the keys `chrome://tracing`
    /// and Perfetto require. Renaming or dropping one breaks every
    /// consumer of `figures --telemetry-json`, so this test must change
    /// in lockstep with the exporter.
    #[test]
    fn chrome_trace_schema_keys_are_pinned() {
        let json = export_chrome_json(&sample_events(), 3);
        assert!(json.starts_with("{\n  \"traceEvents\": ["));
        for key in [
            "\"traceEvents\"",
            "\"name\"",
            "\"cat\"",
            "\"ph\": \"X\"",
            "\"ts\"",
            "\"dur\"",
            "\"pid\": 1",
            "\"tid\"",
            "\"otherData\"",
            "\"spans\": 2",
            "\"dropped\": 3",
        ] {
            assert!(json.contains(key), "missing schema key {key} in:\n{json}");
        }
        // Two events, both complete-phase, comma-separated (valid JSON).
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_export_is_still_well_formed() {
        let json = export_chrome_json(&[], 0);
        assert!(json.contains("\"traceEvents\": [\n  ]"));
        assert!(json.contains("\"spans\": 0"));
    }

    #[test]
    fn disarmed_recording_is_a_no_op_and_armed_spans_drain() {
        // Tests in this binary share the global sink, so only assert on
        // spans with a name unique to this test.
        let (_, _) = drain();
        record(
            "span-test-disarmed",
            "phase",
            Instant::now(),
            Duration::ZERO,
        );
        let (events, _) = drain();
        assert!(events.iter().all(|e| e.name != "span-test-disarmed"));

        arm();
        let start = Instant::now();
        record("span-test-armed", "phase", start, Duration::from_micros(7));
        ARMED.store(false, Ordering::Relaxed);
        let (events, _) = drain();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name == "span-test-armed")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].dur_us, 7);
        assert_eq!(mine[0].cat, "phase");
    }
}

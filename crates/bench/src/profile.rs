//! Per-phase wall-clock accounting for `--profile`.
//!
//! The trace cache attributes every simulation's time to one of five
//! phases — *record* (running a kernel into a [`TraceRecorder`]),
//! *compile* (lowering a recorded trace into structure-of-arrays columns),
//! *compiled replay* (driving a platform from a compiled trace), *replay*
//! (driving a platform from an interpreted cached trace) and *direct*
//! (the uncached path) — into process-global atomic counters, so the
//! record-once/replay-many win is measurable from the binaries without
//! plumbing timers through every sweep. The binaries add per-figure wall-clock on
//! top and render the whole thing as a human summary (stderr) or JSON
//! (`--profile-json`), keeping stdout byte-identical to the committed
//! reference output.
//!
//! [`TraceRecorder`]: sttcache_cpu::TraceRecorder

use crate::trace_cache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The five phases the trace cache attributes simulation time to, in the
/// order the report renders them. Doubles as the index into [`PHASES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Record,
    Compile,
    CompiledReplay,
    Replay,
    Direct,
}

/// One phase's accumulated wall-clock, run count and event count.
struct PhaseCounter {
    ns: AtomicU64,
    runs: AtomicU64,
    events: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // template for the array below
const ZERO_PHASE: PhaseCounter = PhaseCounter {
    ns: AtomicU64::new(0),
    runs: AtomicU64::new(0),
    events: AtomicU64::new(0),
};

/// Per-phase counters, indexed by [`Phase`].
static PHASES: [PhaseCounter; 5] = [ZERO_PHASE; 5];

/// A duration as nanoseconds, saturating at `u64::MAX`.
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn add(phase: Phase, d: Duration, events: u64) {
    let c = &PHASES[phase as usize];
    // Saturate at the cast *and* at the accumulation: a counter that
    // reaches the ceiling pins there instead of silently wrapping (a
    // `min(u64::MAX) as u64` cast alone would still overflow the sum).
    let ns = saturating_ns(d);
    let _ =
        c.ns.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_add(ns))
        });
    c.runs.fetch_add(1, Ordering::Relaxed);
    c.events.fetch_add(events, Ordering::Relaxed);
}

/// Credits one trace-recording run over `events` recorded events.
pub fn add_record(d: Duration, events: u64) {
    add(Phase::Record, d, events);
}

/// Credits one trace-compilation pass (structure-of-arrays lowering)
/// over `events` lowered events.
pub fn add_compile(d: Duration, events: u64) {
    add(Phase::Compile, d, events);
}

/// Credits one compiled-trace replay over `events` replayed events.
pub fn add_compiled_replay(d: Duration, events: u64) {
    add(Phase::CompiledReplay, d, events);
}

/// Credits one interpreted cached-trace replay over `events` replayed
/// events.
pub fn add_replay(d: Duration, events: u64) {
    add(Phase::Replay, d, events);
}

/// Credits one direct (uncached) kernel execution over `events` memory
/// operations (loads + stores + prefetches the core issued).
pub fn add_direct(d: Duration, events: u64) {
    add(Phase::Direct, d, events);
}

/// Point-in-time view of the phase counters and the trace cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSnapshot {
    /// Seconds spent recording traces.
    pub record_seconds: f64,
    /// Number of recordings.
    pub record_runs: u64,
    /// Events recorded.
    pub record_events: u64,
    /// Seconds spent compiling traces into structure-of-arrays columns.
    pub compile_seconds: f64,
    /// Number of trace compilations.
    pub compile_runs: u64,
    /// Events lowered by the compile passes.
    pub compile_events: u64,
    /// Seconds spent replaying compiled traces.
    pub compiled_replay_seconds: f64,
    /// Number of compiled replays.
    pub compiled_replay_runs: u64,
    /// Events replayed through compiled traces.
    pub compiled_replay_events: u64,
    /// Seconds spent replaying cached traces interpretively.
    pub replay_seconds: f64,
    /// Number of interpreted replays.
    pub replay_runs: u64,
    /// Events replayed interpretively.
    pub replay_events: u64,
    /// Seconds spent in direct (uncached) kernel execution.
    pub direct_seconds: f64,
    /// Number of direct executions.
    pub direct_runs: u64,
    /// Memory operations the core issued across direct executions.
    pub direct_events: u64,
    /// Trace-cache counters.
    pub cache: trace_cache::TraceCacheStats,
    /// Bytes of trace data resident in the process-wide cache.
    pub cache_resident_bytes: usize,
    /// Entries in the process-wide cache.
    pub cache_entries: usize,
    /// Simulations answered from the result memo.
    pub memo_hits: u64,
    /// Distinct simulations resident in the result memo.
    pub memo_entries: usize,
}

/// Snapshots the global phase counters and cache state.
pub fn snapshot() -> ProfileSnapshot {
    let secs = |p: Phase| PHASES[p as usize].ns.load(Ordering::Relaxed) as f64 / 1e9;
    let runs = |p: Phase| PHASES[p as usize].runs.load(Ordering::Relaxed);
    let events = |p: Phase| PHASES[p as usize].events.load(Ordering::Relaxed);
    let (cache_resident_bytes, cache_entries) = trace_cache::global_footprint();
    ProfileSnapshot {
        record_seconds: secs(Phase::Record),
        record_runs: runs(Phase::Record),
        record_events: events(Phase::Record),
        compile_seconds: secs(Phase::Compile),
        compile_runs: runs(Phase::Compile),
        compile_events: events(Phase::Compile),
        compiled_replay_seconds: secs(Phase::CompiledReplay),
        compiled_replay_runs: runs(Phase::CompiledReplay),
        compiled_replay_events: events(Phase::CompiledReplay),
        replay_seconds: secs(Phase::Replay),
        replay_runs: runs(Phase::Replay),
        replay_events: events(Phase::Replay),
        direct_seconds: secs(Phase::Direct),
        direct_runs: runs(Phase::Direct),
        direct_events: events(Phase::Direct),
        cache: trace_cache::global_stats(),
        cache_resident_bytes,
        cache_entries,
        memo_hits: trace_cache::result_memo_hits(),
        memo_entries: trace_cache::result_memo_entries(),
    }
}

impl ProfileSnapshot {
    /// Simulation seconds across all five phases.
    pub fn simulation_seconds(&self) -> f64 {
        self.record_seconds
            + self.compile_seconds
            + self.compiled_replay_seconds
            + self.replay_seconds
            + self.direct_seconds
    }

    /// Seconds spent in either replay flavour (compiled + interpreted) —
    /// the quantity the bench regression gate bounds.
    pub fn replay_phase_seconds(&self) -> f64 {
        self.compiled_replay_seconds + self.replay_seconds
    }

    /// Events replayed through either flavour.
    pub fn replay_phase_events(&self) -> u64 {
        self.compiled_replay_events + self.replay_events
    }

    /// Nanoseconds per replayed event across both replay flavours — the
    /// machine-size-independent metric the bench regression gate bounds
    /// alongside the raw wall-clock.
    pub fn replay_phase_ns_per_event(&self) -> f64 {
        ns_per_event(self.replay_phase_seconds(), self.replay_phase_events())
    }
}

/// Nanoseconds per event, 0.0 when no events were credited (a phase
/// that never ran has no meaningful rate).
fn ns_per_event(seconds: f64, events: u64) -> f64 {
    if events == 0 {
        0.0
    } else {
        seconds * 1e9 / events as f64
    }
}

/// A finished profiled run: the per-figure wall-clock a binary measured
/// plus the phase counters, ready to render.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// `(artifact name, seconds)` in emission order.
    pub figures: Vec<(&'static str, f64)>,
    /// End-to-end wall-clock of the profiled run in seconds.
    pub total_seconds: f64,
    /// Worker threads the sweeps used.
    pub workers: usize,
    /// Whether the trace cache was enabled.
    pub cache_enabled: bool,
    /// Phase counters at the end of the run.
    pub phases: ProfileSnapshot,
}

impl ProfileReport {
    /// The human-readable summary `--profile` prints to stderr.
    pub fn render_text(&self) -> String {
        let p = &self.phases;
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {:.3}s total, {} workers, trace cache {}\n",
            self.total_seconds,
            self.workers,
            if self.cache_enabled { "on" } else { "off" }
        ));
        out.push_str(&format!(
            "  phases: record {:.3}s/{} runs, compile {:.3}s/{} runs, \
             compiled replay {:.3}s/{} runs, replay {:.3}s/{} runs, \
             direct {:.3}s/{} runs, aggregate {:.3}s\n",
            p.record_seconds,
            p.record_runs,
            p.compile_seconds,
            p.compile_runs,
            p.compiled_replay_seconds,
            p.compiled_replay_runs,
            p.replay_seconds,
            p.replay_runs,
            p.direct_seconds,
            p.direct_runs,
            (self.total_seconds - p.simulation_seconds()).max(0.0),
        ));
        out.push_str(&format!(
            "  ns/event: record {:.1}, compile {:.1}, compiled replay {:.1}, \
             replay {:.1}, direct {:.1} (replay phase {:.1})\n",
            ns_per_event(p.record_seconds, p.record_events),
            ns_per_event(p.compile_seconds, p.compile_events),
            ns_per_event(p.compiled_replay_seconds, p.compiled_replay_events),
            ns_per_event(p.replay_seconds, p.replay_events),
            ns_per_event(p.direct_seconds, p.direct_events),
            p.replay_phase_ns_per_event(),
        ));
        out.push_str(&format!(
            "  trace cache: {} hits, {} misses, {} evictions \
             ({:.1}% hit rate), {} traces / {} KiB resident\n",
            p.cache.hits,
            p.cache.misses,
            p.cache.evictions,
            p.cache.hit_rate() * 100.0,
            p.cache_entries,
            p.cache_resident_bytes / 1024,
        ));
        out.push_str(&format!(
            "  result memo: {} hits, {} distinct simulations\n",
            p.memo_hits, p.memo_entries,
        ));
        for (name, secs) in &self.figures {
            out.push_str(&format!("  {name:<8} {secs:>8.3}s\n"));
        }
        out
    }

    /// The machine-readable form `--profile-json` writes (hand-rolled —
    /// the workspace is dependency-free).
    pub fn render_json(&self) -> String {
        let p = &self.phases;
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"total_seconds\": {:.6},\n",
            self.total_seconds
        ));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"trace_cache_enabled\": {},\n",
            self.cache_enabled
        ));
        out.push_str("  \"phases\": {\n");
        let mut phase = |name: &str, seconds: f64, runs: u64, events: u64| {
            out.push_str(&format!(
                "    \"{name}_seconds\": {seconds:.6},\n    \"{name}_runs\": {runs},\n\
                 \x20   \"{name}_events\": {events},\n\
                 \x20   \"{name}_ns_per_event\": {:.3},\n",
                ns_per_event(seconds, events)
            ));
        };
        phase("record", p.record_seconds, p.record_runs, p.record_events);
        phase(
            "compile",
            p.compile_seconds,
            p.compile_runs,
            p.compile_events,
        );
        phase(
            "compiled_replay",
            p.compiled_replay_seconds,
            p.compiled_replay_runs,
            p.compiled_replay_events,
        );
        phase("replay", p.replay_seconds, p.replay_runs, p.replay_events);
        phase("direct", p.direct_seconds, p.direct_runs, p.direct_events);
        out.push_str(&format!(
            "    \"replay_phase_ns_per_event\": {:.3},\n",
            p.replay_phase_ns_per_event()
        ));
        out.push_str(&format!(
            "    \"aggregate_seconds\": {:.6}\n  }},\n",
            (self.total_seconds - p.simulation_seconds()).max(0.0)
        ));
        out.push_str("  \"trace_cache\": {\n");
        out.push_str(&format!(
            "    \"hits\": {},\n    \"misses\": {},\n    \"evictions\": {},\n",
            p.cache.hits, p.cache.misses, p.cache.evictions
        ));
        out.push_str(&format!(
            "    \"hit_rate\": {:.6},\n    \"resident_bytes\": {},\n    \"entries\": {}\n  }},\n",
            p.cache.hit_rate(),
            p.cache_resident_bytes,
            p.cache_entries
        ));
        out.push_str(&format!(
            "  \"result_memo\": {{ \"hits\": {}, \"entries\": {} }},\n",
            p.memo_hits, p.memo_entries
        ));
        out.push_str("  \"figures\": [\n");
        for (i, (name, secs)) in self.figures.iter().enumerate() {
            let comma = if i + 1 < self.figures.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"seconds\": {secs:.6} }}{comma}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileReport {
        ProfileReport {
            figures: vec![("table1", 0.001), ("fig1", 0.25)],
            total_seconds: 1.5,
            workers: 4,
            cache_enabled: true,
            phases: ProfileSnapshot {
                record_seconds: 0.2,
                record_runs: 3,
                record_events: 30_000,
                compile_seconds: 0.01,
                compile_runs: 3,
                compile_events: 30_000,
                compiled_replay_seconds: 0.3,
                compiled_replay_runs: 80,
                compiled_replay_events: 800_000,
                replay_seconds: 0.9,
                replay_runs: 100,
                replay_events: 1_000_000,
                direct_seconds: 0.0,
                direct_runs: 0,
                direct_events: 0,
                cache: trace_cache::TraceCacheStats {
                    hits: 97,
                    misses: 3,
                    evictions: 0,
                },
                cache_resident_bytes: 3 * 1024 * 1024,
                cache_entries: 3,
                memo_hits: 40,
                memo_entries: 60,
            },
        }
    }

    #[test]
    fn text_report_names_every_phase_and_figure() {
        let text = sample().render_text();
        for needle in [
            "record 0.200s",
            "replay 0.900s",
            "direct 0.000s",
            "table1",
            "fig1",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn json_report_is_structurally_sound() {
        let json = sample().render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"total_seconds\": 1.500000",
            "\"workers\": 4",
            "\"hit_rate\": 0.970000",
            "\"name\": \"fig1\"",
        ] {
            assert!(json.contains(needle), "missing '{needle}' in:\n{json}");
        }
    }

    #[test]
    fn snapshot_accumulates_phase_time() {
        let before = snapshot();
        add_record(Duration::from_millis(5), 10);
        add_compile(Duration::from_millis(3), 10);
        add_compiled_replay(Duration::from_millis(2), 10);
        add_replay(Duration::from_millis(7), 10);
        add_direct(Duration::from_millis(11), 10);
        let after = snapshot();
        assert!(after.record_seconds >= before.record_seconds + 0.004);
        assert!(after.compile_seconds >= before.compile_seconds + 0.002);
        assert!(after.compiled_replay_seconds >= before.compiled_replay_seconds + 0.001);
        assert!(after.replay_seconds >= before.replay_seconds + 0.006);
        assert!(after.direct_seconds >= before.direct_seconds + 0.010);
        // Other tests in this binary may add phase time concurrently, so
        // only lower bounds are safe to assert.
        assert!(after.record_runs > before.record_runs);
        assert!(after.compile_runs > before.compile_runs);
        assert!(after.compiled_replay_runs > before.compiled_replay_runs);
        assert!(after.replay_runs > before.replay_runs);
        assert!(after.direct_runs > before.direct_runs);
        assert!(after.record_events >= before.record_events + 10);
        assert!(after.replay_events >= before.replay_events + 10);
        assert!(after.direct_events >= before.direct_events + 10);
    }

    #[test]
    fn nanosecond_cast_saturates_instead_of_truncating() {
        // ~584 years of nanoseconds overflows u64; the cast must pin at
        // the ceiling, not wrap to a small number.
        assert_eq!(saturating_ns(Duration::from_secs(u64::MAX)), u64::MAX);
        assert_eq!(saturating_ns(Duration::from_millis(5)), 5_000_000);
        assert_eq!(saturating_ns(Duration::ZERO), 0);
        // And the accumulation saturates too, so a pinned counter stays
        // pinned rather than wrapping on the next credit.
        assert_eq!(
            u64::MAX.saturating_add(saturating_ns(Duration::from_millis(1))),
            u64::MAX
        );
    }

    #[test]
    fn replay_phase_spans_both_replay_flavours() {
        let p = sample().phases;
        assert!((p.replay_phase_seconds() - 1.2).abs() < 1e-12);
        assert!((p.simulation_seconds() - 1.41).abs() < 1e-12);
    }

    /// Pins the `--profile-json` schema: `scripts/bench_gate.sh` greps
    /// these keys out of committed and fresh snapshots, so renaming or
    /// dropping one silently breaks the regression gate. Adding keys is
    /// fine; this test must be updated in lockstep with the gate script
    /// when a key it reads changes.
    #[test]
    fn json_schema_keys_are_pinned() {
        let json = sample().render_json();
        for key in [
            "\"total_seconds\"",
            "\"workers\"",
            "\"trace_cache_enabled\"",
            "\"phases\"",
            "\"record_seconds\"",
            "\"record_runs\"",
            "\"compile_seconds\"",
            "\"compile_runs\"",
            "\"compiled_replay_seconds\"",
            "\"compiled_replay_runs\"",
            "\"replay_seconds\"",
            "\"replay_runs\"",
            "\"direct_seconds\"",
            "\"direct_runs\"",
            "\"record_events\"",
            "\"record_ns_per_event\"",
            "\"compile_events\"",
            "\"compile_ns_per_event\"",
            "\"compiled_replay_events\"",
            "\"compiled_replay_ns_per_event\"",
            "\"replay_events\"",
            "\"replay_ns_per_event\"",
            "\"direct_events\"",
            "\"direct_ns_per_event\"",
            "\"replay_phase_ns_per_event\"",
            "\"aggregate_seconds\"",
            "\"trace_cache\"",
            "\"hits\"",
            "\"misses\"",
            "\"evictions\"",
            "\"hit_rate\"",
            "\"resident_bytes\"",
            "\"entries\"",
            "\"result_memo\"",
            "\"figures\"",
            "\"name\"",
            "\"seconds\"",
        ] {
            assert!(json.contains(key), "missing schema key {key} in:\n{json}");
        }
        // `replay_seconds` must stay distinct from `compiled_replay_seconds`
        // (the gate sums them); exactly one occurrence of each key. Same
        // for the per-event keys the ns/event gate greps.
        assert_eq!(json.matches("\"compiled_replay_seconds\"").count(), 1);
        assert_eq!(json.matches("\"replay_seconds\"").count(), 1);
        assert_eq!(json.matches("\"replay_phase_ns_per_event\"").count(), 1);
    }

    #[test]
    fn ns_per_event_is_zero_when_no_events_ran() {
        assert_eq!(ns_per_event(1.0, 0), 0.0);
        assert!((ns_per_event(0.9, 1_000_000) - 900.0).abs() < 1e-9);
        let p = sample().phases;
        // (0.3 + 0.9)s over (0.8 + 1.0)M events = 666.67 ns/event.
        assert!((p.replay_phase_ns_per_event() - 1.2e9 / 1.8e6).abs() < 1e-6);
    }
}

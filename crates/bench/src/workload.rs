//! Workload resolution: one resolver from CLI/mix tokens to
//! [`Workload`] identities, plus the external-trace registry.
//!
//! Every front end (`sim --bench`, `sim --trace-file`, the multicore mix
//! grammar, the fuzzer) resolves workload names here, against the
//! workload catalog (`sttcache_workloads::catalog`) — one lookup, one
//! error type, no private name tables.
//!
//! External traces (`file:<path>` tokens) are ingested through the
//! hardened binary reader, then **content-hashed**: the canonical
//! serialized event stream is FNV-1a hashed into the 64-bit identity
//! behind [`Workload::External`]. The same recording ingested twice — or
//! from two different paths — is one workload, so the trace cache's
//! result memo and compiled-trace cache apply to it exactly as they do
//! to kernel-backed workloads, with zero special cases downstream.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use sttcache_cpu::Trace;
use sttcache_workloads::{catalog, Workload};

/// Why a workload token failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The token names neither a catalog entry nor a `file:` source.
    Unknown(String),
    /// A `file:` source could not be read or parsed.
    File {
        /// The path as given in the token.
        path: String,
        /// The underlying I/O or format error.
        error: String,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Unknown(token) => {
                write!(f, "unknown workload '{token}' (try one of: ")?;
                let tokens: Vec<&str> = catalog::catalog().iter().map(|w| w.cli).collect();
                write!(f, "{}, or file:<path>)", tokens.join(", "))
            }
            WorkloadError::File { path, error } => {
                write!(f, "cannot ingest trace file '{path}': {error}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A registered external trace: the parsed recording plus where it came
/// from (for labels and mix round-trips).
#[derive(Debug, Clone)]
struct External {
    trace: Arc<Trace>,
    source: String,
}

fn registry() -> &'static Mutex<HashMap<u64, External>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, External>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// FNV-1a over the canonical serialized form.
fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Ingests a recorded trace file: reads it through the hardened binary
/// reader, content-hashes the canonical serialization and registers the
/// recording under [`Workload::External`]. Idempotent — re-ingesting the
/// same content returns the same workload identity.
pub fn load_trace_file(path: &str) -> Result<Workload, WorkloadError> {
    let file_err = |error: String| WorkloadError::File {
        path: path.to_string(),
        error,
    };
    let bytes = std::fs::read(path).map_err(|e| file_err(e.to_string()))?;
    let mut cursor = bytes.as_slice();
    let trace = Trace::read_from(&mut cursor).map_err(|e| file_err(e.to_string()))?;
    if !cursor.is_empty() {
        return Err(file_err(format!(
            "{} trailing bytes after the trace payload",
            cursor.len()
        )));
    }
    register_trace(trace, path.to_string()).map_err(file_err)
}

/// Registers an in-memory recording as an external workload. `source`
/// is the label the workload reports (a path for file ingestion).
pub fn register_trace(trace: Trace, source: String) -> Result<Workload, String> {
    let mut canonical = Vec::new();
    trace
        .write_to(&mut canonical)
        .map_err(|e| format!("cannot canonicalize trace: {e}"))?;
    let id = content_hash(&canonical);
    let mut reg = registry().lock().expect("workload registry poisoned");
    reg.entry(id).or_insert(External {
        trace: Arc::new(trace),
        source,
    });
    Ok(Workload::External(id))
}

/// The registered recording behind an external workload identity.
pub fn external_trace(id: u64) -> Option<Arc<Trace>> {
    registry()
        .lock()
        .expect("workload registry poisoned")
        .get(&id)
        .map(|e| Arc::clone(&e.trace))
}

/// Where an external workload was ingested from.
pub fn external_source(id: u64) -> Option<String> {
    registry()
        .lock()
        .expect("workload registry poisoned")
        .get(&id)
        .map(|e| e.source.clone())
}

/// Resolves a workload token: a catalog CLI token (`gemm`,
/// `list-chase`, …) or an external trace source (`file:<path>`).
pub fn resolve(token: &str) -> Result<Workload, WorkloadError> {
    if let Some(path) = token.strip_prefix("file:") {
        if path.is_empty() {
            return Err(WorkloadError::Unknown(token.to_string()));
        }
        return load_trace_file(path);
    }
    catalog::by_cli(token)
        .map(|spec| spec.workload)
        .ok_or_else(|| WorkloadError::Unknown(token.to_string()))
}

/// The token that resolves back to this workload: the catalog CLI token
/// for kernel-backed workloads, `file:<source>` for external ones. The
/// inverse of [`resolve`] (an external source re-ingests to the same
/// content hash).
pub fn token_of(w: Workload) -> String {
    match w {
        Workload::External(id) => match external_source(id) {
            Some(source) => format!("file:{source}"),
            None => w.label(),
        },
        _ => catalog::by_workload(w)
            .map(|spec| spec.cli.to_string())
            .unwrap_or_else(|| w.label()),
    }
}

/// Display label: the catalog name, or `trace:<hash>` plus its source
/// for external workloads.
pub fn label_of(w: Workload) -> String {
    match w {
        Workload::External(id) => match external_source(id) {
            Some(source) => format!("{} ({source})", w.label()),
            None => w.label(),
        },
        _ => w.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttcache_cpu::{Engine, TraceRecorder};
    use sttcache_mem::Addr;

    fn sample_trace() -> Trace {
        let mut rec = TraceRecorder::new();
        for i in 0..32u64 {
            rec.load(Addr(0x1000 + i * 8), 8);
            if i % 3 == 0 {
                rec.store(Addr(0x2000 + i * 8), 8);
            }
        }
        rec.into_trace()
    }

    #[test]
    fn catalog_tokens_resolve() {
        for spec in catalog::catalog() {
            assert_eq!(resolve(spec.cli).unwrap(), spec.workload);
            assert_eq!(token_of(spec.workload), spec.cli);
            assert_eq!(label_of(spec.workload), spec.name);
        }
        assert!(matches!(
            resolve("nosuchkernel"),
            Err(WorkloadError::Unknown(_))
        ));
        assert!(matches!(resolve("file:"), Err(WorkloadError::Unknown(_))));
    }

    #[test]
    fn file_ingestion_round_trips_and_is_idempotent() {
        let trace = sample_trace();
        let dir = std::env::temp_dir();
        let path = dir.join("sttcache_workload_ingest.trace");
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let token = format!("file:{}", path.display());

        let w = resolve(&token).unwrap();
        let again = resolve(&token).unwrap();
        assert_eq!(w, again, "ingestion must be idempotent");
        let Workload::External(id) = w else {
            panic!("file token resolved to a kernel workload")
        };
        assert_eq!(*external_trace(id).unwrap(), trace);
        assert_eq!(token_of(w), token);
        assert!(label_of(w).contains("trace:"));
        // Same content from a different path: same identity.
        let path2 = dir.join("sttcache_workload_ingest_copy.trace");
        std::fs::write(&path2, &bytes).unwrap();
        let w2 = resolve(&format!("file:{}", path2.display())).unwrap();
        assert_eq!(w, w2, "content hash must ignore the path");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn corrupt_and_truncated_files_are_rejected() {
        let dir = std::env::temp_dir();
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();

        let truncated = dir.join("sttcache_workload_truncated.trace");
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            resolve(&format!("file:{}", truncated.display())),
            Err(WorkloadError::File { .. })
        ));

        let garbage = dir.join("sttcache_workload_garbage.trace");
        std::fs::write(&garbage, b"not a trace at all").unwrap();
        assert!(matches!(
            resolve(&format!("file:{}", garbage.display())),
            Err(WorkloadError::File { .. })
        ));

        let trailing = dir.join("sttcache_workload_trailing.trace");
        let mut with_trailing = bytes.clone();
        with_trailing.extend_from_slice(b"junk");
        std::fs::write(&trailing, &with_trailing).unwrap();
        assert!(matches!(
            resolve(&format!("file:{}", trailing.display())),
            Err(WorkloadError::File { .. })
        ));

        assert!(matches!(
            resolve("file:/no/such/path.trace"),
            Err(WorkloadError::File { .. })
        ));
        for p in [&truncated, &garbage, &trailing] {
            std::fs::remove_file(p).ok();
        }
    }
}

//! Multi-threaded sweep engine.
//!
//! The paper's figures are full PolyBench sweeps over a kernel ×
//! organization × transformation grid; every point is an independent,
//! deterministic simulation, so the grid shards perfectly across OS
//! threads. [`SweepRunner`] owns that sharding:
//!
//! * worker count defaults to [`std::thread::available_parallelism`],
//!   can be pinned with the `STTCACHE_THREADS` environment variable, and
//!   can be overridden per process by the binaries' `--jobs N` /
//!   `--serial` flags (see [`set_jobs`]);
//! * work is distributed by **work stealing**: each worker starts with a
//!   contiguous chunk of the grid (cache-friendly, since neighbouring
//!   points share a kernel trace) and steals half of a victim's remaining
//!   chunk when its own deque drains, so one slow organization cannot
//!   serialize the sweep tail;
//! * results are merged by **stable grid index**, never by completion or
//!   stealing order, so a parallel sweep is byte-identical to a serial
//!   one at any worker count;
//! * each grid point runs under [`std::panic::catch_unwind`]: one
//!   diverging configuration surfaces as an error row while the rest of
//!   the sweep completes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use sttcache::{DCacheOrganization, RunResult};
use sttcache_workloads::{catalog, ProblemSize, Transformations, Workload, WorkloadFamily};

/// Process-wide worker-count override (0 = unset). Written by the
/// binaries' `--jobs` / `--serial` flags, read by [`SweepRunner::current`].
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker count every subsequent [`SweepRunner::current`] uses.
///
/// `set_jobs(1)` is the `--serial` mode; `set_jobs(0)` clears the
/// override (environment/hardware defaults apply again).
pub fn set_jobs(n: usize) {
    GLOBAL_JOBS.store(n, Ordering::SeqCst);
}

/// A sweep point failed instead of producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The simulation closure panicked; the payload's message is kept so
    /// the error row says *why* the configuration diverged.
    Panic(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// One point of the workload × organization × transformation grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// The L1 D-cache organization under test.
    pub org: DCacheOrganization,
    /// The workload.
    pub workload: Workload,
    /// The problem size.
    pub size: ProblemSize,
    /// The code-transformation set the kernel runs with.
    pub transforms: Transformations,
}

impl GridPoint {
    /// A human-readable label for error rows and logs.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{:?}/{}",
            self.org.name(),
            self.workload.label(),
            self.size,
            self.transforms.label()
        )
    }
}

/// Builds the org-major, workload-minor grid the figure sweeps use: for
/// each organization in order, every *affine* catalog workload in catalog
/// order (the paper's PolyBench suite — the row order every figure's
/// reference output depends on).
pub fn grid(
    orgs: &[DCacheOrganization],
    size: ProblemSize,
    transforms: Transformations,
) -> Vec<GridPoint> {
    let affine = catalog::family(WorkloadFamily::Affine);
    let mut points = Vec::with_capacity(orgs.len() * affine.len());
    for &org in orgs {
        for spec in &affine {
            points.push(GridPoint {
                org,
                workload: spec.workload,
                size,
                transforms,
            });
        }
    }
    points
}

/// Shards independent work items across scoped threads and merges the
/// results back in grid order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    workers: usize,
}

impl SweepRunner {
    /// A single-worker runner (the `--serial` mode).
    pub fn serial() -> Self {
        SweepRunner { workers: 1 }
    }

    /// A runner with exactly `n` workers (clamped to at least one).
    pub fn with_workers(n: usize) -> Self {
        SweepRunner { workers: n.max(1) }
    }

    /// Worker count from the environment: `STTCACHE_THREADS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let workers = std::env::var("STTCACHE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        SweepRunner::with_workers(workers)
    }

    /// The runner every figure/experiment sweep uses: the [`set_jobs`]
    /// override if one is active, otherwise [`SweepRunner::from_env`].
    pub fn current() -> Self {
        match GLOBAL_JOBS.load(Ordering::SeqCst) {
            0 => SweepRunner::from_env(),
            n => SweepRunner::with_workers(n),
        }
    }

    /// The number of worker threads this runner shards across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on up to [`SweepRunner::workers`] scoped
    /// threads.
    ///
    /// Each worker is seeded with a contiguous chunk of item indices and
    /// pops them front-to-back; when its deque drains it steals the back
    /// half of another worker's remaining chunk, so long and short
    /// simulations balance without a shared claim cursor.
    /// The returned vector is ordered by item index — completion and
    /// stealing order never leak into the output. A panicking item yields
    /// `Err(SweepError::Panic(..))` in its slot; the other items still
    /// complete.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<Result<O, SweepError>>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let deques = seed_deques(n, workers);
        let (tx, rx) = mpsc::channel::<(usize, Result<O, SweepError>)>();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let tx = tx.clone();
                let deques = &deques;
                let f = &f;
                scope.spawn(move || {
                    while let Some(idx) = next_index(deques, me) {
                        let out = catch_unwind(AssertUnwindSafe(|| f(idx, &items[idx])))
                            .map_err(|payload| SweepError::Panic(panic_message(payload.as_ref())));
                        if tx.send((idx, out)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<Result<O, SweepError>>> = (0..n).map(|_| None).collect();
        for (idx, out) in rx {
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every grid index reports exactly once"))
            .collect()
    }

    /// Like [`SweepRunner::map`], but re-raises the first panic after the
    /// whole sweep has drained — for grids that are known-valid (the
    /// canonical figure configurations), where an error row would be a
    /// bug, not an input problem.
    pub fn map_ok<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        self.map(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(SweepError::Panic(msg)) => resume_unwind(Box::new(msg)),
            })
            .collect()
    }

    /// Simulates every [`GridPoint`], sharded across the workers.
    pub fn run_grid(&self, points: &[GridPoint]) -> Vec<Result<RunResult, SweepError>> {
        self.map(points, |_, p| {
            crate::experiments::run_benchmark(p.org, p.workload, p.size, p.transforms)
        })
    }

    /// Simulates every [`GridPoint`] and returns only the cycle counts,
    /// panicking (after the sweep drains) if any canonical point failed.
    pub fn grid_cycles(&self, points: &[GridPoint]) -> Vec<u64> {
        self.run_grid(points)
            .into_iter()
            .zip(points)
            .map(|(r, p)| match r {
                Ok(result) => result.cycles(),
                Err(e) => panic!("sweep point {} failed: {e}", p.label()),
            })
            .collect()
    }
}

impl Default for SweepRunner {
    /// [`SweepRunner::current`]: the `--jobs` override, else environment.
    fn default() -> Self {
        SweepRunner::current()
    }
}

/// Seeds one index deque per worker with contiguous, near-equal chunks
/// of `0..n` — worker `w` starts on `[w*n/workers, (w+1)*n/workers)`.
/// Contiguity keeps each worker's initial stride over the grid
/// cache-friendly (neighbouring points share kernel traces).
fn seed_deques(n: usize, workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect()
}

/// Claims the next item index for worker `me`: pop the front of its own
/// deque, else steal from a victim. `None` means the whole sweep has
/// been claimed — indices are never re-queued, so a full empty scan is a
/// terminal state and the worker can retire.
fn next_index(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(idx) = deques[me].lock().expect("deque lock poisoned").pop_front() {
        return Some(idx);
    }
    steal_half(deques, me)
}

/// Steals the back half of the first non-empty victim deque (scanning
/// from `me + 1`, wrapping) into `me`'s own deque and claims the first
/// stolen index. Taking from the *back* leaves the victim its
/// cache-warm front stride; taking *half* amortizes the lock traffic —
/// a thief services its haul privately before stealing again.
fn steal_half(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    let workers = deques.len();
    for off in 1..workers {
        let victim = (me + off) % workers;
        let mut stolen = {
            let mut q = deques[victim].lock().expect("deque lock poisoned");
            let len = q.len();
            if len == 0 {
                continue;
            }
            q.split_off(len - len.div_ceil(2))
        };
        let first = stolen.pop_front().expect("stole at least one index");
        if !stolen.is_empty() {
            let mut own = deques[me].lock().expect("deque lock poisoned");
            debug_assert!(own.is_empty(), "workers only steal once drained");
            *own = stolen;
        }
        return Some(first);
    }
    None
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_grid_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = SweepRunner::with_workers(8).map(&items, |idx, &v| {
            assert_eq!(idx, v);
            // Uneven work so completion order differs from grid order.
            let spin = (v * 37) % 101;
            std::hint::black_box((0..spin * 1000).sum::<usize>());
            v * 2
        });
        let values: Vec<usize> = out.into_iter().map(|r| r.expect("no panics")).collect();
        assert_eq!(values, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_an_empty_sweep() {
        let out = SweepRunner::with_workers(4).map(&[] as &[u64], |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_are_clamped_to_at_least_one() {
        assert_eq!(SweepRunner::with_workers(0).workers(), 1);
        assert_eq!(SweepRunner::serial().workers(), 1);
    }

    #[test]
    fn panic_becomes_an_error_row_not_a_crash() {
        let items: Vec<usize> = (0..8).collect();
        let out = SweepRunner::with_workers(4).map(&items, |_, &v| {
            if v == 3 {
                panic!("diverging config {v}");
            }
            v
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(
                    r.as_ref().expect_err("index 3 panicked"),
                    &SweepError::Panic("diverging config 3".to_string())
                );
            } else {
                assert_eq!(*r.as_ref().expect("others complete"), i);
            }
        }
    }

    #[test]
    fn output_is_identical_at_every_worker_count() {
        // Heavily skewed work: the last items are ~100× the first, so at
        // any worker count above one the fast workers drain their seeded
        // chunks and must steal the slow tail. The merged output must not
        // notice.
        let items: Vec<usize> = (0..64).collect();
        let work = |idx: usize, v: &usize| {
            assert_eq!(idx, *v);
            let spin = v * v * 40;
            std::hint::black_box((0..spin).sum::<usize>());
            v * 3 + 1
        };
        let serial: Vec<usize> = SweepRunner::serial()
            .map(&items, work)
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        for workers in [2, 4, 8, 64, 200] {
            let out: Vec<usize> = SweepRunner::with_workers(workers)
                .map(&items, work)
                .into_iter()
                .map(|r| r.expect("no panics"))
                .collect();
            assert_eq!(out, serial, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn seeded_chunks_are_contiguous_and_cover_the_grid() {
        for (n, workers) in [(10, 3), (7, 7), (64, 8), (5, 4), (1, 1)] {
            let deques = seed_deques(n, workers);
            let mut all = Vec::new();
            for q in &deques {
                let q = q.lock().unwrap();
                let chunk: Vec<usize> = q.iter().copied().collect();
                assert!(
                    chunk.windows(2).all(|w| w[1] == w[0] + 1),
                    "chunk not contiguous"
                );
                all.extend(chunk);
            }
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} workers={workers}");
        }
    }

    #[test]
    fn thief_takes_the_back_half_and_leaves_the_front() {
        // Worker 1 is empty and steals from worker 0, which holds 0..=2.
        let deques = seed_deques(6, 2);
        {
            let mut q1 = deques[1].lock().unwrap();
            q1.clear();
        }
        let claimed = next_index(&deques, 1).expect("victim has work");
        // Back half of [0, 1, 2] is ceil(3/2) = 2 items: [1, 2]; the
        // thief claims the first and keeps the rest.
        assert_eq!(claimed, 1);
        assert_eq!(
            deques[0]
                .lock()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(
            deques[1]
                .lock()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![2]
        );
        // A fully drained grid is a terminal state.
        deques[0].lock().unwrap().clear();
        deques[1].lock().unwrap().clear();
        assert_eq!(next_index(&deques, 0), None);
        assert_eq!(next_index(&deques, 1), None);
    }

    #[test]
    fn grid_is_org_major_workload_minor() {
        let orgs = [
            DCacheOrganization::SramBaseline,
            DCacheOrganization::NvmDropIn,
        ];
        let affine = catalog::family(WorkloadFamily::Affine);
        let points = grid(&orgs, ProblemSize::Mini, Transformations::none());
        assert_eq!(points.len(), 2 * affine.len());
        assert_eq!(points[0].org, DCacheOrganization::SramBaseline);
        assert_eq!(points[0].workload, affine[0].workload);
        assert_eq!(points[affine.len()].org, DCacheOrganization::NvmDropIn);
    }
}

//! The experiments behind every table and figure.
//!
//! Every figure is a full PolyBench sweep over a kernel × organization ×
//! transformation grid. The grids are built up front and sharded across
//! worker threads by [`SweepRunner`]; results are merged back by stable
//! grid index, so the output is identical no matter how many workers run
//! the sweep (see `crates/bench/src/parallel.rs`).

use crate::parallel::{self, GridPoint, SweepRunner};
use crate::trace_cache;
use sttcache::{
    average_penalty, penalty_pct, DCacheOrganization, PenaltyRow, PlatformConfig, RunResult,
    VwbConfig,
};
use sttcache_mem::CacheConfig;
use sttcache_tech::{table_one, TableOneRow};
use sttcache_workloads::{
    catalog, ProblemSize, Transformations, Workload, WorkloadFamily, WorkloadSpec,
};

/// The affine (PolyBench) rows every paper figure sweeps, in the
/// catalog's canonical order (which fixes figure row order).
fn affine() -> Vec<WorkloadSpec> {
    catalog::family(WorkloadFamily::Affine)
}

/// One benchmark's run on one configuration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Full simulation result.
    pub result: RunResult,
}

/// Runs one benchmark on one platform organization with the given
/// transformations.
///
/// Executes through the shared trace cache (see
/// [`trace_cache`](crate::trace_cache)): the kernel's event stream is
/// recorded once per (kernel, size, transformation) key and replayed for
/// every organization, with results identical to direct execution.
///
/// # Panics
///
/// Panics if the organization's configuration is invalid (the canonical
/// configurations used by the figures never are).
pub fn run_benchmark(
    org: DCacheOrganization,
    workload: impl Into<Workload>,
    size: ProblemSize,
    t: Transformations,
) -> RunResult {
    trace_cache::run_config(&PlatformConfig::new(org), workload, size, t)
}

/// Builds the grid for a list of (organization, transformation) combos:
/// combo-major, affine-catalog-minor — each combo occupies one
/// contiguous, benchmark-ordered chunk of the result vector.
fn combo_grid(
    combos: &[(DCacheOrganization, Transformations)],
    size: ProblemSize,
) -> Vec<GridPoint> {
    let rows = affine();
    let mut points = Vec::with_capacity(combos.len() * rows.len());
    for &(org, transforms) in combos {
        for spec in &rows {
            points.push(GridPoint {
                org,
                workload: spec.workload,
                size,
                transforms,
            });
        }
    }
    points
}

/// Runs a combo grid through the current sweep runner and returns the
/// per-combo cycle-count chunks (one chunk per combo, benchmark order).
fn sweep_combos(
    combos: &[(DCacheOrganization, Transformations)],
    size: ProblemSize,
) -> Vec<Vec<u64>> {
    let points = combo_grid(combos, size);
    let cycles = SweepRunner::current().grid_cycles(&points);
    cycles.chunks(affine().len()).map(|c| c.to_vec()).collect()
}

/// A labelled multi-series penalty table (one series per configuration,
/// one row per benchmark plus AVERAGE).
#[derive(Debug, Clone)]
pub struct SeriesTable {
    /// Series (configuration) labels, in column order.
    pub series: Vec<String>,
    /// `(benchmark, penalties-per-series)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl SeriesTable {
    /// Appends the AVERAGE row the paper's figures end with.
    fn with_average(mut self) -> Self {
        let cols = self.series.len();
        let n = self.rows.len().max(1) as f64;
        let avg: Vec<f64> = (0..cols)
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("AVERAGE".to_string(), avg));
        self
    }

    /// The AVERAGE value of a series (requires [`SeriesTable::rows`] to end
    /// with the AVERAGE row, which every figure constructor guarantees).
    pub fn average(&self, series_idx: usize) -> f64 {
        self.rows.last().expect("table has an AVERAGE row").1[series_idx]
    }

    /// Appends the AVERAGE row (crate-internal; the figure and extension
    /// constructors call this exactly once).
    pub(crate) fn append_average(self) -> Self {
        self.with_average()
    }

    /// Renders the table as CSV (`benchmark` column plus one column per
    /// series; values in percent).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("benchmark");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.replace(',', ";"));
        }
        out.push('\n');
        for (name, cols) in &self.rows {
            out.push_str(name);
            for v in cols {
                out.push_str(&format!(",{v:.3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Table I: the 64 KB SRAM vs STT-MRAM technology comparison.
pub fn table1() -> [TableOneRow; 2] {
    table_one()
}

/// Fig. 1: performance penalty of the drop-in STT-MRAM D-cache, per
/// benchmark, relative to the SRAM baseline.
pub fn fig1(size: ProblemSize) -> Vec<PenaltyRow> {
    let chunks = sweep_combos(
        &[
            (DCacheOrganization::SramBaseline, Transformations::none()),
            (DCacheOrganization::NvmDropIn, Transformations::none()),
        ],
        size,
    );
    let mut rows: Vec<PenaltyRow> = affine()
        .iter()
        .enumerate()
        .map(|(i, spec)| PenaltyRow::new(spec.name, penalty_pct(chunks[0][i], chunks[1][i])))
        .collect();
    let avg = average_penalty(&rows);
    rows.push(PenaltyRow::new("AVERAGE", avg));
    rows
}

/// Fig. 3: drop-in NVM vs NVM + VWB (both untransformed).
pub fn fig3(size: ProblemSize) -> SeriesTable {
    let chunks = sweep_combos(
        &[
            (DCacheOrganization::SramBaseline, Transformations::none()),
            (DCacheOrganization::NvmDropIn, Transformations::none()),
            (
                DCacheOrganization::nvm_vwb_default(),
                Transformations::none(),
            ),
        ],
        size,
    );
    let rows = affine()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            (
                spec.name.to_string(),
                vec![
                    penalty_pct(chunks[0][i], chunks[1][i]),
                    penalty_pct(chunks[0][i], chunks[2][i]),
                ],
            )
        })
        .collect();
    SeriesTable {
        series: vec!["Drop-in NVM D-Cache".into(), "NVM D-Cache with VWB".into()],
        rows,
    }
    .with_average()
}

/// One benchmark's read/write penalty decomposition (Fig. 4).
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: String,
    /// Relative read-latency contribution to the penalty, in percent.
    pub read_pct: f64,
    /// Relative write-latency contribution to the penalty, in percent.
    pub write_pct: f64,
}

/// Fig. 4: relative contribution of read vs write access latency to the
/// VWB organization's penalty.
///
/// Measured counterfactually, gem5-style: one platform with only the NVM
/// *read* latency (writes at SRAM speed) and one with only the NVM *write*
/// latency. Each counterfactual's penalty over the SRAM baseline is its
/// latency class's contribution; shares are normalized to 100 %.
pub fn fig4(size: ProblemSize) -> Vec<Fig4Row> {
    // NVM DL1 geometry with one latency class reverted to SRAM speed.
    let with_latencies = |read: u64, write: u64| -> PlatformConfig {
        let dl1 = CacheConfig::builder()
            .capacity_bytes(64 * 1024)
            .associativity(2)
            .line_bytes(64)
            .banks(4)
            .read_cycles(read)
            .write_cycles(write)
            .build()
            .expect("counterfactual dl1 config is valid");
        let mut cfg = PlatformConfig::new(DCacheOrganization::nvm_vwb_default());
        cfg.dl1_override = Some(dl1);
        cfg
    };

    // One sweep item per benchmark: the three runs a decomposition needs
    // (SRAM reference, read-only-slow, write-only-slow).
    let rows_in = affine();
    let shares = SweepRunner::current().map_ok(&rows_in, |_, spec| {
        let b = spec.workload;
        let read_only = with_latencies(4, 1);
        let write_only = with_latencies(1, 2);
        let sram = run_benchmark(
            DCacheOrganization::SramBaseline,
            b,
            size,
            Transformations::none(),
        );
        let r = trace_cache::run_config(&read_only, b, size, Transformations::none());
        let w = trace_cache::run_config(&write_only, b, size, Transformations::none());
        let p_read = penalty_pct(sram.cycles(), r.cycles()).max(0.0);
        let p_write = penalty_pct(sram.cycles(), w.cycles()).max(0.0);
        if p_read + p_write < 0.25 {
            // Penalty too small to decompose by counterfactuals; fall back
            // to the stall attribution of the read-latency run.
            let re = r
                .core
                .read_stall_cycles
                .saturating_sub(sram.core.read_stall_cycles);
            let we = w
                .core
                .write_stall_cycles
                .saturating_sub(sram.core.write_stall_cycles);
            let tot = (re + we).max(1) as f64;
            if re + we == 0 {
                (100.0, 0.0)
            } else {
                (re as f64 / tot * 100.0, we as f64 / tot * 100.0)
            }
        } else {
            let total = p_read + p_write;
            (p_read / total * 100.0, p_write / total * 100.0)
        }
    });

    let mut rows = Vec::new();
    let mut sum_read = 0.0;
    let mut sum_write = 0.0;
    for (spec, (read_pct, write_pct)) in rows_in.iter().zip(shares) {
        sum_read += read_pct;
        sum_write += write_pct;
        rows.push(Fig4Row {
            name: spec.name.to_string(),
            read_pct,
            write_pct,
        });
    }
    let n = rows_in.len() as f64;
    rows.push(Fig4Row {
        name: "AVERAGE".into(),
        read_pct: sum_read / n,
        write_pct: sum_write / n,
    });
    rows
}

/// Fig. 5: drop-in NVM, VWB without transformations, VWB with all
/// transformations.
pub fn fig5(size: ProblemSize) -> SeriesTable {
    let chunks = sweep_combos(
        &[
            (DCacheOrganization::SramBaseline, Transformations::none()),
            (DCacheOrganization::SramBaseline, Transformations::all()),
            (DCacheOrganization::NvmDropIn, Transformations::none()),
            (
                DCacheOrganization::nvm_vwb_default(),
                Transformations::none(),
            ),
            (
                DCacheOrganization::nvm_vwb_default(),
                Transformations::all(),
            ),
        ],
        size,
    );
    let rows = affine()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            (
                spec.name.to_string(),
                vec![
                    penalty_pct(chunks[0][i], chunks[2][i]),
                    penalty_pct(chunks[0][i], chunks[3][i]),
                    penalty_pct(chunks[1][i], chunks[4][i]),
                ],
            )
        })
        .collect();
    SeriesTable {
        series: vec![
            "Drop-in NVM".into(),
            "No Optimization".into(),
            "With Optimization".into(),
        ],
        rows,
    }
    .with_average()
}

/// One benchmark's per-transformation contribution split (Fig. 6).
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: String,
    /// Share of the penalty reduction due to vectorization, in percent.
    pub vectorization_pct: f64,
    /// Share due to prefetching, in percent.
    pub prefetching_pct: f64,
    /// Share due to the "others" intrinsics, in percent.
    pub others_pct: f64,
}

/// Fig. 6: contribution of each transformation family to the penalty
/// reduction on the VWB organization.
///
/// Each family's contribution is the penalty reduction it achieves alone;
/// shares are normalized to 100 % as in the paper's stacked bars.
pub fn fig6(size: ProblemSize) -> Vec<Fig6Row> {
    let org = DCacheOrganization::nvm_vwb_default();
    // One sweep item per benchmark; each item runs its leave-one-out
    // decomposition (up to a dozen simulations) so the grid shards at
    // benchmark granularity.
    let rows_in = affine();
    let shares = SweepRunner::current().map_ok(&rows_in, |_, spec| {
        let b = spec.workload;
        // Leave-one-out: a family's contribution is how much the penalty
        // worsens when it alone is removed from the full set (this credits
        // interactions, e.g. alignment x vectorization, to "others").
        let penalty_of = |t: Transformations| -> f64 {
            let matched = run_benchmark(DCacheOrganization::SramBaseline, b, size, t);
            let r = run_benchmark(org, b, size, t);
            penalty_pct(matched.cycles(), r.cycles())
        };
        let p_full = penalty_of(Transformations::all());
        let without = |f: fn(&mut Transformations)| -> f64 {
            let mut t = Transformations::all();
            f(&mut t);
            (penalty_of(t) - p_full).max(0.0)
        };
        let mut v = without(|t| t.vectorize = false);
        let mut p = without(|t| t.prefetch = false);
        let mut o = without(|t| t.others = false);
        if v + p + o < 0.1 {
            // Penalty already negligible; split by the gross cycles each
            // family saves on the NVM platform itself.
            let cycles_of = |t: Transformations| run_benchmark(org, b, size, t).cycles() as f64;
            let all = cycles_of(Transformations::all());
            let saved = |f: fn(&mut Transformations)| -> f64 {
                let mut t = Transformations::all();
                f(&mut t);
                (cycles_of(t) - all).max(0.0)
            };
            v = saved(|t| t.vectorize = false);
            p = saved(|t| t.prefetch = false);
            o = saved(|t| t.others = false);
        }
        let total = (v + p + o).max(1e-9);
        (v / total * 100.0, p / total * 100.0, o / total * 100.0)
    });

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for (spec, (v, p, o)) in rows_in.iter().zip(shares) {
        sums[0] += v;
        sums[1] += p;
        sums[2] += o;
        rows.push(Fig6Row {
            name: spec.name.to_string(),
            vectorization_pct: v,
            prefetching_pct: p,
            others_pct: o,
        });
    }
    let n = rows_in.len() as f64;
    rows.push(Fig6Row {
        name: "AVERAGE".into(),
        vectorization_pct: sums[0] / n,
        prefetching_pct: sums[1] / n,
        others_pct: sums[2] / n,
    });
    rows
}

/// Fig. 7: penalty of the optimized VWB organization for 1, 2 and 4 Kbit
/// buffers.
pub fn fig7(size: ProblemSize) -> SeriesTable {
    let sizes = [1024usize, 2048, 4096];
    let mut combos = vec![(DCacheOrganization::SramBaseline, Transformations::all())];
    combos.extend(sizes.iter().map(|&bits| {
        (
            DCacheOrganization::NvmVwb(VwbConfig {
                capacity_bits: bits,
                ..VwbConfig::default()
            }),
            Transformations::all(),
        )
    }));
    let chunks = sweep_combos(&combos, size);
    let rows = affine()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let cols = (1..combos.len())
                .map(|c| penalty_pct(chunks[0][i], chunks[c][i]))
                .collect();
            (spec.name.to_string(), cols)
        })
        .collect();
    SeriesTable {
        series: sizes
            .iter()
            .map(|s| format!("VWB = {} KBit", s / 1024))
            .collect(),
        rows,
    }
    .with_average()
}

/// Fig. 8: the optimized proposal vs the EMSHR and L0 baselines (all
/// 2 Kbit, fully associative).
pub fn fig8(size: ProblemSize) -> SeriesTable {
    let combos = [
        (DCacheOrganization::SramBaseline, Transformations::all()),
        (
            DCacheOrganization::nvm_vwb_default(),
            Transformations::all(),
        ),
        (
            DCacheOrganization::nvm_emshr_default(),
            Transformations::all(),
        ),
        (DCacheOrganization::nvm_l0_default(), Transformations::all()),
    ];
    let chunks = sweep_combos(&combos, size);
    let rows = affine()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let cols = (1..combos.len())
                .map(|c| penalty_pct(chunks[0][i], chunks[c][i]))
                .collect();
            (spec.name.to_string(), cols)
        })
        .collect();
    SeriesTable {
        series: vec!["Our Proposal".into(), "EMSHR".into(), "L0-Cache".into()],
        rows,
    }
    .with_average()
}

/// One benchmark's optimization gains on both platforms (Fig. 9).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// Speed-up of the SRAM baseline from the code transformations, in
    /// percent of its untransformed runtime.
    pub baseline_gain_pct: f64,
    /// Speed-up of the NVM + VWB proposal from the transformations.
    pub proposal_gain_pct: f64,
}

/// Fig. 9: effect of the code transformations on the SRAM baseline vs on
/// the proposal (performance *gain*, not penalty).
pub fn fig9(size: ProblemSize) -> Vec<Fig9Row> {
    let chunks = sweep_combos(
        &[
            (DCacheOrganization::SramBaseline, Transformations::none()),
            (DCacheOrganization::SramBaseline, Transformations::all()),
            (
                DCacheOrganization::nvm_vwb_default(),
                Transformations::none(),
            ),
            (
                DCacheOrganization::nvm_vwb_default(),
                Transformations::all(),
            ),
        ],
        size,
    );
    let gain = |plain: u64, opt: u64| (plain as f64 - opt as f64) / plain as f64 * 100.0;
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 2];
    for (i, spec) in affine().iter().enumerate() {
        let row = Fig9Row {
            name: spec.name.to_string(),
            baseline_gain_pct: gain(chunks[0][i], chunks[1][i]),
            proposal_gain_pct: gain(chunks[2][i], chunks[3][i]),
        };
        sums[0] += row.baseline_gain_pct;
        sums[1] += row.proposal_gain_pct;
        rows.push(row);
    }
    let n = affine().len() as f64;
    rows.push(Fig9Row {
        name: "AVERAGE".into(),
        baseline_gain_pct: sums[0] / n,
        proposal_gain_pct: sums[1] / n,
    });
    rows
}

/// Re-exported contribution row alias used by the figures printer.
pub type ContributionRow = Fig6Row;

/// Keeps the org-major grid builder visible to callers that sweep one
/// transformation set over several organizations (examples, extensions).
pub use parallel::grid as org_grid;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_all_benchmarks_plus_average() {
        let rows = fig1(ProblemSize::Mini);
        assert_eq!(rows.len(), affine().len() + 1);
        assert_eq!(rows.last().unwrap().name, "AVERAGE");
        // Every drop-in penalty is positive.
        for r in &rows {
            assert!(r.penalty_pct > 0.0, "{}: {}", r.name, r.penalty_pct);
        }
    }

    #[test]
    fn fig4_shares_sum_to_100() {
        for row in fig4(ProblemSize::Mini) {
            assert!(
                (row.read_pct + row.write_pct - 100.0).abs() < 1e-6,
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn fig6_shares_sum_to_100() {
        for row in fig6(ProblemSize::Mini) {
            let sum = row.vectorization_pct + row.prefetching_pct + row.others_pct;
            assert!((sum - 100.0).abs() < 1e-6, "{}: {sum}", row.name);
        }
    }
}

//! `sim --explain`: cycle-level penalty attribution for one organization.
//!
//! The aggregate statistics dump says *how much* slower an organization
//! is than the SRAM baseline; this module says *where the cycles went*:
//! which stalls dominate, how much the front-end buffer absorbed, how
//! deep the MSHRs and write buffers ran, which bank carries the write
//! traffic, and what the per-set wear map implies for array lifetime.
//! It is the consumer of the [`sttcache_mem::telemetry`] registry — the
//! measured run executes on the calling thread with the telemetry gate
//! armed, so the thread-local registry holds exactly that run's records.

use crate::trace_cache;
use sttcache::{DCacheOrganization, PlatformConfig, RunResult};
use sttcache_mem::telemetry::{self, Histogram, TelemetrySnapshot};
use sttcache_tech::{wear_uniformity, CellKind, CellModel, EnduranceModel};
use sttcache_workloads::{ProblemSize, Transformations, Workload};

/// The modelled core clock, for converting cycles to wall-clock when
/// projecting lifetime from the wear map.
const CLOCK_HZ: f64 = 1e9;

/// A measured run, its SRAM reference and everything the telemetry
/// registry captured while the measured run executed.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The measured organization's run.
    pub result: RunResult,
    /// The SRAM baseline on the same binary.
    pub baseline: RunResult,
    /// Telemetry drained from the measured run.
    pub snapshot: TelemetrySnapshot,
    /// The workload label (`bench (size, opts ...)`).
    pub workload: String,
}

/// Runs `cfg` with the telemetry gate armed and the SRAM baseline for
/// reference, and returns both plus the drained registry.
///
/// The measured run executes on the *calling* thread so the thread-local
/// registry captures it; call this before any other simulation of the
/// same configuration in this process, otherwise the run is answered
/// from the result memo and the registry stays empty (the renderer says
/// so rather than crashing).
pub fn explain(
    cfg: &PlatformConfig,
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
) -> Explanation {
    let workload = workload.into();
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    let _ = telemetry::take(); // start from a clean registry
    let result = trace_cache::run_config(cfg, workload, size, transforms);
    telemetry::set_enabled(was_enabled);
    let snapshot = telemetry::take();

    let mut base_cfg = PlatformConfig::new(DCacheOrganization::SramBaseline);
    base_cfg.icache = cfg.icache;
    let baseline = trace_cache::run_config(&base_cfg, workload, size, transforms);

    Explanation {
        result,
        baseline,
        snapshot,
        workload: format!(
            "{} ({:?}, opts {})",
            crate::workload::label_of(workload),
            size,
            transforms
        ),
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn depth_line(out: &mut String, label: &str, h: &Histogram) {
    out.push_str(&format!(
        "  {label:<24} p50 {}, p90 {}, max {} (mean {:.2}, {} samples)\n",
        h.percentile(50),
        h.percentile(90),
        h.max,
        h.mean(),
        h.total,
    ));
}

impl Explanation {
    /// Penalty of the measured run vs the SRAM baseline, in percent.
    pub fn penalty_pct(&self) -> f64 {
        sttcache::penalty_pct(self.baseline.cycles(), self.result.cycles())
    }

    /// Renders the attribution report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let r = &self.result;
        let cycles = r.core.cycles;
        out.push_str(&format!(
            "== explain: {} on {} ==\n",
            r.organization.name(),
            self.workload
        ));
        out.push_str(&format!(
            "penalty vs SRAM baseline: {:+.1}% ({} vs {} cycles)\n\n",
            self.penalty_pct(),
            r.core.cycles,
            self.baseline.core.cycles,
        ));

        out.push_str("stall attribution (of total cycles):\n");
        for (label, stall) in [
            ("load-data stalls", r.core.read_stall_cycles),
            ("store-buffer-full stalls", r.core.write_stall_cycles),
            ("branch-refill stalls", r.core.branch_stall_cycles),
            ("instruction-fetch stalls", r.core.fetch_stall_cycles),
        ] {
            out.push_str(&format!(
                "  {label:<24} {stall:>12} cycles ({:.1}%)\n",
                pct(stall, cycles)
            ));
        }
        out.push('\n');

        // Front-end buffer stages (VWB / L0 / EMSHR), outermost first.
        for stage in &r.buffers {
            let s = &stage.stats;
            out.push_str(&format!("front-end stage '{}':\n", stage.kind));
            out.push_str(&format!(
                "  absorbed {:.1}% of loads ({} of {}) at buffer speed\n",
                pct(s.read_hits, s.reads),
                s.read_hits,
                s.reads,
            ));
            if s.writes > 0 {
                out.push_str(&format!(
                    "  absorbed {:.1}% of stores ({} of {}) before the DL1\n",
                    pct(s.write_hits, s.writes),
                    s.write_hits,
                    s.writes,
                ));
            }
            if let Some(h) = self.snapshot.histogram(stage.kind, "depth") {
                depth_line(&mut out, "occupancy:", h);
            }
            if let Some(h) = self.snapshot.histogram(stage.kind, "coalesce_run") {
                out.push_str(&format!(
                    "  write-coalescing runs:   p50 {}, max {} stores per line (mean {:.2})\n",
                    h.percentile(50),
                    h.max,
                    h.mean(),
                ));
            }
            out.push('\n');
        }

        out.push_str("DL1 pressure:\n");
        if let Some(h) = self.snapshot.histogram("dl1", "mshr_occupancy") {
            depth_line(&mut out, "MSHR occupancy:", h);
        }
        if let Some(h) = self.snapshot.histogram("dl1", "write_buffer_depth") {
            depth_line(&mut out, "write-buffer depth:", h);
        }
        if let Some(h) = self.snapshot.histogram("store-buffer", "depth") {
            depth_line(&mut out, "core store buffer:", h);
        }
        if let Some(w) = self.snapshot.indexed_for("dl1", "bank_writes") {
            if let Some((bank, count)) = w.hottest() {
                out.push_str(&format!(
                    "  bank write shares:       bank {bank} carries {:.1}% of {} array writes\n",
                    pct(count, w.total()),
                    w.total(),
                ));
            }
        }
        if let Some(c) = self.snapshot.indexed_for("dl1", "bank_conflict_cycles") {
            if let Some((bank, cyc)) = c.hottest() {
                out.push_str(&format!(
                    "  bank conflicts:          {} cycles total, {:.1}% on bank {bank}\n",
                    r.dl1.bank_conflict_cycles,
                    pct(cyc, c.total()),
                ));
            }
        } else {
            out.push_str(&format!(
                "  bank conflicts:          {} cycles total\n",
                r.dl1.bank_conflict_cycles
            ));
        }
        out.push('\n');

        out.push_str(&self.render_wear_map());
        if self.snapshot.is_empty() {
            out.push_str(
                "\nnote: the telemetry registry was empty — the measured run was \
                 probably served from the result memo; explain it first in this process.\n",
            );
        }
        out
    }

    /// The per-set wear-map section: write distribution over the DL1
    /// sets and the lifetime it implies for an STT-MRAM array.
    fn render_wear_map(&self) -> String {
        let mut out = String::from("DL1 wear map (per-set array writes):\n");
        let Some(wear) = self.snapshot.indexed_for("dl1", "set_writes") else {
            out.push_str("  no array writes recorded\n");
            return out;
        };
        let total = wear.total();
        let sets = wear.counts.len();
        if total == 0 || sets == 0 {
            out.push_str("  no array writes recorded\n");
            return out;
        }
        let uniformity = wear_uniformity(&wear.counts);
        let (hot_set, hot_writes) = wear.hottest().expect("total > 0");
        out.push_str(&format!(
            "  {total} writes over {sets} observed sets; hottest set {hot_set} takes {:.1}% \
             (perfectly uniform would be {:.1}%)\n",
            pct(hot_writes, total),
            100.0 / sets as f64,
        ));
        out.push_str(&format!("  wear uniformity (Jain):  {uniformity:.3}\n"));
        // Project lifetime as if this workload looped forever at the
        // modelled 1 GHz clock, on an STT-MRAM cell per Table I.
        let seconds = self.result.core.cycles as f64 / CLOCK_HZ;
        if seconds > 0.0 {
            let model = EnduranceModel::new(CellModel::new(CellKind::SttMram), sets);
            let lifetime = model.lifetime_from_wear_map(&wear.counts, seconds);
            out.push_str(&format!(
                "  projected STT-MRAM lifetime at 1 GHz, 100% duty: {:.1} years\n",
                lifetime.years(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explanation_attributes_the_vwb_penalty() {
        // A 3-entry VWB no other test sweeps, so the result memo is
        // guaranteed cold and the registry captures the measured run.
        let cfg = PlatformConfig::new(DCacheOrganization::NvmVwb(sttcache::VwbConfig {
            capacity_bits: 1536,
            ..sttcache::VwbConfig::default()
        }));
        let workload = crate::workload::resolve("2mm").expect("catalog kernel");
        let e = explain(&cfg, workload, ProblemSize::Mini, Transformations::none());
        // The gate is restored to its pre-explain state.
        assert!(!telemetry::enabled() || std::env::var("STTCACHE_TELEMETRY").is_ok());
        // The measured run was cold, so the registry captured it.
        assert!(!e.snapshot.is_empty());
        assert!(e.snapshot.indexed_for("dl1", "set_writes").is_some());
        assert!(e.snapshot.histogram("dl1", "mshr_occupancy").is_some());
        assert!(e.penalty_pct().is_finite());

        let text = e.render();
        for needle in [
            "== explain: NVM + VWB",
            "penalty vs SRAM baseline:",
            "stall attribution",
            "front-end stage 'vwb'",
            "DL1 pressure:",
            "bank write shares:",
            "DL1 wear map",
            "wear uniformity (Jain):",
            "projected STT-MRAM lifetime",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
        assert!(!text.contains("registry was empty"));
        // Explaining does not perturb the simulation: a fresh disarmed
        // run of the same grid point is bit-identical.
        telemetry::set_enabled(false);
        let again =
            trace_cache::run_config(&cfg, workload, ProblemSize::Mini, Transformations::none());
        assert_eq!(again, e.result);
    }
}

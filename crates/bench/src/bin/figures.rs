//! Regenerates the paper's tables and figures as text.
//!
//! ```text
//! figures [table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ext|catalog|multicore|irregular|all]
//!         [--small] [--csv] [--jobs N | --serial]
//!         [--no-trace-cache] [--no-compiled-replay]
//!         [--profile] [--profile-json PATH] [--telemetry-json PATH]
//! ```
//!
//! Defaults to `all` at the mini problem size; `--small` runs the larger
//! figure-generation size; `--csv` emits machine-readable output for the
//! per-benchmark figures. Sweeps shard across worker threads
//! (`STTCACHE_THREADS` or the machine's parallelism); `--jobs N` pins the
//! worker count and `--serial` forces one worker. Output is byte-identical
//! at every worker count — results merge by grid index, not completion
//! order.
//!
//! Grid points execute through the record-once/replay-many trace cache
//! (`STTCACHE_TRACE_CACHE_BYTES` caps its memory); traces up to the
//! admission ceiling (`STTCACHE_COMPILED_MAX_EVENTS`, default 16 Ki
//! events, `0` = unlimited) replay through the compiled
//! structure-of-arrays fast path and the rest replay interpreted.
//! `--no-compiled-replay` forces interpreted replay everywhere and
//! `--no-trace-cache` reverts to direct kernel execution — same output
//! in every mode, only the speed differs. `--profile`
//! prints per-phase wall-clock (record/compile/compiled replay/replay/
//! direct), cache hit/miss counts and per-figure timings to stderr, and
//! `--profile-json PATH` writes the same data as JSON; stdout stays
//! byte-identical in every mode. `--telemetry-json PATH` arms the span
//! tracer and the component telemetry gate (`STTCACHE_TELEMETRY`) and
//! writes one Chrome `trace_event` span per trace-cache phase and per
//! printed artifact to PATH, loadable in `chrome://tracing`/Perfetto.

use sttcache_bench::{figures, parallel, profile, spans, trace_cache, SweepRunner};
use sttcache_workloads::ProblemSize;

fn usage() -> ! {
    eprintln!(
        "usage: figures [table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ext|catalog|multicore|irregular|all] \
         [--small] [--csv] [--jobs N | --serial] [--no-trace-cache] \
         [--no-compiled-replay] [--profile] [--profile-json PATH] \
         [--telemetry-json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size = if args.iter().any(|a| a == "--small") {
        ProblemSize::Small
    } else {
        ProblemSize::Mini
    };

    // Worker-count flags apply to every sweep this process runs.
    let mut what: Option<&str> = None;
    let mut csv = false;
    let mut profile_text = false;
    let mut profile_json: Option<String> = None;
    let mut telemetry_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--small" => {}
            "--csv" => csv = true,
            "--serial" => parallel::set_jobs(1),
            "--jobs" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                parallel::set_jobs(n);
            }
            "--no-trace-cache" => trace_cache::set_enabled(false),
            "--no-compiled-replay" => trace_cache::set_compiled_enabled(false),
            "--profile" => profile_text = true,
            "--profile-json" => {
                i += 1;
                profile_json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--telemetry-json" => {
                i += 1;
                telemetry_json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
            other => what = Some(other),
        }
        i += 1;
    }
    let what = what.unwrap_or("all");
    let profiling = profile_text || profile_json.is_some();
    // Span tracing rides the timed artifact path; arm it (and the
    // component telemetry gate, for overhead realism) before any sweep
    // runs. Stdout stays byte-identical — all telemetry goes to PATH.
    if telemetry_json.is_some() {
        spans::arm();
        sttcache_mem::telemetry::set_enabled(true);
    }
    let tracing = telemetry_json.is_some();

    if csv {
        if figures::print_csv(what, size) {
            return;
        }
        eprintln!("'{what}' has no CSV form (use a fig1-fig9 artifact)");
        std::process::exit(2);
    }

    let start = std::time::Instant::now();
    let timed: Vec<(&'static str, f64)> = match what {
        "all" if profiling || tracing => figures::print_all_timed(size),
        "all" => {
            figures::print_all(size);
            Vec::new()
        }
        // The catalog sweep is opt-in only: it is not part of `all`, so
        // the committed figures output stays stable as the catalog grows.
        "catalog" => {
            let t0 = std::time::Instant::now();
            figures::print_catalog(size);
            vec![("catalog", t0.elapsed().as_secs_f64())]
        }
        // Opt-in for the same reason as `catalog`.
        "multicore" => {
            let t0 = std::time::Instant::now();
            figures::print_multicore(size);
            vec![("multicore", t0.elapsed().as_secs_f64())]
        }
        // Opt-in for the same reason as `catalog`: the irregular family
        // grows independently of the committed `all` output.
        "irregular" => {
            let t0 = std::time::Instant::now();
            figures::print_irregular(size);
            vec![("irregular", t0.elapsed().as_secs_f64())]
        }
        single => {
            let printer = figures::artifacts()
                .into_iter()
                .find(|(name, _)| *name == single)
                .map(|(_, print)| print)
                .unwrap_or_else(|| {
                    eprintln!("unknown figure '{single}'");
                    usage();
                });
            let t0 = std::time::Instant::now();
            printer(size);
            vec![(
                // `artifacts` names are 'static; re-borrow the matching one.
                figures::artifacts()
                    .iter()
                    .find(|(name, _)| *name == single)
                    .expect("found above")
                    .0,
                t0.elapsed().as_secs_f64(),
            )]
        }
    };

    if profiling {
        let report = profile::ProfileReport {
            figures: timed,
            total_seconds: start.elapsed().as_secs_f64(),
            workers: SweepRunner::current().workers(),
            cache_enabled: trace_cache::enabled(),
            phases: profile::snapshot(),
        };
        if profile_text {
            eprint!("{}", report.render_text());
        }
        if let Some(path) = profile_json {
            if let Err(e) = std::fs::write(&path, report.render_json()) {
                eprintln!("cannot write profile JSON to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = telemetry_json {
        let (events, dropped) = spans::drain();
        let json = spans::export_chrome_json(&events, dropped);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write telemetry JSON to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "telemetry: wrote {} spans to {path} (chrome://tracing format)",
            events.len()
        );
    }
}

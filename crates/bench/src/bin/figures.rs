//! Regenerates the paper's tables and figures as text.
//!
//! ```text
//! figures [table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ext|all]
//!         [--small] [--csv] [--jobs N | --serial]
//! ```
//!
//! Defaults to `all` at the mini problem size; `--small` runs the larger
//! figure-generation size; `--csv` emits machine-readable output for the
//! per-benchmark figures. Sweeps shard across worker threads
//! (`STTCACHE_THREADS` or the machine's parallelism); `--jobs N` pins the
//! worker count and `--serial` forces one worker. Output is byte-identical
//! at every worker count — results merge by grid index, not completion
//! order.

use sttcache_bench::{figures, parallel};
use sttcache_workloads::ProblemSize;

fn usage() -> ! {
    eprintln!(
        "usage: figures [table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ext|all] \
         [--small] [--csv] [--jobs N | --serial]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size = if args.iter().any(|a| a == "--small") {
        ProblemSize::Small
    } else {
        ProblemSize::Mini
    };

    // Worker-count flags apply to every sweep this process runs.
    let mut what: Option<&str> = None;
    let mut csv = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--small" => {}
            "--csv" => csv = true,
            "--serial" => parallel::set_jobs(1),
            "--jobs" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                parallel::set_jobs(n);
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
            other => what = Some(other),
        }
        i += 1;
    }
    let what = what.unwrap_or("all");

    if csv {
        if figures::print_csv(what, size) {
            return;
        }
        eprintln!("'{what}' has no CSV form (use a fig1-fig9 artifact)");
        std::process::exit(2);
    }

    match what {
        "table1" => figures::print_table1(),
        "fig1" => figures::print_fig1(size),
        "fig3" => figures::print_fig3(size),
        "fig4" => figures::print_fig4(size),
        "fig5" => figures::print_fig5(size),
        "fig6" => figures::print_fig6(size),
        "fig7" => figures::print_fig7(size),
        "fig8" => figures::print_fig8(size),
        "fig9" => figures::print_fig9(size),
        "ext" => figures::print_extensions(size),
        "all" => figures::print_all(size),
        other => {
            eprintln!("unknown figure '{other}'");
            usage();
        }
    }
}

//! Regenerates the paper's tables and figures as text.
//!
//! ```text
//! figures [table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ext|all] [--small] [--csv]
//! ```
//!
//! Defaults to `all` at the mini problem size; `--small` runs the larger
//! figure-generation size; `--csv` emits machine-readable output for the
//! per-benchmark figures.

use sttcache_bench::figures;
use sttcache_workloads::ProblemSize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size = if args.iter().any(|a| a == "--small") {
        ProblemSize::Small
    } else {
        ProblemSize::Mini
    };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    if args.iter().any(|a| a == "--csv") {
        if figures::print_csv(what, size) {
            return;
        }
        eprintln!("'{what}' has no CSV form (use a fig1-fig9 artifact)");
        std::process::exit(2);
    }

    match what {
        "table1" => figures::print_table1(),
        "fig1" => figures::print_fig1(size),
        "fig3" => figures::print_fig3(size),
        "fig4" => figures::print_fig4(size),
        "fig5" => figures::print_fig5(size),
        "fig6" => figures::print_fig6(size),
        "fig7" => figures::print_fig7(size),
        "fig8" => figures::print_fig8(size),
        "fig9" => figures::print_fig9(size),
        "ext" => figures::print_extensions(size),
        "all" => figures::print_all(size),
        other => {
            eprintln!("unknown figure '{other}'");
            eprintln!(
                "usage: figures [table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ext|all] [--small]"
            );
            std::process::exit(2);
        }
    }
}

//! `sim` — run one simulation with an arbitrary configuration and dump
//! gem5-style statistics.
//!
//! ```text
//! sim --bench gemm --org vwb --opts v+p+o [--size small] [--vwb-bits 4096]
//!     [--icache nvm] [--baseline] [--explain <org>] [--jobs N | --serial]
//! sim --trace-file recorded.trace --org vwb --baseline
//! ```
//!
//! * `--org`: any catalog CLI key (`sram` | `nvm` | `vwb` | `l0` |
//!   `emshr` | `hybrid`; see `sttcache::catalog`)
//! * `--opts`: `none` | `all` | any `+`-joined subset of `v`, `p`, `o`
//! * `--baseline`: additionally run the SRAM platform on the same binary
//!   and print the penalty. The measured and baseline simulations are
//!   independent, so they run through the sweep engine (two workers
//!   unless `--serial` / `--jobs 1` pins it down).
//! * `--explain <org>`: run `<org>` with the telemetry registry armed
//!   and append a penalty-attribution report — stall decomposition,
//!   buffer occupancy percentiles, per-bank write shares and the per-set
//!   wear map with its projected STT-MRAM lifetime — after the stats
//!   dump. Implies the SRAM baseline run.
//! * `--cores N`: run an N-core multi-programmed mix over one shared
//!   banked L2 (the default staggered kernel mix unless `--mix` names
//!   one). `--explain` then attributes per-core contention penalties and
//!   shared-bank conflict shares instead of the single-core report.
//! * `--mix <spec>`: the mix grammar is `workload[@offset][:org]` entries
//!   joined by `+`, e.g. `gemm:vwb+mvt@500:sram` or
//!   `gemm+file:recorded.trace@64:sram`; entries without `:org` use
//!   `--org`. Implies `--cores <entry count>`.
//! * `--l2-banks N`: bank the shared L2 `N` ways (multi-core only).
//! * `--trace-file <path>`: replay a recorded trace file (written by
//!   `Trace::write_to`, e.g. the `trace_sweep` example) instead of a
//!   catalog kernel. The file is content-hashed into a workload identity
//!   and routed through the full replay stack — trace cache, compiled
//!   replay, result memo — exactly like a kernel-backed workload.

use sttcache::{
    DCacheOrganization, DlOneTechnology, IcacheConfig, Platform, PlatformConfig, RunResult,
    VwbConfig,
};
use sttcache_bench::{explain, multicore, parallel, profile, trace_cache, workload, SweepRunner};
use sttcache_workloads::{catalog, ProblemSize, Transformations, Workload};

struct Options {
    bench: Option<Workload>,
    org: DCacheOrganization,
    size: ProblemSize,
    opts: Transformations,
    icache: Option<IcacheConfig>,
    baseline: bool,
    profile: bool,
    explain: bool,
    cores: usize,
    mix: Option<String>,
    l2_banks: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sim --bench <name> | --trace-file <path> [--org {}] [--size mini|small]\n\
         \x20          [--opts none|all|v+p+o subset] [--vwb-bits N] [--icache sram|nvm]\n\
         \x20          [--baseline] [--explain [org]] [--jobs N | --serial]\n\
         \x20          [--no-trace-cache] [--no-compiled-replay] [--profile]\n\
         \x20          [--cores N] [--mix workload[@offset][:org]+...] [--l2-banks N]\n\
         workloads: {} or file:<path>",
        sttcache::catalog::catalog()
            .iter()
            .map(|e| e.cli)
            .collect::<Vec<_>>()
            .join("|"),
        catalog::catalog()
            .iter()
            .map(|w| w.cli)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn resolve_workload(token: &str) -> Workload {
    workload::resolve(token).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn parse_opts(spec: &str) -> Option<Transformations> {
    match spec {
        "none" => Some(Transformations::none()),
        "all" => Some(Transformations::all()),
        other => {
            let mut t = Transformations::none();
            for part in other.split('+') {
                match part {
                    "v" => t.vectorize = true,
                    "p" => t.prefetch = true,
                    "o" => t.others = true,
                    _ => return None,
                }
            }
            Some(t)
        }
    }
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = None;
    let mut org = "nvm".to_string();
    let mut size = ProblemSize::Mini;
    let mut opts = Transformations::none();
    let mut vwb_bits = 2048usize;
    let mut icache = None;
    let mut baseline = false;
    let mut profile = false;
    let mut explain = false;
    let mut cores = 1usize;
    let mut mix = None;
    let mut l2_banks = None;

    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = Some(resolve_workload(&next(&mut i))),
            "--trace-file" => {
                bench = Some(resolve_workload(&format!("file:{}", next(&mut i))));
            }
            "--org" => org = next(&mut i),
            "--size" => {
                size = match next(&mut i).as_str() {
                    "mini" => ProblemSize::Mini,
                    "small" => ProblemSize::Small,
                    _ => usage(),
                }
            }
            "--opts" => opts = parse_opts(&next(&mut i)).unwrap_or_else(|| usage()),
            "--vwb-bits" => vwb_bits = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--icache" => {
                let tech = match next(&mut i).as_str() {
                    "sram" => DlOneTechnology::Sram,
                    "nvm" => DlOneTechnology::SttMram,
                    _ => usage(),
                };
                icache = Some(IcacheConfig {
                    technology: tech,
                    ..IcacheConfig::default()
                });
            }
            "--baseline" => baseline = true,
            "--explain" => {
                explain = true;
                // The org operand is optional: bare `--explain` explains
                // the `--org` selection (or the whole mix when
                // `--cores`/`--mix` is in play).
                if let Some(arg) = args.get(i + 1) {
                    if !arg.starts_with("--") {
                        i += 1;
                        org = arg.clone();
                    }
                }
            }
            "--cores" => {
                cores = next(&mut i).parse().unwrap_or_else(|_| usage());
                if cores == 0 {
                    usage();
                }
            }
            "--mix" => mix = Some(next(&mut i)),
            "--l2-banks" => {
                let n: usize = next(&mut i).parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                l2_banks = Some(n);
            }
            "--no-trace-cache" => trace_cache::set_enabled(false),
            "--no-compiled-replay" => trace_cache::set_compiled_enabled(false),
            "--profile" => profile = true,
            "--serial" => parallel::set_jobs(1),
            "--jobs" => {
                let n: usize = next(&mut i).parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                parallel::set_jobs(n);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
        i += 1;
    }

    // `--vwb-bits` overrides the catalog's default VWB size; every other
    // key resolves straight from the catalog.
    let org = match org.as_str() {
        "vwb" => DCacheOrganization::NvmVwb(VwbConfig {
            capacity_bits: vwb_bits,
            ..VwbConfig::default()
        }),
        key => {
            sttcache::by_cli(key)
                .unwrap_or_else(|| usage())
                .organization
        }
    };
    // Single-core runs need `--bench`; a multi-core mix names its own
    // kernels (the default mix if `--mix` is absent).
    if bench.is_none() && cores == 1 && mix.is_none() {
        usage();
    }
    Options {
        bench,
        org,
        size,
        opts,
        icache,
        baseline,
        profile,
        explain,
        cores,
        mix,
        l2_banks,
    }
}

/// The `--cores`/`--mix` path: one co-scheduled run over the shared
/// banked L2, per-core stats blocks, and (with `--explain`) per-core
/// contention attribution instead of the single-core wear report.
fn run_multicore(o: &Options) {
    let mix = match &o.mix {
        Some(spec) => multicore::MixSpec::parse(spec).unwrap_or_else(|e| {
            eprintln!("bad --mix: {e}");
            std::process::exit(2);
        }),
        None => multicore::MixSpec::default_mix(o.cores),
    };
    if o.mix.is_some() && o.cores > 1 && mix.cores() != o.cores {
        eprintln!(
            "--cores {} disagrees with the {}-entry --mix",
            o.cores,
            mix.cores()
        );
        std::process::exit(2);
    }
    if let Err(e) = multicore::mix_platform(&mix, o.org, o.l2_banks) {
        eprintln!("invalid configuration: {e}");
        std::process::exit(1);
    }
    println!(
        "# sim: {}-core mix {} over shared L2 ({:?}, opts {})",
        mix.cores(),
        mix.label(),
        o.size,
        o.opts
    );
    if o.explain {
        let e = multicore::explain_mix(&mix, o.org, o.size, o.opts, o.l2_banks);
        print!("{}", multicore::mix_stats_text(&e.result, &mix));
        println!();
        print!("{}", e.render());
    } else {
        let r = multicore::run_mix(&mix, o.org, o.size, o.opts, o.l2_banks);
        print!("{}", multicore::mix_stats_text(&r, &mix));
    }
}

fn main() {
    let o = parse_args();
    let start = std::time::Instant::now();
    if o.cores > 1 || o.mix.is_some() {
        run_multicore(&o);
        if o.profile {
            let report = profile::ProfileReport {
                figures: Vec::new(),
                total_seconds: start.elapsed().as_secs_f64(),
                workers: SweepRunner::current().workers(),
                cache_enabled: trace_cache::enabled(),
                phases: profile::snapshot(),
            };
            eprint!("{}", report.render_text());
        }
        return;
    }
    let bench = o.bench.unwrap_or_else(|| usage());
    let mut cfg = PlatformConfig::new(o.org);
    cfg.icache = o.icache;
    if let Err(e) = Platform::with_config(cfg.clone()) {
        eprintln!("invalid configuration: {e}");
        std::process::exit(1);
    }

    // The measured run and the optional baseline are independent grid
    // points; the sweep engine shards them and hands the results back in
    // submission order. `--explain` instead runs the measured
    // organization on this thread with the telemetry registry armed (the
    // registry is thread-local, so a sweep worker's records would be
    // lost) and the SRAM baseline after it.
    let (results, explanation): (Vec<RunResult>, _) = if o.explain {
        let e = explain::explain(&cfg, bench, o.size, o.opts);
        (vec![e.result.clone(), e.baseline.clone()], Some(e))
    } else {
        let mut configs = vec![cfg];
        if o.baseline {
            let mut base_cfg = PlatformConfig::new(DCacheOrganization::SramBaseline);
            base_cfg.icache = o.icache;
            configs.push(base_cfg);
        }
        let results = SweepRunner::current().map_ok(&configs, |_, cfg| {
            trace_cache::run_config(cfg, bench, o.size, o.opts)
        });
        (results, None)
    };

    let result = &results[0];
    println!(
        "# sim: {} on {} ({:?}, opts {})",
        workload::label_of(bench),
        o.org.name(),
        o.size,
        o.opts
    );
    print!("{}", result.stats_text());

    if let Some(base) = results.get(1) {
        println!(
            "{:<40} {:>16.2} # percent vs SRAM baseline on the same binary",
            "penalty.vs_sram_pct",
            sttcache::penalty_pct(base.cycles(), result.cycles())
        );
    }

    if let Some(e) = &explanation {
        println!();
        print!("{}", e.render());
    }

    if o.profile {
        let report = profile::ProfileReport {
            figures: Vec::new(),
            total_seconds: start.elapsed().as_secs_f64(),
            workers: SweepRunner::current().workers(),
            cache_enabled: trace_cache::enabled(),
            phases: profile::snapshot(),
        };
        eprint!("{}", report.render_text());
    }
}

//! Differential oracle checker and adversarial trace fuzzer.
//!
//! ```text
//! sttcache-check [--quick] [--seed N] [--cases N] [--events N]
//!                [--kind NAME|compiled|lane|multicore|irregular] [--shrink] [--list-kinds]
//! ```
//!
//! Every generated trace runs on every catalog L1 D-cache organization with
//! the runtime invariant gate on; each run is mirrored into the
//! functional shadow oracle, drained, and cross-checked, and the
//! timing-independent signatures of all organizations must match the
//! SRAM baseline's exactly.
//!
//! `--quick` (the default with no `--seed`) runs a fixed-seed battery —
//! deterministic, a few seconds, suitable for CI. `--seed N` runs
//! `--cases` randomized cases per adversary family derived from `N`.
//! On failure the offending `(kind, seed, events)` triple is printed for
//! replay; `--shrink` additionally minimizes the first failing trace and
//! prints the surviving events. Exit status 1 on any failure.
//!
//! `--kind compiled` switches the check itself: every adversary family
//! still generates traces, but each one is cross-checked through the
//! compiled structure-of-arrays replay pass (validate, decompile round
//! trip, bit-identity with interpreted replay on every organization)
//! instead of the shadow-oracle differential. `--kind lane` likewise
//! switches the check: every trace replays through the monomorphic
//! data-path lanes and through the generic dynamic-dispatch referee
//! (interpreted and compiled), and the results must be bit-identical.
//! `--kind multicore` derives a random 2–4 core mix per case (per-core
//! adversarial traces, organizations and phase offsets) and cross-checks
//! the co-scheduled run against per-core isolated runs, the per-core
//! shadow oracles and the shared-level residency/conservation audit;
//! `--shrink` drops whole cores before ddmin-shrinking the survivors'
//! events. `--kind irregular` swaps the adversarial generators for the
//! workload catalog's irregular pointer-chasing family: each case
//! derives a kernel/transform pick from the seed, records the kernel's
//! deterministic trace and runs it through the oracle differential, the
//! compiled cross-check and the lane cross-check combined.

use sttcache_bench::check::{self, Adversary};

/// Which cross-check every generated trace runs through.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Shadow-oracle differential against the SRAM baseline.
    Oracle,
    /// Compiled structure-of-arrays replay vs interpreted replay.
    Compiled,
    /// Monomorphic replay lanes vs the generic dispatch referee.
    Lane,
    /// Co-scheduled multi-core mixes vs per-core isolated runs.
    Multicore,
    /// Irregular-family kernel traces through every cross-check at once.
    Irregular,
}

impl Mode {
    fn tag(self) -> &'static str {
        match self {
            Mode::Oracle => "",
            Mode::Compiled => " compiled",
            Mode::Lane => " lane",
            Mode::Multicore => " multicore",
            Mode::Irregular => " irregular",
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: sttcache-check [--quick] [--seed N] [--cases N] [--events N] \
         [--kind NAME|compiled|lane|multicore|irregular] [--shrink] [--list-kinds]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut cases = 4usize;
    let mut events = 4000usize;
    let mut kinds: Vec<Adversary> = Adversary::ALL.to_vec();
    let mut shrink = false;
    let mut mode = Mode::Oracle;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => seed = None,
            "--seed" => {
                i += 1;
                let n: u64 = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an unsigned integer");
                    usage()
                });
                seed = Some(n);
            }
            "--cases" => {
                i += 1;
                cases = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--cases needs a positive integer");
                        usage()
                    });
            }
            "--events" => {
                i += 1;
                events = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--events needs a positive integer");
                        usage()
                    });
            }
            "--kind" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    // Not generator families: these switch the cross-check
                    // every family's traces run through.
                    Some("compiled") => mode = Mode::Compiled,
                    Some("lane") => mode = Mode::Lane,
                    Some("multicore") => mode = Mode::Multicore,
                    Some("irregular") => mode = Mode::Irregular,
                    Some(name) => match Adversary::from_name(name) {
                        Some(kind) => kinds = vec![kind],
                        None => {
                            eprintln!("--kind needs one of the names from --list-kinds");
                            usage()
                        }
                    },
                    None => {
                        eprintln!("--kind needs one of the names from --list-kinds");
                        usage()
                    }
                }
            }
            "--shrink" => shrink = true,
            "--list-kinds" => {
                for k in Adversary::ALL {
                    println!("{}", k.name());
                }
                println!("compiled");
                println!("lane");
                println!("multicore");
                println!("irregular");
                return;
            }
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }

    // One (kind, seed) plan per case: the quick battery uses the fixed
    // seeds; a randomized run derives per-case seeds from the base seed.
    let mut plan: Vec<(Adversary, u64)> = Vec::new();
    match seed {
        None => {
            for s in check::quick_seeds() {
                for &k in &kinds {
                    plan.push((k, s));
                }
            }
        }
        Some(base) => {
            for c in 0..cases as u64 {
                let s = base.wrapping_add(c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                for &k in &kinds {
                    plan.push((k, s));
                }
            }
        }
    }

    let total = plan.len();
    let run_one: fn(Adversary, u64, usize) -> Result<(), check::CheckFailure> = match mode {
        Mode::Oracle => check::run_case,
        Mode::Compiled => check::run_compiled_case,
        Mode::Lane => check::run_lane_case,
        Mode::Multicore => check::run_multicore_case,
        Mode::Irregular => check::run_irregular_case,
    };
    let tag = mode.tag();
    let mut failures = Vec::new();
    for (n, (kind, s)) in plan.into_iter().enumerate() {
        match run_one(kind, s, events) {
            Ok(()) => println!(
                "[{:>3}/{total}] {:<17} seed {s:#018x} {tag} ok",
                n + 1,
                kind.name()
            ),
            Err(f) => {
                println!(
                    "[{:>3}/{total}] {:<17} seed {s:#018x} {tag} FAILED ({} finding(s))",
                    n + 1,
                    kind.name(),
                    f.failures.len()
                );
                failures.push(f);
            }
        }
    }

    if failures.is_empty() {
        let orgs = sttcache_bench::check::all_organizations().len();
        match mode {
            Mode::Oracle => println!(
                "{total} traces x {orgs} organizations: all oracle, drain and invariant checks passed"
            ),
            Mode::Compiled => println!(
                "{total} traces x {orgs} organizations: compiled and interpreted replay agree everywhere"
            ),
            Mode::Lane => println!(
                "{total} traces x {orgs} organizations: lane and generic replay agree everywhere"
            ),
            Mode::Multicore => println!(
                "{total} multi-core mixes: determinism, isolated differentials, residency \
                 and conservation all passed"
            ),
            Mode::Irregular => println!(
                "{total} irregular traces x {orgs} organizations: oracle, compiled and lane \
                 checks all passed"
            ),
        }
        return;
    }

    eprintln!();
    for f in &failures {
        let replay_kind = match mode {
            Mode::Oracle => f.kind.name(),
            Mode::Compiled => "compiled",
            Mode::Lane => "lane",
            Mode::Multicore => "multicore",
            Mode::Irregular => "irregular",
        };
        eprintln!(
            "FAILURE: kind {}{tag} seed {:#018x} events {} (replay: sttcache-check --kind {} --seed {} --events {} --cases 1)",
            f.kind.name(),
            f.seed,
            f.events,
            replay_kind,
            f.seed,
            f.events
        );
        for msg in &f.failures {
            eprintln!("  {msg}");
        }
    }
    if shrink {
        let first = &failures[0];
        eprintln!();
        eprintln!(
            "shrinking kind {}{tag} seed {:#018x} …",
            first.kind.name(),
            first.seed
        );
        if mode == Mode::Multicore {
            let minimal = check::shrink_multicore_failure(first);
            eprintln!("minimal reproducer: {} core(s)", minimal.traces.len());
            for (idx, trace) in minimal.traces.iter().enumerate() {
                eprintln!(
                    "  core {idx}: {} @{} — {} event(s)",
                    minimal.orgs[idx].name(),
                    minimal.offsets[idx],
                    trace.len()
                );
                for e in trace.events().iter().take(16) {
                    eprintln!("    {e:?}");
                }
                if trace.len() > 16 {
                    eprintln!("    … and {} more", trace.len() - 16);
                }
            }
        } else {
            let minimal = match mode {
                Mode::Oracle => check::shrink_failure(first),
                Mode::Compiled => check::shrink_compiled_failure(first),
                Mode::Lane => check::shrink_lane_failure(first),
                Mode::Irregular => check::shrink_irregular_failure(first),
                Mode::Multicore => unreachable!("handled above"),
            };
            eprintln!("minimal reproducer: {} event(s)", minimal.len());
            for e in minimal.events().iter().take(64) {
                eprintln!("  {e:?}");
            }
            if minimal.len() > 64 {
                eprintln!("  … and {} more", minimal.len() - 64);
            }
        }
    }
    std::process::exit(1);
}

//! Hermetic property-testing kit: a seeded [SplitMix64] generator plus a
//! small case-loop harness, replacing the `proptest`/`rand` dependencies
//! so the whole workspace builds with zero network access.
//!
//! Every case runs with a seed derived deterministically from a base
//! seed and the case index. On failure the harness prints the exact
//! reproducing seed; re-run with `STTCACHE_TEST_SEED=<seed>` to execute
//! only that case.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The fixed base seed: property tests are reproducible run-to-run by
/// default (set `STTCACHE_TEST_SEED` to explore a different stream).
pub const DEFAULT_SEED: u64 = 0x5EED_CACE_2015_0001;

/// A SplitMix64 pseudo-random generator — 64 bits of state, passes
/// BigCrush, and is trivially seedable from a case index.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Plain modulo: the bias is negligible at test-case range sizes.
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// A uniform `u8` in `[lo, hi)`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(lo as u64, hi as u64) as u8
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len())]
    }

    /// A random-length vector built by calling `f` per element, with the
    /// length uniform in `[min_len, max_len)`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// The base seed: `STTCACHE_TEST_SEED` (decimal or `0x`-prefixed hex) if
/// set, else [`DEFAULT_SEED`].
pub fn base_seed() -> Option<u64> {
    let raw = std::env::var("STTCACHE_TEST_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("STTCACHE_TEST_SEED '{raw}' is not a u64")))
}

/// The per-case seed: one extra SplitMix64 scramble of (base, index) so
/// consecutive cases land in unrelated parts of the stream.
fn case_seed(base: u64, case: usize) -> u64 {
    Rng::new(base ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

/// Runs `cases` seeded property cases, panicking with the reproducing
/// seed on the first failure.
///
/// When `STTCACHE_TEST_SEED` is set, exactly one case runs, seeded with
/// that value verbatim — the reproduction mode the failure message
/// points at.
pub fn run_cases(name: &str, cases: usize, f: impl Fn(&mut Rng)) {
    if let Some(seed) = base_seed() {
        let mut rng = Rng::new(seed);
        f(&mut rng);
        return;
    }
    for case in 0..cases {
        let seed = case_seed(DEFAULT_SEED, case);
        let mut rng = Rng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} (seed {seed:#018x}).\n\
                 reproduce with: STTCACHE_TEST_SEED={seed:#x} cargo test -q {name}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // First three outputs for seed 1234567, from the reference C
        // implementation.
        let mut rng = Rng::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let v = rng.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn run_cases_executes_every_case() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        run_cases("counting", 17, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn pick_and_vec_of_cover_inputs() {
        let mut rng = Rng::new(99);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
        let v = rng.vec_of(3, 8, |r| r.bool());
        assert!((3..8).contains(&v.len()));
    }
}

//! Pretty-printers emitting each table/figure as text.

use crate::experiments::{self, Fig4Row, Fig6Row, Fig9Row, SeriesTable};
use crate::extensions::{self, EnergyRow, SleepRow};
use sttcache::PenaltyRow;
use sttcache_workloads::ProblemSize;

fn print_series_table(title: &str, table: &SeriesTable) {
    println!("== {title} ==");
    print!("{:<12}", "benchmark");
    for s in &table.series {
        print!(" {s:>24}");
    }
    println!();
    for (name, cols) in &table.rows {
        print!("{name:<12}");
        for v in cols {
            print!(" {v:>23.2}%");
        }
        println!();
    }
    println!();
}

/// Prints Table I in the paper's layout.
pub fn print_table1() {
    let [sram, stt] = experiments::table1();
    println!("== Table I: 64KB SRAM L1 D-cache vs 64KB STT-MRAM L1 D-cache ==");
    println!(
        "{:<18} {:>12} {:>12}",
        "Parameters", sram.technology, stt.technology
    );
    println!(
        "{:<18} {:>11.3}ns {:>11.2}ns",
        "Read Latency", sram.read_latency_ns, stt.read_latency_ns
    );
    println!(
        "{:<18} {:>11.3}ns {:>11.2}ns",
        "Write Latency", sram.write_latency_ns, stt.write_latency_ns
    );
    println!(
        "{:<18} {:>10.2}mW {:>10.2}mW",
        "Leakage", sram.leakage_mw, stt.leakage_mw
    );
    println!(
        "{:<18} {:>10.0}F2 {:>10.0}F2",
        "Area", sram.cell_area_f2, stt.cell_area_f2
    );
    println!(
        "{:<18} {:>11}way {:>10}way",
        "Associativity", sram.associativity, stt.associativity
    );
    println!(
        "{:<18} {:>8} Bits {:>7} Bits",
        "Cache Line size", sram.line_bits, stt.line_bits
    );
    println!();
}

/// Prints Fig. 1 (drop-in penalty per benchmark).
pub fn print_fig1(size: ProblemSize) {
    let rows: Vec<PenaltyRow> = experiments::fig1(size);
    println!("== Fig. 1: Performance penalty for the drop-in NVM D-Cache ==");
    println!("(relative to the SRAM D-cache baseline = 100%)");
    for r in &rows {
        println!("{r}");
    }
    println!();
}

/// Prints Fig. 3 (drop-in vs VWB).
pub fn print_fig3(size: ProblemSize) {
    print_series_table(
        "Fig. 3: Modified NVM D-Cache (with VWB) vs simple drop-in",
        &experiments::fig3(size),
    );
}

/// Prints Fig. 4 (read vs write penalty contribution).
pub fn print_fig4(size: ProblemSize) {
    let rows: Vec<Fig4Row> = experiments::fig4(size);
    println!("== Fig. 4: Read vs write contribution to the NVM penalty ==");
    println!(
        "{:<12} {:>22} {:>23}",
        "benchmark", "Read penalty contrib", "Write penalty contrib"
    );
    for r in &rows {
        println!(
            "{:<12} {:>21.1}% {:>22.1}%",
            r.name, r.read_pct, r.write_pct
        );
    }
    println!();
}

/// Prints Fig. 5 (VWB with and without code transformations).
pub fn print_fig5(size: ProblemSize) {
    print_series_table(
        "Fig. 5: NVM DL1 (with VWB) with and without transformations",
        &experiments::fig5(size),
    );
}

/// Prints Fig. 6 (per-transformation contribution).
pub fn print_fig6(size: ProblemSize) {
    let rows: Vec<Fig6Row> = experiments::fig6(size);
    println!("== Fig. 6: Contribution of transformations to penalty reduction ==");
    println!(
        "{:<12} {:>14} {:>13} {:>8}",
        "benchmark", "Vectorization", "Pre-fetching", "Others"
    );
    for r in &rows {
        println!(
            "{:<12} {:>13.1}% {:>12.1}% {:>7.1}%",
            r.name, r.vectorization_pct, r.prefetching_pct, r.others_pct
        );
    }
    println!();
}

/// Prints Fig. 7 (VWB size sweep).
pub fn print_fig7(size: ProblemSize) {
    print_series_table(
        "Fig. 7: Penalty vs VWB size (optimized)",
        &experiments::fig7(size),
    );
}

/// Prints Fig. 8 (proposal vs EMSHR vs L0).
pub fn print_fig8(size: ProblemSize) {
    print_series_table(
        "Fig. 8: Proposal vs EMSHR vs L0-Cache (2 Kbit, fully associative)",
        &experiments::fig8(size),
    );
}

/// Prints Fig. 9 (optimization gain on baseline vs proposal).
pub fn print_fig9(size: ProblemSize) {
    let rows: Vec<Fig9Row> = experiments::fig9(size);
    println!("== Fig. 9: Optimization gains: SRAM baseline vs NVM proposal ==");
    println!(
        "{:<12} {:>24} {:>28}",
        "benchmark", "Baseline perf gain", "NVM proposal perf gain"
    );
    for r in &rows {
        println!(
            "{:<12} {:>23.1}% {:>27.1}%",
            r.name, r.baseline_gain_pct, r.proposal_gain_pct
        );
    }
    println!();
}

/// Prints the extension experiments (beyond the paper's figures).
pub fn print_extensions(size: ProblemSize) {
    print_series_table(
        "Ext. 1: NVM instruction cache (paper ref. [7])",
        &extensions::ext_icache(size),
    );
    print_series_table(
        "Ext. 2: hardware next-line prefetcher vs the VWB",
        &extensions::ext_hw_prefetch(size),
    );
    print_series_table(
        "Ext. 3: AWARE asymmetric writes (paper ref. [1])",
        &extensions::ext_aware(size),
    );
    print_series_table(
        "Ext. 4: STT-MRAM in L2 vs L1",
        &extensions::ext_nvm_l2(size),
    );
    let rows: Vec<EnergyRow> = extensions::ext_energy(size);
    println!("== Ext. 5: energy per benchmark (uJ) ==");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "benchmark", "SRAM total", "NVM total", "SRAM DL1-only", "NVM DL1-only"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>14.3} {:>14.3}",
            r.name, r.sram_uj, r.nvm_uj, r.sram_dl1_uj, r.nvm_dl1_uj
        );
    }
    println!();
    let sleep: Vec<SleepRow> = extensions::ext_normally_off(size);
    println!("== Ext. 6: normally-off power-gating (sleep-entry drain) ==");
    println!(
        "{:<12} {:>16} {:>16} {:>15} {:>15}",
        "benchmark", "SRAM dirty lines", "SRAM flush cyc", "NVM dirty (VWB)", "NVM flush cyc"
    );
    for r in &sleep {
        println!(
            "{:<12} {:>16} {:>16} {:>15} {:>15}",
            r.name, r.sram_dirty_lines, r.sram_flush_cycles, r.nvm_dirty_lines, r.nvm_flush_cycles
        );
    }
    println!();
}

/// Prints the organization-catalog sweep (every catalog entry, penalty
/// vs the catalog's SRAM reference). Deliberately *not* in
/// [`artifacts`]: the committed `figures all` output predates the
/// catalog and stays byte-identical; `figures catalog` is the opt-in
/// view that grows a column whenever the catalog grows an entry.
pub fn print_catalog(size: ProblemSize) {
    print_series_table(
        "Catalog: every L1 D-cache organization vs the SRAM reference",
        &extensions::ext_catalog(size),
    );
}

/// Prints the multi-core contention sweep: every private organization ×
/// workload mix × shared-L2 bank count, each cell the aggregate co-run
/// slowdown vs the same kernels isolated. Like [`print_catalog`],
/// deliberately *not* in [`artifacts`] — the committed `figures all`
/// output predates multi-core and stays byte-identical; `figures
/// multicore` is the opt-in view.
pub fn print_multicore(size: ProblemSize) {
    print_series_table(
        "Multi-core: contention slowdown % (mix / shared-L2 banks)",
        &crate::multicore::multicore_table(size),
    );
}

/// Prints the irregular-family sweep: every irregular pointer-chasing
/// workload on every non-reference catalog organization, penalty vs the
/// catalog's SRAM reference. Like [`print_catalog`], deliberately *not*
/// in [`artifacts`] — the committed `figures all` output stays
/// byte-identical; `figures irregular` is the opt-in view.
pub fn print_irregular(size: ProblemSize) {
    print_series_table(
        "Irregular: pointer-chasing penalty vs the SRAM reference",
        &extensions::ext_irregular(size),
    );
}

/// Prints one figure as CSV (for the table-shaped artifacts; the
/// decomposition figures encode their columns explicitly).
pub fn print_csv(which: &str, size: ProblemSize) -> bool {
    let table = match which {
        "fig3" => Some(experiments::fig3(size)),
        "fig5" => Some(experiments::fig5(size)),
        "fig7" => Some(experiments::fig7(size)),
        "fig8" => Some(experiments::fig8(size)),
        _ => None,
    };
    if let Some(t) = table {
        print!("{}", t.to_csv());
        return true;
    }
    match which {
        "fig1" => {
            println!("benchmark,penalty_pct");
            for r in experiments::fig1(size) {
                println!("{},{:.3}", r.name, r.penalty_pct);
            }
        }
        "fig4" => {
            println!("benchmark,read_pct,write_pct");
            for r in experiments::fig4(size) {
                println!("{},{:.3},{:.3}", r.name, r.read_pct, r.write_pct);
            }
        }
        "fig6" => {
            println!("benchmark,vectorization_pct,prefetching_pct,others_pct");
            for r in experiments::fig6(size) {
                println!(
                    "{},{:.3},{:.3},{:.3}",
                    r.name, r.vectorization_pct, r.prefetching_pct, r.others_pct
                );
            }
        }
        "fig9" => {
            println!("benchmark,baseline_gain_pct,proposal_gain_pct");
            for r in experiments::fig9(size) {
                println!(
                    "{},{:.3},{:.3}",
                    r.name, r.baseline_gain_pct, r.proposal_gain_pct
                );
            }
        }
        _ => return false,
    }
    true
}

/// One printable artifact: its CLI name and printer.
pub type Artifact = (&'static str, fn(ProblemSize));

/// The artifacts `print_all` emits, in order: `(name, printer)`.
///
/// One list so the plain and profiled paths cannot drift apart, and so
/// `--profile` can time each artifact individually.
pub fn artifacts() -> [Artifact; 10] {
    [
        ("table1", |_| print_table1()),
        ("fig1", print_fig1),
        ("fig3", print_fig3),
        ("fig4", print_fig4),
        ("fig5", print_fig5),
        ("fig6", print_fig6),
        ("fig7", print_fig7),
        ("fig8", print_fig8),
        ("fig9", print_fig9),
        ("ext", print_extensions),
    ]
}

/// Prints every table and figure in order.
pub fn print_all(size: ProblemSize) {
    for (_, print) in artifacts() {
        print(size);
    }
}

/// Prints every table and figure in order, timing each; returns
/// `(name, seconds)` per artifact. The printed output is identical to
/// [`print_all`] — the timing is measurement only.
pub fn print_all_timed(size: ProblemSize) -> Vec<(&'static str, f64)> {
    artifacts()
        .iter()
        .map(|&(name, print)| {
            let start = std::time::Instant::now();
            print(size);
            let took = start.elapsed();
            crate::spans::record(name, "artifact", start, took);
            (name, took.as_secs_f64())
        })
        .collect()
}

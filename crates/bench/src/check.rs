//! The differential correctness checker.
//!
//! Three layers, combined by [`check_trace`]:
//!
//! 1. **Functional shadow oracle** — every run is mirrored into a
//!    [`ShadowOracle`] through a [`TeeEngine`], giving a timing-free
//!    golden model of what the program touched and wrote. After the run
//!    the whole organization is drained ([`FrontEnd::flush_dirty`]) and
//!    cross-examined: no dirty state may survive, and every line still
//!    resident anywhere in the hierarchy must cover bytes the program
//!    actually accessed (no *phantom* lines).
//! 2. **Runtime invariants** — the checker turns on the
//!    [`sttcache_mem::invariants`] gate for the duration of the run and
//!    harvests every structured violation the components reported.
//! 3. **Differential comparison** — the same trace runs on every
//!    catalog L1 organization; their timing-independent
//!    [`FunctionalSignature`]s must be identical, with the SRAM baseline
//!    as the reference. A cache organization may change *when* things
//!    happen, never *what* happens.
//!
//! The adversarial generators ([`Adversary`]) produce traces aimed at
//! the corners where timing models rot: bank ping-pong, MSHR
//! saturation, aliasing write bursts, line-straddling access widths.
//! [`shrink_events`] minimizes a failing trace by greedy chunk removal
//! so a report names the shortest reproducer found.
//!
//! A fourth, independent layer targets the compiled replay pass:
//! [`check_compiled`] lowers a trace to its structure-of-arrays form for
//! every organization's DL1 geometry and demands a validating,
//! round-tripping compiled trace whose replay is bit-identical to the
//! interpreted one (`sttcache-check --kind compiled`).

use crate::testkit::{Rng, DEFAULT_SEED};
use sttcache::{
    CoreSpec, DCacheOrganization, FrontEnd, LaneMode, MultiPlatform, MultiPlatformConfig, Platform,
    CORE_ADDRESS_STRIDE,
};
use sttcache_cpu::{CompiledTrace, Core, Engine, TeeEngine, Trace, TraceEvent, TraceRecorder};
use sttcache_mem::{invariants, Cycle, InvariantViolation, ShadowOracle};

/// An [`Engine`] that mirrors every architectural event into a
/// [`ShadowOracle`]. Hang it on the second leg of a [`TeeEngine`] so a
/// timing core and the functional model see one identical event stream.
#[derive(Debug, Default)]
pub struct OracleMirror {
    oracle: ShadowOracle,
    load_hash: u64,
}

impl OracleMirror {
    /// A mirror over a fresh, empty oracle.
    pub fn new() -> Self {
        OracleMirror::default()
    }

    /// The oracle accumulated so far.
    pub fn oracle(&self) -> &ShadowOracle {
        &self.oracle
    }

    /// Running hash over every load's value checksum, in program order.
    /// Two runs of the same trace must agree on it exactly.
    pub fn load_hash(&self) -> u64 {
        self.load_hash
    }
}

impl Engine for OracleMirror {
    fn load(&mut self, addr: sttcache_mem::Addr, bytes: usize) {
        let h = self.oracle.load(addr.0, bytes);
        self.load_hash = (self.load_hash.rotate_left(5) ^ h).wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn store(&mut self, addr: sttcache_mem::Addr, bytes: usize) {
        self.oracle.store(addr.0, bytes);
    }

    fn prefetch(&mut self, addr: sttcache_mem::Addr) {
        self.oracle.touch(addr.0);
    }

    fn compute(&mut self, _ops: u64) {}

    fn branch(&mut self, _taken: bool) {}
}

/// The timing-independent fingerprint of one run: event counts plus the
/// oracle's memory-image and load-value hashes. Identical traces must
/// produce identical signatures on every cache organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalSignature {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Prefetch hints issued.
    pub prefetches: u64,
    /// Branches executed.
    pub branches: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// [`ShadowOracle::image_hash`] of the final memory image.
    pub image_hash: u64,
    /// [`OracleMirror::load_hash`] over every load in order.
    pub load_hash: u64,
}

/// The outcome of checking one trace on one organization.
#[derive(Debug)]
pub struct OrgCheck {
    /// The organization's display name.
    pub organization: &'static str,
    /// Cycles the core reported for the run.
    pub cycles: u64,
    /// Lines written back by the end-of-run drain.
    pub flushed_lines: usize,
    /// The run's functional signature.
    pub signature: FunctionalSignature,
    /// Oracle/drain mismatches (phantom lines, surviving dirty state,
    /// event-count divergence). Empty on a clean run.
    pub mismatches: Vec<String>,
    /// Structured invariant violations harvested from the run.
    pub violations: Vec<InvariantViolation>,
    /// Violations beyond the retention cap (0 unless a run misbehaved
    /// catastrophically).
    pub dropped_violations: usize,
}

impl OrgCheck {
    /// Whether the organization passed every layer of the check.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.violations.is_empty() && self.dropped_violations == 0
    }
}

/// Every catalog L1 organization, SRAM baseline first (it is the
/// differential reference).
pub fn all_organizations() -> Vec<DCacheOrganization> {
    sttcache::catalog::catalog()
        .into_iter()
        .map(|e| e.organization)
        .collect()
}

/// Runs `trace` on one organization with the invariant gate on, drains
/// the hierarchy, and verifies it against the shadow oracle.
pub fn check_trace_on(organization: DCacheOrganization, trace: &Trace) -> OrgCheck {
    let gate_was_on = invariants::enabled();
    invariants::set_enabled(true);
    let _ = invariants::take_violations(); // start from a clean slate

    let platform = Platform::new(organization).expect("canonical organization validates");
    let fe: FrontEnd = platform
        .front_end()
        .expect("validated configuration builds");
    let core = Core::new(platform.config().core, fe);
    let mut tee = TeeEngine::new(core, OracleMirror::new());
    trace.replay_into(&mut tee);
    let (mut core, mirror) = tee.into_inner();
    let report = core.report();
    let now = core.now();
    let mut fe = core.into_port();
    let (flushed_lines, done) = fe.flush_dirty(now);
    fe.check_drained(done);

    let mut mismatches = Vec::new();
    let dirty = fe.dirty_line_count();
    if dirty != 0 {
        mismatches.push(format!("{dirty} dirty lines survived flush_dirty"));
    }
    for (base, len) in fe.resident_lines() {
        if !mirror.oracle().intersects_accessed(base.0, len) {
            mismatches.push(format!(
                "phantom resident line {base} ({len} B): the program never touched it"
            ));
        }
    }
    let (t_loads, t_stores, t_prefetches, t_branches) = trace.summary();
    if (
        report.loads,
        report.stores,
        report.prefetches,
        report.branches,
    ) != (t_loads, t_stores, t_prefetches, t_branches)
    {
        mismatches.push(format!(
            "core event counts {}L/{}S/{}P/{}B diverged from the trace's {}L/{}S/{}P/{}B",
            report.loads,
            report.stores,
            report.prefetches,
            report.branches,
            t_loads,
            t_stores,
            t_prefetches,
            t_branches
        ));
    }
    if mirror.oracle().loads() != t_loads || mirror.oracle().stores() != t_stores {
        mismatches.push(format!(
            "oracle saw {} loads / {} stores, trace holds {t_loads} / {t_stores}",
            mirror.oracle().loads(),
            mirror.oracle().stores()
        ));
    }

    let (violations, total) = invariants::take_violations();
    let dropped_violations = total - violations.len();
    invariants::set_enabled(gate_was_on);

    OrgCheck {
        organization: organization.name(),
        cycles: report.cycles,
        flushed_lines,
        signature: FunctionalSignature {
            loads: report.loads,
            stores: report.stores,
            prefetches: report.prefetches,
            branches: report.branches,
            instructions: report.instructions,
            image_hash: mirror.oracle().image_hash(),
            load_hash: mirror.load_hash(),
        },
        mismatches,
        violations,
        dropped_violations,
    }
}

/// One trace checked differentially across every organization.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Human-readable label of the trace under test.
    pub label: String,
    /// Per-organization outcomes, SRAM baseline first.
    pub reports: Vec<OrgCheck>,
    /// Every failure, each prefixed by the organization it came from.
    /// Empty when the trace passed everywhere.
    pub failures: Vec<String>,
}

impl DifferentialReport {
    /// Whether every organization passed and all signatures agree.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `trace` on every catalog organization and cross-checks them: each
/// must pass its own oracle/invariant check, and every functional
/// signature must equal the SRAM baseline's.
pub fn check_trace(label: &str, trace: &Trace) -> DifferentialReport {
    let reports: Vec<OrgCheck> = all_organizations()
        .into_iter()
        .map(|org| check_trace_on(org, trace))
        .collect();
    let mut failures = Vec::new();
    for r in &reports {
        for m in &r.mismatches {
            failures.push(format!("[{}] {m}", r.organization));
        }
        for v in &r.violations {
            failures.push(format!("[{}] invariant: {v}", r.organization));
        }
        if r.dropped_violations > 0 {
            failures.push(format!(
                "[{}] … and {} more violations past the retention cap",
                r.organization, r.dropped_violations
            ));
        }
    }
    let base = &reports[0];
    for r in &reports[1..] {
        if r.signature != base.signature {
            failures.push(format!(
                "[{}] functional signature diverged from {}: {:?} vs {:?}",
                r.organization, base.organization, r.signature, base.signature
            ));
        }
    }
    DifferentialReport {
        label: label.to_string(),
        reports,
        failures,
    }
}

/// An adversarial trace family, each aimed at one corner of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// Alternating lines that collide on one DL1 bank.
    BankPingPong,
    /// Prefetch bursts of distinct same-set lines to saturate the MSHRs.
    MshrSaturation,
    /// Store bursts over aliasing tags of one set (dirty-eviction storm).
    AliasWriteBurst,
    /// Narrow accesses straddling 32 B and 64 B line boundaries.
    LineStraddle,
    /// Dense prefetch hints racing demand loads for the same lines.
    PrefetchStorm,
    /// Unbiased random mix of every event kind.
    RandomMix,
}

impl Adversary {
    /// Every adversary family.
    pub const ALL: [Adversary; 6] = [
        Adversary::BankPingPong,
        Adversary::MshrSaturation,
        Adversary::AliasWriteBurst,
        Adversary::LineStraddle,
        Adversary::PrefetchStorm,
        Adversary::RandomMix,
    ];

    /// Stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Adversary::BankPingPong => "bank-ping-pong",
            Adversary::MshrSaturation => "mshr-saturation",
            Adversary::AliasWriteBurst => "alias-write-burst",
            Adversary::LineStraddle => "line-straddle",
            Adversary::PrefetchStorm => "prefetch-storm",
            Adversary::RandomMix => "random-mix",
        }
    }

    /// Parses a [`name`](Self::name) back into the adversary.
    pub fn from_name(s: &str) -> Option<Adversary> {
        Adversary::ALL.into_iter().find(|a| a.name() == s)
    }
}

/// NVM DL1 geometry the generators aim at (line bytes, sets, banks,
/// MSHR entries).
fn nvm_geometry() -> (u64, u64, u64, usize) {
    let cfg = sttcache::nvm_dl1_config().expect("canonical NVM DL1 config");
    (
        cfg.line_bytes() as u64,
        cfg.sets() as u64,
        cfg.banks() as u64,
        cfg.mshr_entries(),
    )
}

/// Generates one deterministic adversarial trace of about `events`
/// architectural events. Same `(kind, seed, events)` — same trace.
pub fn adversarial_trace(kind: Adversary, seed: u64, events: usize) -> Trace {
    let mut rng = Rng::new(seed ^ (kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rec = TraceRecorder::with_capacity(events);
    let (line, sets, banks, mshrs) = nvm_geometry();
    match kind {
        Adversary::BankPingPong => {
            // A pool of lines that all land on one bank (bank index is the
            // low line bits), hammered back to back so every access queues
            // behind the previous one's bank occupancy.
            let bank = rng.u64_in(0, banks - 1);
            let pool: Vec<u64> = (0..8).map(|k| (k * banks + bank) * line).collect();
            for i in 0..events {
                let base = pool[rng.usize_in(0, pool.len() - 1)];
                let addr = sttcache_mem::Addr(base + rng.u64_in(0, line - 8));
                match i % 8 {
                    6 => rec.store(addr, 4),
                    7 => rec.branch(rng.bool()),
                    _ => rec.load(addr, 4),
                }
            }
        }
        Adversary::MshrSaturation => {
            // Bursts of prefetches to distinct lines of one set (stride
            // sets·line), two past the MSHR capacity, then demand loads
            // racing the in-flight fills.
            let set_stride = sets * line;
            let burst = mshrs + 2;
            let mut tag = 0u64;
            let mut i = 0usize;
            while i < events {
                let set = rng.u64_in(0, sets - 1) * line;
                for _ in 0..burst {
                    tag += 1;
                    rec.prefetch(sttcache_mem::Addr(set + tag * set_stride));
                    i += 1;
                }
                rec.load(sttcache_mem::Addr(set + tag * set_stride), 8);
                rec.compute(rng.u64_in(1, 3));
                i += 2;
            }
        }
        Adversary::AliasWriteBurst => {
            // Stores across many tags of one set: constant replacement
            // with dirty victims, exercising write-back and eviction paths.
            let set = rng.u64_in(0, sets - 1) * line;
            let set_stride = sets * line;
            for i in 0..events {
                let tag = rng.u64_in(0, 15);
                let addr = sttcache_mem::Addr(set + tag * set_stride + rng.u64_in(0, line - 8));
                if i % 5 == 4 {
                    rec.load(addr, 8);
                } else {
                    rec.store(addr, 8);
                }
            }
        }
        Adversary::LineStraddle => {
            // Narrow accesses planted right on 32 B and 64 B boundaries so
            // widths 1..=16 straddle the line of at least one level.
            for i in 0..events {
                let boundary = rng.u64_in(1, 4096) * 32;
                let width = rng.usize_in(1, 16);
                let addr = sttcache_mem::Addr(boundary.saturating_sub(rng.u64_in(1, 15)));
                if i % 3 == 0 {
                    rec.store(addr, width);
                } else {
                    rec.load(addr, width);
                }
            }
        }
        Adversary::PrefetchStorm => {
            // Dense hints over a megabyte, with demand loads trailing into
            // the same lines while their fills may still be in flight.
            let lines = (1u64 << 20) / line;
            let mut recent = 0u64;
            for i in 0..events {
                let l = rng.u64_in(0, lines - 1) * line;
                if i % 4 == 3 {
                    rec.load(sttcache_mem::Addr(recent), 8);
                } else {
                    rec.prefetch(sttcache_mem::Addr(l));
                    recent = l;
                }
            }
        }
        Adversary::RandomMix => {
            let span = 1u64 << 22;
            for _ in 0..events {
                match rng.u64_in(0, 9) {
                    0..=3 => rec.load(sttcache_mem::Addr(rng.u64_in(0, span)), rng.usize_in(1, 16)),
                    4..=6 => {
                        rec.store(sttcache_mem::Addr(rng.u64_in(0, span)), rng.usize_in(1, 16))
                    }
                    7 => rec.prefetch(sttcache_mem::Addr(rng.u64_in(0, span))),
                    8 => rec.compute(rng.u64_in(1, 8)),
                    _ => rec.branch(rng.bool()),
                }
            }
        }
    }
    rec.into_trace()
}

/// One failing fuzz case, with everything needed to replay it.
#[derive(Debug)]
pub struct CheckFailure {
    /// The adversary family that produced the trace.
    pub kind: Adversary,
    /// The generator seed.
    pub seed: u64,
    /// The requested event count.
    pub events: usize,
    /// Every failure message from the differential check.
    pub failures: Vec<String>,
}

/// Generates and differentially checks one adversarial trace.
///
/// # Errors
///
/// Returns the structured [`CheckFailure`] when any organization fails
/// its oracle/invariant check or diverges from the SRAM baseline.
pub fn run_case(kind: Adversary, seed: u64, events: usize) -> Result<(), CheckFailure> {
    let trace = adversarial_trace(kind, seed, events);
    let report = check_trace(&format!("{}#{seed:#x}", kind.name()), &trace);
    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(CheckFailure {
            kind,
            seed,
            events,
            failures: report.failures,
        })
    }
}

/// Cross-checks the compiled structure-of-arrays replay against the
/// interpreted replay on every catalog organization. For each one the
/// trace is lowered to the organization's DL1 geometry, and the compiled
/// form must [`validate`](CompiledTrace::validate), decompile back to
/// the original event stream, and replay to a bit-identical
/// [`RunResult`](sttcache::RunResult). Returns one message per
/// divergence; empty when the trace passes everywhere.
pub fn check_compiled(label: &str, trace: &Trace) -> Vec<String> {
    let mut failures = Vec::new();
    for org in all_organizations() {
        let platform = Platform::new(org).expect("canonical organization validates");
        let compiled = CompiledTrace::compile(trace, platform.dl1_geometry());
        if let Err(e) = compiled.validate() {
            failures.push(format!(
                "[{}] {label}: invalid compiled trace: {e}",
                org.name()
            ));
            continue;
        }
        if compiled.decompile() != *trace {
            failures.push(format!(
                "[{}] {label}: compile/decompile round trip altered the event stream",
                org.name()
            ));
            continue;
        }
        let compiled_run = platform.run_compiled(&compiled);
        let interpreted_run = platform.run_trace(trace);
        if compiled_run != interpreted_run {
            failures.push(format!(
                "[{}] {label}: compiled replay diverged from interpreted replay \
                 ({} vs {} cycles)",
                org.name(),
                compiled_run.cycles(),
                interpreted_run.cycles()
            ));
        }
    }
    failures
}

/// Generates one adversarial trace and runs [`check_compiled`] on it —
/// the `--kind compiled` leg of `sttcache-check`.
///
/// # Errors
///
/// Returns the structured [`CheckFailure`] when any organization's
/// compiled replay fails validation, the decompile round trip, or
/// bit-identity with the interpreted replay.
pub fn run_compiled_case(kind: Adversary, seed: u64, events: usize) -> Result<(), CheckFailure> {
    let trace = adversarial_trace(kind, seed, events);
    let failures = check_compiled(&format!("{}#{seed:#x}", kind.name()), &trace);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CheckFailure {
            kind,
            seed,
            events,
            failures,
        })
    }
}

/// Cross-checks the monomorphic replay lanes against the generic
/// dynamic-dispatch referee on every catalog organization. For each one
/// the trace replays four ways — interpreted and compiled, each through
/// the organization's lane ([`LaneMode::Auto`]) and through the generic
/// [`FrontEnd`] path ([`LaneMode::Generic`]) — and all four
/// [`RunResult`](sttcache::RunResult)s must be bit-identical. Returns
/// one message per divergence; empty when the trace passes everywhere.
pub fn check_lane(label: &str, trace: &Trace) -> Vec<String> {
    let mut failures = Vec::new();
    for org in all_organizations() {
        let platform = Platform::new(org).expect("canonical organization validates");
        let lane = platform.run_trace_with(trace, LaneMode::Auto);
        let generic = platform.run_trace_with(trace, LaneMode::Generic);
        if lane != generic {
            failures.push(format!(
                "[{}] {label}: lane replay diverged from the generic referee \
                 ({} vs {} cycles)",
                org.name(),
                lane.cycles(),
                generic.cycles()
            ));
            continue;
        }
        let compiled = CompiledTrace::compile(trace, platform.dl1_geometry());
        let lane_compiled = platform.run_compiled_with(&compiled, LaneMode::Auto);
        let generic_compiled = platform.run_compiled_with(&compiled, LaneMode::Generic);
        if lane_compiled != generic_compiled {
            failures.push(format!(
                "[{}] {label}: compiled lane replay diverged from the generic referee \
                 ({} vs {} cycles)",
                org.name(),
                lane_compiled.cycles(),
                generic_compiled.cycles()
            ));
            continue;
        }
        if lane_compiled != lane {
            failures.push(format!(
                "[{}] {label}: compiled lane replay diverged from interpreted lane replay \
                 ({} vs {} cycles)",
                org.name(),
                lane_compiled.cycles(),
                lane.cycles()
            ));
        }
    }
    failures
}

/// Generates one adversarial trace and runs [`check_lane`] on it — the
/// `--kind lane` leg of `sttcache-check`.
///
/// # Errors
///
/// Returns the structured [`CheckFailure`] when any organization's lane
/// replay (interpreted or compiled) diverges from the generic referee.
pub fn run_lane_case(kind: Adversary, seed: u64, events: usize) -> Result<(), CheckFailure> {
    let trace = adversarial_trace(kind, seed, events);
    let failures = check_lane(&format!("{}#{seed:#x}", kind.name()), &trace);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CheckFailure {
            kind,
            seed,
            events,
            failures,
        })
    }
}

/// The fixed seeds `--quick` runs (plus [`testkit::base_seed`]'s
/// override when `STTCACHE_TEST_SEED` is set).
///
/// [`testkit::base_seed`]: crate::testkit::base_seed
pub fn quick_seeds() -> Vec<u64> {
    let mut seeds = vec![DEFAULT_SEED, DEFAULT_SEED ^ 0x9E37_79B9_7F4A_7C15];
    if let Some(s) = crate::testkit::base_seed() {
        seeds.push(s);
    }
    seeds
}

/// Greedy chunk-removal minimization (ddmin-style): repeatedly removes
/// event chunks, keeping any removal under which `still_fails` holds,
/// halving the chunk size until single events survive. Returns the
/// shortest failing event list found. `still_fails(&events)` must be
/// true for the input.
pub fn shrink_events(
    events: &[TraceEvent],
    still_fails: impl Fn(&[TraceEvent]) -> bool,
) -> Vec<TraceEvent> {
    let mut kept: Vec<TraceEvent> = events.to_vec();
    let mut chunk = (kept.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < kept.len() {
            let end = (i + chunk).min(kept.len());
            let mut candidate = Vec::with_capacity(kept.len() - (end - i));
            candidate.extend_from_slice(&kept[..i]);
            candidate.extend_from_slice(&kept[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                kept = candidate; // removal kept the failure: don't advance
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    kept
}

/// Rebuilds a [`Trace`] from a raw event list (shrink support).
pub fn trace_from_events(events: &[TraceEvent]) -> Trace {
    let mut rec = TraceRecorder::with_capacity(events.len());
    for e in events {
        match *e {
            TraceEvent::Load { addr, bytes } => rec.load(addr, bytes as usize),
            TraceEvent::Store { addr, bytes } => rec.store(addr, bytes as usize),
            TraceEvent::Prefetch { addr } => rec.prefetch(addr),
            TraceEvent::Compute { ops } => rec.compute(ops as u64),
            TraceEvent::Branch { taken } => rec.branch(taken),
        }
    }
    rec.into_trace()
}

/// Minimizes a failing adversarial trace with [`shrink_events`] against
/// the full differential check. Expensive (each probe replays every
/// catalog organization); meant for `sttcache-check --shrink` on a repro.
pub fn shrink_failure(failure: &CheckFailure) -> Trace {
    let trace = adversarial_trace(failure.kind, failure.seed, failure.events);
    let minimal = shrink_events(trace.events(), |evs| {
        !check_trace("shrink-probe", &trace_from_events(evs))
            .failures
            .is_empty()
    });
    trace_from_events(&minimal)
}

/// [`shrink_failure`]'s counterpart for `--kind compiled` failures: the
/// probe is [`check_compiled`] instead of the oracle differential.
pub fn shrink_compiled_failure(failure: &CheckFailure) -> Trace {
    let trace = adversarial_trace(failure.kind, failure.seed, failure.events);
    let minimal = shrink_events(trace.events(), |evs| {
        !check_compiled("shrink-probe", &trace_from_events(evs)).is_empty()
    });
    trace_from_events(&minimal)
}

/// [`shrink_failure`]'s counterpart for `--kind lane` failures: the
/// probe is [`check_lane`] against the generic referee.
pub fn shrink_lane_failure(failure: &CheckFailure) -> Trace {
    let trace = adversarial_trace(failure.kind, failure.seed, failure.events);
    let minimal = shrink_events(trace.events(), |evs| {
        !check_lane("shrink-probe", &trace_from_events(evs)).is_empty()
    });
    trace_from_events(&minimal)
}

/// Derives one irregular-workload trace from `(kind, seed, events)`:
/// the adversary family salts the seed (so every slot of a fuzz plan
/// lands on a different corner), the salted seed picks an irregular
/// catalog entry and a transformation combination, and the kernel's
/// deterministic recording is truncated to about `events` architectural
/// events. Same inputs — same trace, byte for byte.
pub fn irregular_trace(kind: Adversary, seed: u64, events: usize) -> (String, Trace) {
    let mut rng = Rng::new(seed ^ (kind as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
    let specs = sttcache_workloads::catalog::family(sttcache_workloads::WorkloadFamily::Irregular);
    let spec = specs[rng.usize_in(0, specs.len() - 1)];
    let combos = sttcache_workloads::conformance::all_transform_combos();
    let transforms = combos[rng.usize_in(0, combos.len() - 1)];
    let trace = crate::trace_cache::record_trace(
        spec.workload,
        sttcache_workloads::ProblemSize::Mini,
        transforms,
    );
    let trace = if trace.len() > events {
        trace_from_events(&trace.events()[..events])
    } else {
        trace
    };
    (format!("{}#{seed:#x}", spec.cli), trace)
}

/// Cross-checks one irregular-workload trace through every layer at
/// once: the shadow-oracle differential ([`check_trace`]), the compiled
/// structure-of-arrays replay ([`check_compiled`]) and the monomorphic
/// lanes ([`check_lane`]). Pointer-chasing streams have none of the
/// affine kernels' regularity, so this is the leg that aims the whole
/// verification stack at data-dependent access patterns.
pub fn check_irregular(label: &str, trace: &Trace) -> Vec<String> {
    let mut failures = check_trace(label, trace).failures;
    failures.extend(check_compiled(label, trace));
    failures.extend(check_lane(label, trace));
    failures
}

/// Derives one irregular-workload trace and runs [`check_irregular`] on
/// it — the `--kind irregular` leg of `sttcache-check`.
///
/// # Errors
///
/// Returns the structured [`CheckFailure`] when any organization fails
/// the oracle differential, the compiled cross-check or the lane
/// cross-check on the derived trace.
pub fn run_irregular_case(kind: Adversary, seed: u64, events: usize) -> Result<(), CheckFailure> {
    let (label, trace) = irregular_trace(kind, seed, events);
    let failures = check_irregular(&label, &trace);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CheckFailure {
            kind,
            seed,
            events,
            failures,
        })
    }
}

/// [`shrink_failure`]'s counterpart for `--kind irregular` failures:
/// the probe is the combined [`check_irregular`] battery.
pub fn shrink_irregular_failure(failure: &CheckFailure) -> Trace {
    let (_, trace) = irregular_trace(failure.kind, failure.seed, failure.events);
    let minimal = shrink_events(trace.events(), |evs| {
        !check_irregular("shrink-probe", &trace_from_events(evs)).is_empty()
    });
    trace_from_events(&minimal)
}

/// One multi-core fuzz case: 2–4 cores, each with its own adversarial
/// trace, catalog organization and phase offset, co-scheduled over one
/// shared L2.
#[derive(Debug, Clone)]
pub struct MulticoreCase {
    /// Per-core private front-end organizations.
    pub orgs: Vec<DCacheOrganization>,
    /// Per-core phase offsets.
    pub offsets: Vec<Cycle>,
    /// Per-core traces (untranslated; the platform stripes addresses).
    pub traces: Vec<Trace>,
}

/// Derives a deterministic multi-core case from `(kind, seed)`: core
/// count (2–4), per-core organizations, staggered offsets and one
/// adversarial trace per core (core 0 always uses `kind`, the others
/// draw their family from the seed). Same inputs — same case.
pub fn multicore_case(kind: Adversary, seed: u64, events: usize) -> MulticoreCase {
    let mut rng = Rng::new(seed ^ 0x6D63_6F72_6531_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = rng.usize_in(2, 4);
    let pool = all_organizations();
    let mut orgs = Vec::with_capacity(n);
    let mut offsets = Vec::with_capacity(n);
    let mut traces = Vec::with_capacity(n);
    for i in 0..n {
        let family = if i == 0 {
            kind
        } else {
            Adversary::ALL[rng.usize_in(0, Adversary::ALL.len() - 1)]
        };
        let trace_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        traces.push(adversarial_trace(family, trace_seed, (events / n).max(16)));
        orgs.push(pool[rng.usize_in(0, pool.len() - 1)]);
        offsets.push(rng.u64_in(0, 777));
    }
    MulticoreCase {
        orgs,
        offsets,
        traces,
    }
}

/// Cross-checks one co-scheduled multi-core run, five ways:
///
/// 1. **Determinism** — two runs of the same case are bit-identical,
///    and the audited run schedules the cores identically.
/// 2. **Per-core isolated differential** — each core's functional event
///    counts match both its trace summary and the same trace run alone
///    on [`MultiPlatform::isolated_config`]: co-scheduling may change
///    *when* things happen, never *what* happens.
/// 3. **Per-core shadow oracle** — after the audited drain, every line
///    still resident in a core's private front-end must sit inside that
///    core's address stripe *and* cover bytes its own program touched:
///    no phantom lines, and none leaked from another core.
/// 4. **Shared-level residency** — every line left in the shared L2
///    must belong to the stripe of some core that actually touched it.
/// 5. **Conservation + invariants** — shared-L2 reads equal the summed
///    private-DL1 fills, shared-L2 writes the summed write-backs, the
///    drain leaves nothing dirty, and the armed invariant gate stays
///    silent.
///
/// Returns one message per finding; empty when the case passes.
pub fn check_multicore(label: &str, case: &MulticoreCase) -> Vec<String> {
    let mut failures = Vec::new();
    let specs: Vec<CoreSpec> = case
        .orgs
        .iter()
        .zip(&case.offsets)
        .map(|(&org, &off)| CoreSpec::staggered(org, off))
        .collect();
    let platform = match MultiPlatform::new(MultiPlatformConfig::new(specs)) {
        Ok(p) => p,
        Err(e) => return vec![format!("{label}: platform rejected the case: {e}")],
    };
    let refs: Vec<&Trace> = case.traces.iter().collect();

    let gate_was_on = invariants::enabled();
    invariants::set_enabled(true);
    let _ = invariants::take_violations();
    let first = platform.run_traces(&refs);
    let second = platform.run_traces(&refs);
    let (audited, audit) = platform.run_traces_audited(&refs);
    let (violations, total) = invariants::take_violations();
    invariants::set_enabled(gate_was_on);

    if first != second {
        failures.push(format!("{label}: co-scheduled run is not deterministic"));
    }
    if audited
        .cores
        .iter()
        .zip(&first.cores)
        .any(|(a, b)| a.core != b.core)
    {
        failures.push(format!(
            "{label}: the audited run scheduled the cores differently"
        ));
    }
    for v in &violations {
        failures.push(format!("{label}: invariant: {v}"));
    }
    if total > violations.len() {
        failures.push(format!(
            "{label}: … and {} more violations past the retention cap",
            total - violations.len()
        ));
    }
    if audit.dirty_after_drain != 0 {
        failures.push(format!(
            "{label}: {} dirty lines survived the audited drain",
            audit.dirty_after_drain
        ));
    }

    // Per-core: trace summary, isolated differential, private residency.
    let mut mirrors = Vec::with_capacity(case.traces.len());
    for (idx, trace) in case.traces.iter().enumerate() {
        let r = &first.cores[idx];
        let (t_loads, t_stores, t_prefetches, t_branches) = trace.summary();
        if (
            r.core.loads,
            r.core.stores,
            r.core.prefetches,
            r.core.branches,
        ) != (t_loads, t_stores, t_prefetches, t_branches)
        {
            failures.push(format!(
                "{label}: core {idx} executed {}L/{}S/{}P/{}B, its trace holds \
                 {t_loads}L/{t_stores}S/{t_prefetches}P/{t_branches}B",
                r.core.loads, r.core.stores, r.core.prefetches, r.core.branches
            ));
        }
        let iso = Platform::with_config(platform.isolated_config(idx))
            .expect("validated configuration builds")
            .run_trace(trace);
        if (iso.core.loads, iso.core.stores, iso.core.instructions)
            != (r.core.loads, r.core.stores, r.core.instructions)
        {
            failures.push(format!(
                "{label}: core {idx}'s functional counts diverged from its isolated run"
            ));
        }
        let mut mirror = OracleMirror::new();
        trace.replay_into(&mut mirror);
        let stripe = idx as u64 * CORE_ADDRESS_STRIDE;
        for &(base, len) in &audit.core_resident[idx] {
            if base.0 < stripe || base.0 - stripe >= CORE_ADDRESS_STRIDE {
                failures.push(format!(
                    "{label}: core {idx} holds line {base} from outside its address stripe"
                ));
            } else if !mirror.oracle().intersects_accessed(base.0 - stripe, len) {
                failures.push(format!(
                    "{label}: phantom line {base} ({len} B) resident in core {idx}'s \
                     front-end: its program never touched it"
                ));
            }
        }
        mirrors.push(mirror);
    }

    // Shared level: every surviving line belongs to the stripe of a core
    // whose program touched it.
    for &(base, len) in &audit.shared_resident {
        let idx = (base.0 / CORE_ADDRESS_STRIDE) as usize;
        match mirrors.get(idx) {
            None => failures.push(format!(
                "{label}: shared L2 holds line {base} outside every core's address stripe"
            )),
            Some(mirror) => {
                let stripe = idx as u64 * CORE_ADDRESS_STRIDE;
                if !mirror.oracle().intersects_accessed(base.0 - stripe, len) {
                    failures.push(format!(
                        "{label}: phantom line {base} ({len} B) resident in the shared L2: \
                         core {idx}'s program never touched it"
                    ));
                }
            }
        }
    }

    // Conservation: the shared level's demand is exactly the sum of the
    // private DL1s' fills and write-backs.
    let fills: u64 = first.cores.iter().map(|c| c.dl1.fills).sum();
    let writebacks: u64 = first.cores.iter().map(|c| c.dl1.writebacks).sum();
    if first.shared_l2.reads != fills {
        failures.push(format!(
            "{label}: shared L2 saw {} reads but the private DL1s filled {} lines",
            first.shared_l2.reads, fills
        ));
    }
    if first.shared_l2.writes != writebacks {
        failures.push(format!(
            "{label}: shared L2 saw {} writes but the private DL1s wrote back {} lines",
            first.shared_l2.writes, writebacks
        ));
    }
    failures
}

/// Generates one derived multi-core case and runs [`check_multicore`]
/// on it — the `--kind multicore` leg of `sttcache-check`.
///
/// # Errors
///
/// Returns the structured [`CheckFailure`] when the co-scheduled run
/// fails determinism, the per-core isolated differential, the residency
/// audit, conservation, or an armed invariant.
pub fn run_multicore_case(kind: Adversary, seed: u64, events: usize) -> Result<(), CheckFailure> {
    let case = multicore_case(kind, seed, events);
    let failures = check_multicore(&format!("mc-{}#{seed:#x}", kind.name()), &case);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CheckFailure {
            kind,
            seed,
            events,
            failures,
        })
    }
}

/// [`shrink_failure`]'s counterpart for `--kind multicore` failures:
/// first greedily drops whole cores, then ddmin-shrinks each surviving
/// core's event list, keeping every reduction under which
/// [`check_multicore`] still fails. Returns the minimal failing mix.
pub fn shrink_multicore_failure(failure: &CheckFailure) -> MulticoreCase {
    let mut case = multicore_case(failure.kind, failure.seed, failure.events);
    let fails = |c: &MulticoreCase| !check_multicore("shrink-probe", c).is_empty();
    let mut i = 0;
    while case.traces.len() > 1 && i < case.traces.len() {
        let mut candidate = case.clone();
        candidate.orgs.remove(i);
        candidate.offsets.remove(i);
        candidate.traces.remove(i);
        if fails(&candidate) {
            case = candidate; // core removed: re-probe the same index
        } else {
            i += 1;
        }
    }
    for i in 0..case.traces.len() {
        let minimal = shrink_events(case.traces[i].events(), |evs| {
            let mut candidate = case.clone();
            candidate.traces[i] = trace_from_events(evs);
            fails(&candidate)
        });
        case.traces[i] = trace_from_events(&minimal);
    }
    case
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttcache_mem::Addr;

    #[test]
    fn mirror_counts_and_hashes_are_order_sensitive() {
        let mut a = OracleMirror::new();
        a.store(Addr(0x100), 8);
        a.load(Addr(0x100), 8);
        let mut b = OracleMirror::new();
        b.load(Addr(0x100), 8);
        b.store(Addr(0x100), 8);
        assert_eq!(a.oracle().loads(), 1);
        assert_eq!(a.oracle().stores(), 1);
        // Load-before-store reads unwritten memory: different value hash.
        assert_ne!(a.load_hash(), b.load_hash());
    }

    #[test]
    fn adversarial_traces_are_deterministic() {
        for kind in Adversary::ALL {
            let t1 = adversarial_trace(kind, 7, 300);
            let t2 = adversarial_trace(kind, 7, 300);
            assert_eq!(t1, t2, "{} not deterministic", kind.name());
            assert!(!t1.is_empty());
            assert_ne!(t1, adversarial_trace(kind, 8, 300));
        }
    }

    #[test]
    fn adversary_names_round_trip() {
        for kind in Adversary::ALL {
            assert_eq!(Adversary::from_name(kind.name()), Some(kind));
        }
        assert_eq!(Adversary::from_name("nope"), None);
    }

    #[test]
    fn small_random_trace_passes_differentially() {
        let trace = adversarial_trace(Adversary::RandomMix, DEFAULT_SEED, 400);
        let report = check_trace("unit", &trace);
        assert!(report.passed(), "failures: {:#?}", report.failures);
        assert_eq!(report.reports.len(), sttcache::catalog::catalog().len());
        assert_eq!(report.reports[0].organization, "SRAM baseline");
    }

    #[test]
    fn compiled_cross_check_passes_on_adversarial_traces() {
        for kind in [Adversary::LineStraddle, Adversary::RandomMix] {
            let trace = adversarial_trace(kind, DEFAULT_SEED, 400);
            let failures = check_compiled("unit", &trace);
            assert!(failures.is_empty(), "failures: {failures:#?}");
        }
    }

    #[test]
    fn compiled_case_runner_reports_clean_on_a_quick_seed() {
        assert!(run_compiled_case(Adversary::BankPingPong, DEFAULT_SEED, 300).is_ok());
    }

    #[test]
    fn lane_cross_check_passes_on_adversarial_traces() {
        for kind in [Adversary::AliasWriteBurst, Adversary::RandomMix] {
            let trace = adversarial_trace(kind, DEFAULT_SEED, 400);
            let failures = check_lane("unit", &trace);
            assert!(failures.is_empty(), "failures: {failures:#?}");
        }
    }

    #[test]
    fn lane_case_runner_reports_clean_on_a_quick_seed() {
        assert!(run_lane_case(Adversary::MshrSaturation, DEFAULT_SEED, 300).is_ok());
    }

    #[test]
    fn irregular_traces_are_deterministic_and_capped() {
        let (label, t1) = irregular_trace(Adversary::RandomMix, 7, 500);
        let (label2, t2) = irregular_trace(Adversary::RandomMix, 7, 500);
        assert_eq!(label, label2);
        assert_eq!(t1, t2, "irregular derivation not deterministic");
        assert!(!t1.is_empty());
        assert!(t1.len() <= 500);
        // A different adversary salt lands on a different corner.
        let (_, t3) = irregular_trace(Adversary::BankPingPong, 7, 500);
        assert_ne!(t1, t3);
    }

    #[test]
    fn irregular_case_runner_reports_clean_on_a_quick_seed() {
        assert!(run_irregular_case(Adversary::LineStraddle, DEFAULT_SEED, 300).is_ok());
    }

    #[test]
    fn shrink_finds_a_single_culprit_event() {
        let trace = adversarial_trace(Adversary::RandomMix, 42, 200);
        let is_store = |e: &TraceEvent| matches!(e, TraceEvent::Store { .. });
        assert!(trace.events().iter().any(is_store));
        let minimal = shrink_events(trace.events(), |evs| evs.iter().any(is_store));
        assert_eq!(minimal.len(), 1);
        assert!(is_store(&minimal[0]));
    }
}

//! Extension experiments beyond the paper's figures.
//!
//! These cover the directions the paper motivates but does not evaluate:
//! an NVM instruction cache (its reference \[7\]), a hardware next-line
//! prefetcher as the alternative to the VWB's software prefetching, the
//! AWARE asymmetric-write architecture (its reference \[1\]), STT-MRAM in
//! the L2 instead of the L1, and the per-benchmark energy claim ("gains in
//! area and even energy").

use crate::experiments::{run_benchmark, SeriesTable};
use crate::parallel::SweepRunner;
use crate::trace_cache;
use sttcache::{
    l2_config, nvm_dl1_config, nvm_il1_config, penalty_pct, sram_dl1_config, sram_il1_config,
    DCacheOrganization, DlOneTechnology, PlatformConfig, VwbConfig, VwbFrontEnd,
};
use sttcache_cpu::{Core, CoreConfig, FetchUnit, MemPort};
use sttcache_mem::{AsymmetricWrite, Cache, CacheConfig, MainMemory, NextLinePrefetcher, Shared};
use sttcache_workloads::{catalog, ProblemSize, Transformations, Workload, WorkloadFamily};

/// The benchmark subset the extension studies sweep (one matrix product,
/// one column-heavy kernel, one streaming stencil, one solver), resolved
/// from the workload catalog so the tokens stay in one place.
pub fn ext_mix() -> [Workload; 4] {
    let w = |cli: &str| {
        catalog::by_cli(cli)
            .unwrap_or_else(|| panic!("extension mix kernel '{cli}' missing from the catalog"))
            .workload
    };
    [w("gemm"), w("mvt"), w("jacobi-2d"), w("trisolv")]
}

fn run_with_config(cfg: &PlatformConfig, workload: Workload, size: ProblemSize) -> u64 {
    trace_cache::run_config(cfg, workload, size, Transformations::none()).cycles()
}

/// Runs a kernel on a hand-built platform whose IL1 and DL1 miss into a
/// single *unified* (shared) L2 — the paper's real topology, expressible
/// with [`Shared`].
fn run_unified(
    workload: Workload,
    size: ProblemSize,
    dl1_tech: DlOneTechnology,
    il1_tech: DlOneTechnology,
    vwb: Option<VwbConfig>,
) -> u64 {
    let l2 = Shared::new(Cache::new(
        l2_config().expect("canonical l2"),
        MainMemory::new(100),
    ));
    let dl1_cfg = match dl1_tech {
        DlOneTechnology::Sram => sram_dl1_config(),
        DlOneTechnology::SttMram => nvm_dl1_config(),
    }
    .expect("canonical dl1");
    let il1_cfg = match il1_tech {
        DlOneTechnology::Sram => sram_il1_config(),
        DlOneTechnology::SttMram => nvm_il1_config(),
    }
    .expect("canonical il1");
    let il1 = Cache::new(il1_cfg, l2.clone());
    let dl1 = Cache::new(dl1_cfg, l2.clone());

    match vwb {
        Some(cfg) => {
            let fe = VwbFrontEnd::new(cfg, dl1).expect("canonical vwb over shared l2");
            let mut core = Core::new(CoreConfig::default(), fe);
            core.attach_fetch_unit(FetchUnit::new(Box::new(il1), 16 * 1024));
            trace_cache::drive(&mut core, workload, size, Transformations::none());
            core.report().cycles
        }
        None => {
            let mut core = Core::new(CoreConfig::default(), MemPort::new(dl1));
            core.attach_fetch_unit(FetchUnit::new(Box::new(il1), 16 * 1024));
            trace_cache::drive(&mut core, workload, size, Transformations::none());
            core.report().cycles
        }
    }
}

/// Extension 1 — NVM instruction cache (paper reference \[7\]), on the
/// paper's real topology: IL1 and DL1 missing into one *unified* L2.
///
/// Columns: NVM DL1 only (drop-in), NVM IL1 only, both NVM with the VWB on
/// the data side. Baseline: the all-SRAM platform with the same explicit
/// fetch model and shared L2.
pub fn ext_icache(size: ProblemSize) -> SeriesTable {
    use DlOneTechnology::{Sram, SttMram};
    let rows = SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        let base = run_unified(b, size, Sram, Sram, None);
        (
            b.label(),
            vec![
                penalty_pct(base, run_unified(b, size, SttMram, Sram, None)),
                penalty_pct(base, run_unified(b, size, Sram, SttMram, None)),
                penalty_pct(
                    base,
                    run_unified(b, size, SttMram, SttMram, Some(VwbConfig::default())),
                ),
            ],
        )
    });
    SeriesTable {
        series: vec!["NVM DL1".into(), "NVM IL1".into(), "NVM both + VWB".into()],
        rows,
    }
    .append_average()
}

/// Extension 2 — hardware next-line prefetcher vs the VWB.
///
/// Columns: plain drop-in NVM, drop-in NVM + hardware next-line
/// prefetcher, NVM + VWB with software prefetching. Shows the paper's
/// implicit claim: a hardware prefetcher inside the NVM DL1 cannot touch
/// the NVM *read-hit* latency, which is where the penalty lives.
pub fn ext_hw_prefetch(size: ProblemSize) -> SeriesTable {
    let rows = SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        let base = run_benchmark(
            DCacheOrganization::SramBaseline,
            b,
            size,
            Transformations::none(),
        )
        .cycles();
        let drop_in = run_benchmark(
            DCacheOrganization::NvmDropIn,
            b,
            size,
            Transformations::none(),
        )
        .cycles();
        // Hand-built platform: core over MemPort<NextLinePrefetcher<DL1>>.
        let hw = {
            let tail = Cache::new(l2_config().expect("canonical l2"), MainMemory::new(100));
            let dl1 = Cache::new(nvm_dl1_config().expect("canonical dl1"), tail);
            let pf = NextLinePrefetcher::new(dl1);
            let mut core = Core::new(CoreConfig::default(), MemPort::new(pf));
            trace_cache::drive(&mut core, b, size, Transformations::none());
            core.report().cycles
        };
        let vwb = run_benchmark(
            DCacheOrganization::nvm_vwb_default(),
            b,
            size,
            Transformations::only_prefetch(),
        )
        .cycles();
        (
            b.label(),
            vec![
                penalty_pct(base, drop_in),
                penalty_pct(base, hw),
                penalty_pct(base, vwb),
            ],
        )
    });
    SeriesTable {
        series: vec![
            "NVM drop-in".into(),
            "NVM + HW next-line".into(),
            "NVM + VWB (sw pf)".into(),
        ],
        rows,
    }
    .append_average()
}

/// Extension 3 — AWARE asymmetric writes (paper reference \[1\]).
///
/// Columns: NVM DL1 whose writes are all slow (4 cycles, the worst-case
/// asymmetric transition), the AWARE version (2-cycle fast writes, every
/// 8th write slow), and the paper's nominal 2-cycle-write DL1. Shows why
/// the paper calls write-oriented techniques insufficient: even fixing
/// writes entirely leaves the read penalty.
pub fn ext_aware(size: ProblemSize) -> SeriesTable {
    let dl1_with = |write: u64, aware: Option<AsymmetricWrite>| -> CacheConfig {
        let mut b = CacheConfig::builder();
        b.capacity_bytes(64 * 1024)
            .associativity(2)
            .line_bytes(64)
            .banks(4)
            .read_cycles(4)
            .write_cycles(write);
        if let Some(a) = aware {
            b.asymmetric_write(a);
        }
        b.build().expect("aware dl1 config is valid")
    };
    let rows = SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        let base = run_benchmark(
            DCacheOrganization::SramBaseline,
            b,
            size,
            Transformations::none(),
        )
        .cycles();
        let run_dl1 = |cfg: CacheConfig| -> u64 {
            let mut p = PlatformConfig::new(DCacheOrganization::NvmDropIn);
            p.dl1_override = Some(cfg);
            run_with_config(&p, b, size)
        };
        let all_slow = run_dl1(dl1_with(4, None));
        let aware = run_dl1(dl1_with(
            2,
            Some(AsymmetricWrite {
                slow_cycles: 4,
                slow_period: 8,
            }),
        ));
        let nominal = run_dl1(dl1_with(2, None));
        (
            b.label(),
            vec![
                penalty_pct(base, all_slow),
                penalty_pct(base, aware),
                penalty_pct(base, nominal),
            ],
        )
    });
    SeriesTable {
        series: vec![
            "all-slow writes".into(),
            "AWARE".into(),
            "nominal writes".into(),
        ],
        rows,
    }
    .append_average()
}

/// Extension 4 — STT-MRAM in the L2 instead of the L1.
///
/// The paper's introduction notes NVMs are mostly proposed for LLC/L2;
/// this experiment shows why that is the easy case: the DL1 filters almost
/// all accesses, so even a 2x-slower NVM L2 costs little.
pub fn ext_nvm_l2(size: ProblemSize) -> SeriesTable {
    let nvm_l2 = CacheConfig::builder()
        .capacity_bytes(2 * 1024 * 1024)
        .associativity(16)
        .line_bytes(64)
        .banks(4)
        .read_cycles(24)
        .write_cycles(14)
        .mshr_entries(8)
        .write_buffer_entries(8)
        .build()
        .expect("nvm l2 config is valid");
    let rows = SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        let base = run_benchmark(
            DCacheOrganization::SramBaseline,
            b,
            size,
            Transformations::none(),
        )
        .cycles();
        let mut l2_cfg = PlatformConfig::new(DCacheOrganization::SramBaseline);
        l2_cfg.l2_override = Some(nvm_l2);
        let nvm_l2_pen = penalty_pct(base, run_with_config(&l2_cfg, b, size));
        let nvm_l1_pen = penalty_pct(
            base,
            run_benchmark(
                DCacheOrganization::NvmDropIn,
                b,
                size,
                Transformations::none(),
            )
            .cycles(),
        );
        (b.label(), vec![nvm_l2_pen, nvm_l1_pen])
    });
    SeriesTable {
        series: vec!["NVM L2 (SRAM L1)".into(), "NVM L1 (SRAM L2)".into()],
        rows,
    }
    .append_average()
}

/// One benchmark's power-gating (sleep-entry) cost.
#[derive(Debug, Clone)]
pub struct SleepRow {
    /// Benchmark name.
    pub name: String,
    /// Dirty DL1 lines the SRAM platform must drain before power-gating.
    pub sram_dirty_lines: usize,
    /// Cycles the SRAM drain takes.
    pub sram_flush_cycles: u64,
    /// Dirty (volatile) VWB entries the NVM platform must drain.
    pub nvm_dirty_lines: usize,
    /// Cycles the NVM drain takes.
    pub nvm_flush_cycles: u64,
}

/// Extension 6 — "normally-off" power gating (the Toshiba line of work in
/// the paper's related-work listing).
///
/// Before power-gating the L1, a volatile SRAM DL1 must write every dirty
/// line back to the L2; a non-volatile STT-MRAM DL1 retains its contents
/// and only the small volatile VWB needs draining (into the NVM itself, at
/// NVM write speed). The rows report the sleep-entry cost at the end of
/// each kernel.
pub fn ext_normally_off(size: ProblemSize) -> Vec<SleepRow> {
    SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        // SRAM platform: hand-built so we keep the hierarchy after the run.
        let (sram_dirty, sram_cycles) = {
            let tail = Cache::new(l2_config().expect("canonical l2"), MainMemory::new(100));
            let dl1 = Cache::new(sram_dl1_config().expect("canonical sram dl1"), tail);
            let mut core = Core::new(CoreConfig::default(), MemPort::new(dl1));
            trace_cache::drive(&mut core, b, size, Transformations::none());
            let end = core.now();
            let mut dl1 = core.into_port().into_inner();
            let dirty = dl1.dirty_lines();
            let (flushed, done) = dl1.flush_dirty(end);
            debug_assert_eq!(flushed, dirty);
            (dirty, done - end)
        };
        // NVM + VWB platform: only the volatile buffer drains.
        let (nvm_dirty, nvm_cycles) = {
            let tail = Cache::new(l2_config().expect("canonical l2"), MainMemory::new(100));
            let dl1 = Cache::new(nvm_dl1_config().expect("canonical nvm dl1"), tail);
            let vwb =
                VwbFrontEnd::new(VwbConfig::default(), dl1).expect("canonical vwb configuration");
            let mut core = Core::new(CoreConfig::default(), vwb);
            trace_cache::drive(&mut core, b, size, Transformations::none());
            let end = core.now();
            let mut vwb = core.into_port();
            let (flushed, done) = vwb.flush_dirty(end);
            (flushed, done - end)
        };
        SleepRow {
            name: b.label(),
            sram_dirty_lines: sram_dirty,
            sram_flush_cycles: sram_cycles,
            nvm_dirty_lines: nvm_dirty,
            nvm_flush_cycles: nvm_cycles,
        }
    })
}

/// One benchmark's energy comparison.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Benchmark name.
    pub name: String,
    /// SRAM-platform total energy in µJ (includes the shared L2).
    pub sram_uj: f64,
    /// NVM + VWB platform total energy in µJ (includes the shared L2).
    pub nvm_uj: f64,
    /// SRAM DL1-only energy in µJ (dynamic + DL1 leakage over the run).
    pub sram_dl1_uj: f64,
    /// NVM DL1-only energy in µJ (dynamic + DL1 leakage + VWB accesses).
    pub nvm_dl1_uj: f64,
}

fn dl1_energy_uj(r: &sttcache::RunResult, clock_ghz: f64) -> f64 {
    let seconds = r.core.cycles as f64 / (clock_ghz * 1e9);
    let leakage_uj = r.energy.dl1_leakage_mw * seconds * 1e3;
    (r.energy.dl1_dynamic_pj + r.energy.buffer_dynamic_pj) * 1e-6 + leakage_uj
}

/// Extension 5 — per-benchmark energy (the paper's deferred power model).
///
/// DL1-level energy = per-access dynamic energy (technology models) + the
/// D-cache's leakage integrated over the run (+ the VWB's register-file
/// accesses on the NVM side). The STT-MRAM DL1 wins decisively on leakage
/// (28 mW vs ~106 mW); whole-platform totals also include the shared SRAM
/// L2, whose leakage scales with the (longer) NVM runtime, diluting the
/// saving — exactly why the paper argues for attacking the runtime penalty
/// first.
pub fn ext_energy(size: ProblemSize) -> Vec<EnergyRow> {
    let mut rows = SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        let sram = run_benchmark(
            DCacheOrganization::SramBaseline,
            b,
            size,
            Transformations::none(),
        );
        let nvm = run_benchmark(
            DCacheOrganization::nvm_vwb_default(),
            b,
            size,
            Transformations::none(),
        );
        EnergyRow {
            name: b.label(),
            sram_uj: sram.energy.total_uj(),
            nvm_uj: nvm.energy.total_uj(),
            sram_dl1_uj: dl1_energy_uj(&sram, 1.0),
            nvm_dl1_uj: dl1_energy_uj(&nvm, 1.0),
        }
    });
    let mut sums = (0.0, 0.0, 0.0, 0.0);
    for row in &rows {
        sums.0 += row.sram_uj;
        sums.1 += row.nvm_uj;
        sums.2 += row.sram_dl1_uj;
        sums.3 += row.nvm_dl1_uj;
    }
    rows.push(EnergyRow {
        name: "TOTAL".into(),
        sram_uj: sums.0,
        nvm_uj: sums.1,
        sram_dl1_uj: sums.2,
        nvm_dl1_uj: sums.3,
    });
    rows
}

/// Catalog sweep — the full organization catalog on one grid.
///
/// One column per non-reference catalog entry (drop-in, VWB, L0, EMSHR,
/// and the beyond-paper VWB/EMSHR hybrid stack), penalty vs the catalog's
/// SRAM reference. New catalog organizations appear here automatically —
/// the sweep enumerates `sttcache::catalog`, it does not keep its own
/// list.
pub fn ext_catalog(size: ProblemSize) -> SeriesTable {
    let entries = sttcache::catalog::catalog();
    let (reference, rest) = entries
        .split_first()
        .expect("the catalog always has the SRAM reference");
    let rows = SweepRunner::current().map_ok(&ext_mix(), |_, &b| {
        let base = run_with_config(&PlatformConfig::new(reference.organization), b, size);
        (
            b.label(),
            rest.iter()
                .map(|e| {
                    penalty_pct(
                        base,
                        run_with_config(&PlatformConfig::new(e.organization), b, size),
                    )
                })
                .collect(),
        )
    });
    SeriesTable {
        series: rest.iter().map(|e| e.name.to_string()).collect(),
        rows,
    }
    .append_average()
}

/// Irregular sweep — the pointer-chasing workload family on the full
/// organization catalog.
///
/// One row per irregular catalog workload (linked-list chase, hash-table
/// probing, CSR BFS, GC-style marking), one column per non-reference
/// organization, penalty vs the catalog's SRAM reference. The paper only
/// evaluates affine PolyBench loop nests; this sweep shows how the same
/// organizations fare when the access stream is data-dependent and the
/// VWB's software prefetching has far less to hide behind. Enumerates
/// both catalogs — new organizations *and* new irregular workloads appear
/// here automatically.
pub fn ext_irregular(size: ProblemSize) -> SeriesTable {
    let entries = sttcache::catalog::catalog();
    let (reference, rest) = entries
        .split_first()
        .expect("the catalog always has the SRAM reference");
    let workloads = catalog::family(WorkloadFamily::Irregular);
    let rows = SweepRunner::current().map_ok(&workloads, |_, spec| {
        let base = run_with_config(
            &PlatformConfig::new(reference.organization),
            spec.workload,
            size,
        );
        (
            spec.name.to_string(),
            rest.iter()
                .map(|e| {
                    penalty_pct(
                        base,
                        run_with_config(&PlatformConfig::new(e.organization), spec.workload, size),
                    )
                })
                .collect(),
        )
    });
    SeriesTable {
        series: rest.iter().map(|e| e.name.to_string()).collect(),
        rows,
    }
    .append_average()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZE: ProblemSize = ProblemSize::Mini;

    #[test]
    fn catalog_sweep_covers_every_non_reference_organization() {
        let t = ext_catalog(SIZE);
        assert_eq!(t.series.len(), sttcache::catalog::catalog().len() - 1);
        // The hybrid column exists and must not lose to plain drop-in.
        let hybrid = t
            .series
            .iter()
            .position(|s| s.contains("hybrid"))
            .expect("hybrid in catalog sweep");
        assert!(t.average(hybrid) <= t.average(0) + 0.2);
        // The VWB recovers most of the drop-in penalty here too.
        let vwb = t.series.iter().position(|s| s == "NVM + VWB").unwrap();
        assert!(t.average(vwb) < t.average(0));
    }

    #[test]
    fn irregular_sweep_covers_the_family_on_every_organization() {
        let t = ext_irregular(SIZE);
        assert_eq!(t.series.len(), sttcache::catalog::catalog().len() - 1);
        let family = catalog::family(WorkloadFamily::Irregular);
        assert!(family.len() >= 4, "irregular family has >= 4 kernels");
        assert_eq!(t.rows.len(), family.len() + 1); // + AVERAGE
        for (row, spec) in t.rows.iter().zip(&family) {
            assert_eq!(row.0, spec.name);
        }
        // Drop-in NVM costs real cycles on pointer chasing too.
        assert!(t.average(0) > 0.0, "drop-in penalty {}", t.average(0));
    }

    #[test]
    fn nvm_il1_hurts_more_than_nvm_dl1_on_fetch_bound_kernels() {
        let t = ext_icache(SIZE);
        // Every column shows a positive penalty.
        for (name, cols) in &t.rows {
            for v in cols {
                assert!(*v > -10.0, "{name}: {v}");
            }
        }
    }

    #[test]
    fn hw_prefetcher_helps_less_than_the_vwb() {
        let t = ext_hw_prefetch(SIZE);
        let drop_in = t.average(0);
        let hw = t.average(1);
        let vwb = t.average(2);
        assert!(hw <= drop_in + 1.0, "hw {hw:.1} vs drop-in {drop_in:.1}");
        assert!(vwb < hw, "vwb {vwb:.1} must beat hw prefetch {hw:.1}");
    }

    #[test]
    fn aware_sits_between_slow_and_nominal_writes() {
        let t = ext_aware(SIZE);
        let slow = t.average(0);
        let aware = t.average(1);
        let nominal = t.average(2);
        assert!(aware <= slow + 0.2);
        assert!(nominal <= aware + 0.2);
        // But even perfect writes leave the read-dominated penalty.
        assert!(nominal > 15.0);
    }

    #[test]
    fn nvm_l2_is_far_cheaper_than_nvm_l1() {
        let t = ext_nvm_l2(SIZE);
        let l2 = t.average(0);
        let l1 = t.average(1);
        assert!(l2 < l1 / 3.0, "L2 {l2:.1}% vs L1 {l1:.1}%");
    }

    #[test]
    fn normally_off_sleep_is_cheap_on_nvm() {
        for row in ext_normally_off(SIZE) {
            assert!(
                row.nvm_flush_cycles < row.sram_flush_cycles / 4,
                "{}: nvm {} vs sram {}",
                row.name,
                row.nvm_flush_cycles,
                row.sram_flush_cycles
            );
            assert!(row.nvm_dirty_lines <= 4, "{}", row.name); // <= VWB entries
            assert!(row.sram_dirty_lines > 4, "{}", row.name);
        }
    }

    #[test]
    fn nvm_dl1_saves_energy() {
        let rows = ext_energy(SIZE);
        let total = rows.last().expect("total row");
        // The DL1-level saving is decisive (leakage dominates at 1 GHz).
        assert!(
            total.nvm_dl1_uj < total.sram_dl1_uj * 0.6,
            "{} vs {}",
            total.nvm_dl1_uj,
            total.sram_dl1_uj
        );
        // Whole-platform totals are within a few percent of each other
        // (the shared L2 leaks over the NVM's longer runtime).
        assert!(total.nvm_uj < total.sram_uj * 1.1);
    }
}

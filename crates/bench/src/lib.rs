//! Experiment harness for the DATE 2015 STT-MRAM L1 D-cache paper.
//!
//! One function per table/figure of the paper's evaluation. Each returns
//! the figure's rows/series as data (so the Criterion benches, the
//! `figures` binary and the integration tests all share one source of
//! truth) and has a pretty-printer that emits the same layout the paper
//! plots.
//!
//! Penalty convention (identical to the paper): every bar is
//! `100·(cycles(config) − cycles(SRAM baseline)) / cycles(SRAM baseline)`,
//! with the SRAM D-cache platform running the *untransformed* kernels as
//! the fixed 100 % reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod experiments;
pub mod explain;
pub mod extensions;
pub mod figures;
pub mod multicore;
pub mod parallel;
pub mod profile;
pub mod spans;
pub mod testkit;
pub mod trace_cache;
pub mod workload;

pub use experiments::{
    fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, run_benchmark, table1, BenchResult,
    ContributionRow, Fig4Row, Fig6Row, Fig9Row, SeriesTable,
};
pub use parallel::{GridPoint, SweepError, SweepRunner};
pub use profile::{ProfileReport, ProfileSnapshot};
pub use trace_cache::{TraceCache, TraceCacheStats, TraceKey};
pub use workload::WorkloadError;

//! Record-once/replay-many trace cache for the sweep grid.
//!
//! Every figure sweeps a kernel × organization × transformation grid, but
//! a kernel's architectural event stream depends only on the *kernel*
//! side of the grid — `(kernel, problem size, transformation set)` — and
//! never on the cache organization under test. The cache records each
//! such stream exactly once into a compact [`Trace`], lowers it once per
//! DL1 geometry into a structure-of-arrays [`CompiledTrace`] (pre-decoded
//! event kinds, line addresses and set/bank indices), and replays the
//! compiled form for every organization — skipping the kernel's
//! floating-point arithmetic, per-access virtual dispatch *and* the
//! per-event address math on every grid point after the first. Compiled
//! entries live alongside the recorded traces under the same LRU byte
//! cap; `--no-compiled-replay` (or [`set_compiled_enabled`]`(false)`)
//! falls back to the interpreted [`Trace::replay_into`] path.
//!
//! Compilation is *size-capped*: only traces at or below
//! [`compiled_max_events`] events (default 16 Ki, override with
//! `STTCACHE_COMPILED_MAX_EVENTS`, `0` = unlimited) take the compiled
//! path. The interpreted replay already runs over pre-decoded events and
//! the cache-model cost per event dwarfs the address decompose, so the
//! compiled win per replay is small — while materialising columns for
//! multi-hundred-kiloevent streams costs real memory and page-fault time
//! that the result-memoized sweep never amortises. The cap keeps the
//! compiled path on by default where it pays (small, hot streams) and
//! neutral everywhere else.
//!
//! Concurrency: [`SweepRunner`](crate::parallel::SweepRunner) workers that
//! race on the same key block on a per-key [`OnceLock`] while the first
//! arrival records, then share the resulting `Arc<Trace>` — each stream
//! is recorded at most once per process. Memory is bounded by
//! `STTCACHE_TRACE_CACHE_BYTES` (least-recently-used traces are evicted
//! past the cap); `--no-trace-cache` or [`set_enabled`]`(false)` bypasses
//! the cache entirely.
//!
//! Replay is cycle-for-cycle and statistic-for-statistic identical to
//! direct execution (the kernels are deterministic and the recorder's
//! compute coalescing is timing-neutral), so figure output is byte-
//! identical with the cache on or off. Setting `STTCACHE_TRACE_CHECK=1`
//! re-verifies that invariant at runtime: every non-memoized grid point
//! is replayed both compiled and interpreted, every SRAM-baseline grid
//! point is also executed directly, and the full [`RunResult`]s are
//! compared.

use crate::profile;
use crate::spans;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use sttcache::{DCacheOrganization, Platform, PlatformConfig, RunResult};
use sttcache_cpu::{CompiledTrace, Engine, Trace, TraceGeometry, TraceRecorder};
use sttcache_workloads::{ProblemSize, Transformations, Workload};

/// Identifies one recorded event stream: the organization-independent
/// half of a sweep grid point. The workload side comes from the catalog
/// (`sttcache_workloads::catalog`) — affine kernels, irregular kernels
/// and externally ingested traces (whose [`Workload::External`] identity
/// is already a content hash) all key the cache the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The workload identity.
    pub workload: Workload,
    /// The problem size the kernel ran at (ignored by external traces,
    /// which carry no kernel).
    pub size: ProblemSize,
    /// The code transformations applied to the kernel (likewise ignored
    /// by external traces).
    pub transforms: Transformations,
}

impl TraceKey {
    /// The key for one (workload, size, transformation-set) stream.
    pub fn new(
        workload: impl Into<Workload>,
        size: ProblemSize,
        transforms: Transformations,
    ) -> Self {
        TraceKey {
            workload: workload.into(),
            size,
            transforms,
        }
    }

    /// Human-readable form (diagnostics only).
    pub fn label(&self) -> String {
        format!(
            "{}/{:?}/{}",
            self.workload.label(),
            self.size,
            self.transforms.label()
        )
    }
}

/// Hit/miss/eviction counters of a [`TraceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCacheStats {
    /// Lookups that found a resident or in-flight trace.
    pub hits: u64,
    /// Lookups that had to record.
    pub misses: u64,
    /// Traces evicted to stay under the memory cap.
    pub evictions: u64,
}

impl TraceCacheStats {
    /// Hits over total lookups, in [0, 1]; 1 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache slot: the shared once-cell workers block on, plus LRU
/// bookkeeping. `bytes == 0` marks an in-flight recording that is not
/// yet accounted against the cap (and is never evicted). Generic over the
/// cached value so recorded traces and compiled traces share the slot
/// machinery (and, through [`Inner`], one byte cap).
struct Entry<V> {
    cell: Arc<OnceLock<V>>,
    bytes: usize,
    last_used: u64,
}

/// Key of one compiled entry: the stream plus the DL1 geometry its
/// addresses were pre-decoded for.
type CompiledKey = (TraceKey, TraceGeometry);

/// Which map an eviction victim lives in.
#[derive(Clone, Copy)]
enum Victim {
    Trace(TraceKey),
    Compiled(CompiledKey),
}

struct Inner {
    entries: HashMap<TraceKey, Entry<Arc<Trace>>>,
    compiled: HashMap<CompiledKey, Entry<Arc<CompiledTrace>>>,
    resident_bytes: usize,
    tick: u64,
    stats: TraceCacheStats,
}

/// A bounded, thread-shared store of recorded traces.
///
/// The process-wide instance behind [`cached_trace`] is what the sweeps
/// use; independent instances exist so tests can exercise capacity and
/// concurrency behaviour without touching global state.
pub struct TraceCache {
    cap_bytes: usize,
    inner: Mutex<Inner>,
}

/// In-memory size of a trace: the heap footprint of its event buffer
/// (16 bytes per *capacity* slot, not per event). Charging length while
/// recorders over-allocate let sweeps sit far above the configured cap
/// without a single eviction; [`record_trace`] shrinks fresh recordings
/// so the two numbers coincide on the sweep path, and any slack that
/// does survive is charged honestly.
fn trace_bytes(trace: &Trace) -> usize {
    trace.heap_bytes()
}

impl TraceCache {
    /// A cache capped at `STTCACHE_TRACE_CACHE_BYTES` (default 512 MiB).
    pub fn from_env() -> Self {
        let cap = std::env::var("STTCACHE_TRACE_CACHE_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512 * 1024 * 1024);
        TraceCache::with_cap_bytes(cap)
    }

    /// A cache capped at `cap_bytes` of resident trace data. A cap of 0
    /// keeps nothing resident but still de-duplicates concurrent
    /// recordings of the same key.
    pub fn with_cap_bytes(cap_bytes: usize) -> Self {
        TraceCache {
            cap_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                compiled: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
                stats: TraceCacheStats::default(),
            }),
        }
    }

    /// The configured memory cap in bytes.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Returns the trace for `key`, recording it with `record` if absent.
    ///
    /// Exactly one caller records per key at a time: concurrent callers
    /// block on the recorder's once-cell and share its result. The
    /// returned `Arc` stays valid even if the entry is evicted.
    pub fn get_or_record(&self, key: TraceKey, record: impl FnOnce() -> Trace) -> Arc<Trace> {
        let cell = {
            let mut inner = self.inner.lock().expect("trace cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let cell = entry.cell.clone();
                inner.stats.hits += 1;
                cell
            } else {
                inner.stats.misses += 1;
                let cell = Arc::new(OnceLock::new());
                inner.entries.insert(
                    key,
                    Entry {
                        cell: cell.clone(),
                        bytes: 0,
                        last_used: tick,
                    },
                );
                cell
            }
        };
        // Record outside the lock: losers of the race block here (inside
        // `get_or_init`) instead of serializing the whole cache.
        let trace = cell.get_or_init(|| Arc::new(record())).clone();
        self.account(key, &trace);
        trace
    }

    /// Returns the compiled form of `key`'s trace for `geometry`,
    /// lowering it with `compile` if absent — the same record-once
    /// discipline as [`TraceCache::get_or_record`], one compilation per
    /// (trace, geometry) per process, with concurrent callers sharing the
    /// compiler's once-cell. Compiled entries are charged against the
    /// same byte cap as recorded traces and compete in the same LRU order.
    pub fn get_or_compile(
        &self,
        key: TraceKey,
        geometry: TraceGeometry,
        compile: impl FnOnce() -> CompiledTrace,
    ) -> Arc<CompiledTrace> {
        let ckey = (key, geometry);
        let cell = {
            let mut inner = self.inner.lock().expect("trace cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.compiled.get_mut(&ckey) {
                entry.last_used = tick;
                let cell = entry.cell.clone();
                inner.stats.hits += 1;
                cell
            } else {
                inner.stats.misses += 1;
                let cell = Arc::new(OnceLock::new());
                inner.compiled.insert(
                    ckey,
                    Entry {
                        cell: cell.clone(),
                        bytes: 0,
                        last_used: tick,
                    },
                );
                cell
            }
        };
        let compiled = cell.get_or_init(|| Arc::new(compile())).clone();
        let mut inner = self.inner.lock().expect("trace cache lock");
        if let Some(entry) = inner.compiled.get_mut(&ckey) {
            if entry.bytes == 0 {
                let bytes = compiled.bytes().max(1);
                entry.bytes = bytes;
                inner.resident_bytes += bytes;
            }
        }
        self.evict_past_cap(&mut inner, Victim::Compiled(ckey));
        compiled
    }

    /// Charges a freshly recorded trace against the cap (first caller to
    /// get here wins) and evicts least-recently-used entries past it.
    fn account(&self, key: TraceKey, trace: &Arc<Trace>) {
        let mut inner = self.inner.lock().expect("trace cache lock");
        if let Some(entry) = inner.entries.get_mut(&key) {
            if entry.bytes == 0 {
                let bytes = trace_bytes(trace).max(1);
                entry.bytes = bytes;
                inner.resident_bytes += bytes;
            }
        }
        self.evict_past_cap(&mut inner, Victim::Trace(key));
    }

    /// Evicts least-recently-used accounted entries — recorded *or*
    /// compiled, whichever is colder — until the shared byte cap holds.
    /// The just-used `protect` key goes last so a single over-cap entry
    /// still gets returned (and then dropped) rather than churning other
    /// entries first.
    fn evict_past_cap(&self, inner: &mut Inner, protect: Victim) {
        while inner.resident_bytes > self.cap_bytes {
            let traces = inner
                .entries
                .iter()
                .filter(|(_, e)| e.bytes > 0)
                .map(|(k, e)| {
                    let protected = matches!(protect, Victim::Trace(p) if p == *k);
                    (protected, e.last_used, Victim::Trace(*k))
                });
            let compiled = inner
                .compiled
                .iter()
                .filter(|(_, e)| e.bytes > 0)
                .map(|(k, e)| {
                    let protected = matches!(protect, Victim::Compiled(p) if p == *k);
                    (protected, e.last_used, Victim::Compiled(*k))
                });
            let victim = traces
                .chain(compiled)
                .min_by_key(|(protected, last_used, _)| (*protected, *last_used))
                .map(|(_, _, v)| v);
            match victim {
                Some(Victim::Trace(k)) => {
                    let e = inner.entries.remove(&k).expect("victim exists");
                    inner.resident_bytes -= e.bytes;
                    inner.stats.evictions += 1;
                }
                Some(Victim::Compiled(k)) => {
                    let e = inner.compiled.remove(&k).expect("victim exists");
                    inner.resident_bytes -= e.bytes;
                    inner.stats.evictions += 1;
                }
                None => break, // only in-flight entries left
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TraceCacheStats {
        self.inner.lock().expect("trace cache lock").stats
    }

    /// Bytes of trace data currently resident (excludes in-flight
    /// recordings).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("trace cache lock").resident_bytes
    }

    /// Number of entries, recorded plus compiled (resident + in-flight).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("trace cache lock");
        inner.entries.len() + inner.compiled.len()
    }

    /// Number of compiled entries (resident + in-flight).
    pub fn compiled_len(&self) -> usize {
        self.inner.lock().expect("trace cache lock").compiled.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether sweeps route through the process-wide cache (`--no-trace-cache`
/// turns this off).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the process-wide trace cache on or off. Off, every grid point
/// executes its kernel directly — the results are identical either way,
/// only slower.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the process-wide trace cache is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Whether cached traces replay through the compiled structure-of-arrays
/// fast path (`--no-compiled-replay` turns this off).
static COMPILED_ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns compiled replay on or off. Off, cached traces replay through the
/// interpreted [`Trace::replay_into`] path — identical results, only
/// slower. Has no effect when the trace cache itself is off.
pub fn set_compiled_enabled(on: bool) {
    COMPILED_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether compiled replay is on.
pub fn compiled_enabled() -> bool {
    COMPILED_ENABLED.load(Ordering::SeqCst)
}

/// Default ceiling (in events) for routing a grid point through the
/// *cached* compiled fast path. Lowering a trace materialises ~22 bytes
/// of structure-of-arrays columns per event per geometry; with the result
/// memo deduplicating repeats, a sweep replays most (trace, geometry)
/// pairs only a handful of times, so for multi-hundred-kiloevent streams
/// the one-off page-fault cost of the columns outweighs the per-replay
/// win. Small, hot streams amortise; huge ones replay interpreted.
const DEFAULT_COMPILED_MAX_EVENTS: usize = 16 * 1024;

/// The compiled-replay admission ceiling: traces at or below this many
/// events replay through the cached compiled fast path, larger ones
/// through the interpreted path. `STTCACHE_COMPILED_MAX_EVENTS` overrides
/// the default (`0` disables the ceiling and compiles everything).
pub fn compiled_max_events() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        match std::env::var("STTCACHE_COMPILED_MAX_EVENTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(0) => usize::MAX,
            Some(n) => n,
            None => DEFAULT_COMPILED_MAX_EVENTS,
        }
    })
}

/// The process-wide cache every sweep shares.
fn global() -> &'static TraceCache {
    static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
    GLOBAL.get_or_init(TraceCache::from_env)
}

/// Counter snapshot of the process-wide cache (for `--profile`).
pub fn global_stats() -> TraceCacheStats {
    global().stats()
}

/// Resident bytes and entry count of the process-wide cache.
pub fn global_footprint() -> (usize, usize) {
    let g = global();
    (g.resident_bytes(), g.len())
}

/// Stream lengths seen per (workload, size): different transformation
/// sets of one kernel emit streams within a small factor of each other,
/// so the last observed length sizes the next recording's buffer up front
/// and skips most of the growth-reallocation cascade of multi-megabyte
/// event vectors (at worst one reallocation remains).
fn capacity_hint() -> &'static Mutex<HashMap<(Workload, ProblemSize), usize>> {
    static HINTS: OnceLock<Mutex<HashMap<(Workload, ProblemSize), usize>>> = OnceLock::new();
    HINTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Records one workload's event stream by running its kernel against a
/// [`TraceRecorder`] (the only place the sweeps pay for the kernel's real
/// arithmetic when the cache is on). External workloads are already
/// recorded — their registered stream is returned as-is.
pub fn record_trace(
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
) -> Trace {
    let workload = workload.into();
    if let Workload::External(id) = workload {
        return (*crate::workload::external_trace(id)
            .expect("external workload used before registration"))
        .clone();
    }
    let start = Instant::now();
    let hint = capacity_hint()
        .lock()
        .expect("capacity hint lock")
        .get(&(workload, size))
        .copied()
        .unwrap_or(0);
    let mut rec = TraceRecorder::with_capacity(hint);
    let kernel = workload.kernel(size).expect("kernel-backed workload");
    kernel.run(&mut rec, transforms);
    let mut trace = rec.into_trace();
    // Drop the hint/growth slack before the cache charges the trace
    // against its byte cap — resident memory then equals accounted bytes.
    trace.shrink_to_fit();
    capacity_hint()
        .lock()
        .expect("capacity hint lock")
        .insert((workload, size), trace.len());
    let took = start.elapsed();
    profile::add_record(took, trace.len() as u64);
    spans::record("record", "phase", start, took);
    trace
}

/// The shared trace for one grid key, recording it on first use. External
/// workloads return their registered stream directly — the registry
/// already keeps it resident, so charging the LRU cap a second time would
/// only evict kernel recordings.
pub fn cached_trace(
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
) -> Arc<Trace> {
    let workload = workload.into();
    if let Workload::External(id) = workload {
        return crate::workload::external_trace(id)
            .expect("external workload used before registration");
    }
    global().get_or_record(TraceKey::new(workload, size, transforms), || {
        record_trace(workload, size, transforms)
    })
}

/// The shared compiled trace for one grid key and DL1 geometry, recording
/// and lowering on first use. The source trace is fetched (or recorded)
/// through [`cached_trace`], so one recording feeds every geometry's
/// compilation.
pub fn cached_compiled(
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
    geometry: TraceGeometry,
) -> Arc<CompiledTrace> {
    let workload = workload.into();
    global().get_or_compile(TraceKey::new(workload, size, transforms), geometry, || {
        let trace = cached_trace(workload, size, transforms);
        let start = Instant::now();
        let compiled = CompiledTrace::compile(&trace, geometry);
        let took = start.elapsed();
        profile::add_compile(took, trace.len() as u64);
        spans::record("compile", "phase", start, took);
        compiled
    })
}

/// The second cache level: finished simulations. The simulator is fully
/// deterministic, so one (platform configuration, trace key) pair always
/// produces the same [`RunResult`] — each organization replays each
/// stream once and every later request for the same grid point (figures
/// share many: Fig. 9's grid is entirely a subset of Figs. 1/3/5's) is a
/// lookup. Keyed by the configuration's `Debug` fingerprint, which
/// captures the organization and every override.
fn result_memo() -> &'static Mutex<HashMap<(String, TraceKey), RunResult>> {
    static MEMO: OnceLock<Mutex<HashMap<(String, TraceKey), RunResult>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Simulations answered from the result memo (process-wide).
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);

/// Number of simulations answered from the result memo so far.
pub fn result_memo_hits() -> u64 {
    MEMO_HITS.load(Ordering::Relaxed)
}

/// Number of distinct simulations resident in the result memo.
pub fn result_memo_entries() -> usize {
    result_memo().lock().expect("result memo lock").len()
}

/// Runs one grid point described by its configuration through the cache
/// (or directly when the cache is disabled). This is the execution path
/// every sweep and binary uses.
///
/// With the cache enabled the grid point's event stream is recorded once
/// ([`cached_trace`]), compiled once per DL1 geometry
/// ([`cached_compiled`]), replayed at most once per distinct platform
/// configuration (through the compiled fast path by default, interpreted
/// under `--no-compiled-replay`), and the finished [`RunResult`] is
/// memoized — repeated grid points across figures cost a map lookup and
/// skip even the platform's hierarchy construction. All paths (direct,
/// compiled replay, interpreted replay, memo) produce bit-identical
/// results; `STTCACHE_TRACE_CHECK=1` re-verifies this at runtime by
/// replaying every non-memoized grid point both ways and, on the SRAM
/// baseline, also executing the kernel directly.
///
/// # Panics
///
/// Panics if `cfg` is invalid (the sweeps only pass validated
/// configurations).
pub fn run_config(
    cfg: &PlatformConfig,
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
) -> RunResult {
    let workload = workload.into();
    if !enabled() {
        let platform = Platform::with_config(cfg.clone()).expect("sweep configuration is valid");
        let start = Instant::now();
        let result = match workload.kernel(size) {
            Some(kernel) => platform.run(|e: &mut dyn Engine| kernel.run(e, transforms)),
            // External workloads have no kernel to execute; their
            // recorded stream *is* the direct path.
            None => platform.run_trace(&record_trace(workload, size, transforms)),
        };
        let took = start.elapsed();
        let ops = result.core.loads + result.core.stores + result.core.prefetches;
        profile::add_direct(took, ops);
        spans::record("direct", "phase", start, took);
        return result;
    }
    let memo_key = (
        format!("{cfg:?}"),
        TraceKey::new(workload, size, transforms),
    );
    if let Some(hit) = result_memo()
        .lock()
        .expect("result memo lock")
        .get(&memo_key)
    {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    let platform = Platform::with_config(cfg.clone()).expect("sweep configuration is valid");
    let trace = cached_trace(workload, size, transforms);
    let result = if compiled_enabled() && trace.len() <= compiled_max_events() {
        let compiled = cached_compiled(workload, size, transforms, platform.dl1_geometry());
        let start = Instant::now();
        let result = platform.run_compiled(&compiled);
        let took = start.elapsed();
        profile::add_compiled_replay(took, trace.len() as u64);
        spans::record("compiled_replay", "phase", start, took);
        if trace_check_requested() {
            assert_eq!(
                platform.run_trace(&trace),
                result,
                "compiled replay diverged from interpreted replay on {} ({})",
                TraceKey::new(workload, size, transforms).label(),
                cfg.organization.name(),
            );
        }
        result
    } else {
        let start = Instant::now();
        let result = platform.run_trace(&trace);
        let took = start.elapsed();
        profile::add_replay(took, trace.len() as u64);
        spans::record("replay", "phase", start, took);
        result
    };
    if trace_check_requested() && cfg.organization == DCacheOrganization::SramBaseline {
        // External workloads have no kernel to cross-execute; the replay
        // paths above already cover them.
        if let Some(kernel) = workload.kernel(size) {
            let direct = platform.run(|e: &mut dyn Engine| kernel.run(e, transforms));
            assert_eq!(
                direct,
                result,
                "trace replay diverged from direct execution on {}",
                TraceKey::new(workload, size, transforms).label()
            );
        }
    }
    result_memo()
        .lock()
        .expect("result memo lock")
        .insert(memo_key, result.clone());
    result
}

/// [`run_config`] for an already-built [`Platform`].
pub fn run_on_platform(
    platform: &Platform,
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
) -> RunResult {
    run_config(platform.config(), workload, size, transforms)
}

/// Feeds one grid key's event stream into an arbitrary engine — the
/// entry point for hand-built hierarchies that do not go through
/// [`Platform`]. Replays the shared trace when the cache is on, otherwise
/// runs the kernel directly; both paths drive `e` identically.
pub fn drive<E: Engine>(
    e: &mut E,
    workload: impl Into<Workload>,
    size: ProblemSize,
    transforms: Transformations,
) {
    let workload = workload.into();
    if enabled() {
        let trace = cached_trace(workload, size, transforms);
        let start = Instant::now();
        trace.replay_into(e);
        let took = start.elapsed();
        profile::add_replay(took, trace.len() as u64);
        spans::record("replay", "phase", start, took);
    } else if let Some(kernel) = workload.kernel(size) {
        let start = Instant::now();
        kernel.run(e, transforms);
        let took = start.elapsed();
        // The borrowed engine exposes no event counter; credit the time
        // with zero events (the rate renders as 0 rather than a guess).
        profile::add_direct(took, 0);
        spans::record("direct", "phase", start, took);
    } else {
        // External workloads replay their recorded stream even with the
        // cache off — there is no kernel to run directly.
        let trace = record_trace(workload, size, transforms);
        let start = Instant::now();
        trace.replay_into(e);
        let took = start.elapsed();
        profile::add_direct(took, 0);
        spans::record("direct", "phase", start, took);
    }
}

/// Whether `STTCACHE_TRACE_CHECK=1` asked for the replay-vs-direct
/// cross-check on SRAM-baseline grid points.
fn trace_check_requested() -> bool {
    static CHECK: OnceLock<bool> = OnceLock::new();
    *CHECK.get_or_init(|| {
        std::env::var("STTCACHE_TRACE_CHECK")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use sttcache_cpu::TraceEvent;

    fn trace_of(n: usize) -> Trace {
        (0..n)
            .map(|i| TraceEvent::Compute { ops: i as u32 + 1 })
            .collect()
    }

    // Synthetic keys: the raw cache is identity-agnostic, so tests key on
    // `Workload::External` hashes without touching the kernel catalog.
    fn key(n: u64) -> TraceKey {
        TraceKey::new(
            Workload::External(n),
            ProblemSize::Mini,
            Transformations::none(),
        )
    }

    #[test]
    fn records_once_and_hits_after() {
        let cache = TraceCache::with_cap_bytes(1 << 20);
        let recordings = AtomicUsize::new(0);
        for _ in 0..3 {
            let t = cache.get_or_record(key(1), || {
                recordings.fetch_add(1, Ordering::SeqCst);
                trace_of(8)
            });
            assert_eq!(t.len(), 8);
        }
        assert_eq!(recordings.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 1, 0));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.resident_bytes(),
            8 * std::mem::size_of::<TraceEvent>()
        );
    }

    #[test]
    fn racing_workers_share_one_recording() {
        let cache = Arc::new(TraceCache::with_cap_bytes(1 << 20));
        let recordings = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let recordings = recordings.clone();
                std::thread::spawn(move || {
                    let t = cache.get_or_record(key(2), || {
                        recordings.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so losers really block.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        trace_of(4)
                    });
                    assert_eq!(t.len(), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(recordings.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn lru_eviction_respects_the_cap() {
        let per_trace = 10 * std::mem::size_of::<TraceEvent>();
        let cache = TraceCache::with_cap_bytes(2 * per_trace);
        cache.get_or_record(key(1), || trace_of(10));
        cache.get_or_record(key(2), || trace_of(10));
        // Touch Gemm so Atax becomes the LRU victim.
        cache.get_or_record(key(1), || unreachable!("resident"));
        cache.get_or_record(key(3), || trace_of(10));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() <= cache.cap_bytes());
        // Gemm survived; Atax re-records.
        cache.get_or_record(key(1), || unreachable!("mru survives"));
        let misses_before = cache.stats().misses;
        cache.get_or_record(key(2), || trace_of(10));
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn zero_cap_keeps_nothing_resident_but_still_returns_traces() {
        let cache = TraceCache::with_cap_bytes(0);
        let t = cache.get_or_record(key(1), || trace_of(5));
        assert_eq!(t.len(), 5); // caller's Arc outlives the eviction
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn growth_slack_is_charged_and_shrinking_removes_it() {
        let mut rec = TraceRecorder::with_capacity(64);
        rec.compute(1);
        let mut fat = rec.into_trace();
        assert!(trace_bytes(&fat) >= 64 * std::mem::size_of::<TraceEvent>());
        fat.shrink_to_fit();
        assert_eq!(trace_bytes(&fat), std::mem::size_of::<TraceEvent>());
    }

    #[test]
    fn over_allocated_traces_evict_at_their_true_footprint() {
        // One compute event, forty slots of capacity. Under length-based
        // accounting this entry would sit comfortably inside a cap sized
        // for twenty events; its real footprint is double the cap, so it
        // must be charged — and evicted — at capacity.
        let cache = TraceCache::with_cap_bytes(20 * std::mem::size_of::<TraceEvent>());
        let t = cache.get_or_record(key(1), || {
            let mut rec = TraceRecorder::with_capacity(40);
            rec.compute(1);
            rec.into_trace()
        });
        assert_eq!(t.len(), 1); // the caller's Arc is unaffected
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn hit_rate_spans_the_lookup_history() {
        let s = TraceCacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(TraceCacheStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn compiles_once_per_geometry_and_hits_after() {
        let cache = TraceCache::with_cap_bytes(1 << 20);
        let geom = TraceGeometry::new(64, 512, 4);
        let compilations = AtomicUsize::new(0);
        for _ in 0..3 {
            let c = cache.get_or_compile(key(1), geom, || {
                compilations.fetch_add(1, Ordering::SeqCst);
                CompiledTrace::compile(&trace_of(8), geom)
            });
            assert_eq!(c.len(), 8);
        }
        assert_eq!(compilations.load(Ordering::SeqCst), 1);
        // A different geometry is a different entry.
        let other = TraceGeometry::new(32, 1024, 4);
        cache.get_or_compile(key(1), other, || {
            compilations.fetch_add(1, Ordering::SeqCst);
            CompiledTrace::compile(&trace_of(8), other)
        });
        assert_eq!(compilations.load(Ordering::SeqCst), 2);
        assert_eq!(cache.compiled_len(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn recorded_and_compiled_entries_share_the_byte_cap() {
        let geom = TraceGeometry::new(64, 512, 4);
        // 10 compute events: 160 recorded bytes, 220 compiled bytes
        // (1+8+1+8+4 per event). Room for either alone, never both:
        // compiling must evict the colder recorded entry.
        let compiled_bytes = CompiledTrace::compile(&trace_of(10), geom).bytes();
        let cache = TraceCache::with_cap_bytes(compiled_bytes + 8);
        cache.get_or_record(key(1), || trace_of(10));
        assert_eq!(cache.stats().evictions, 0);
        cache.get_or_compile(key(1), geom, || CompiledTrace::compile(&trace_of(10), geom));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.compiled_len(), 1);
        // A second, colder compiled entry evicts the first.
        let other = TraceGeometry::new(32, 1024, 4);
        cache.get_or_compile(key(2), other, || {
            CompiledTrace::compile(&trace_of(10), other)
        });
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.resident_bytes() <= cache.cap_bytes());
    }

    #[test]
    fn compiled_flag_toggles() {
        assert!(compiled_enabled());
        set_compiled_enabled(false);
        assert!(!compiled_enabled());
        set_compiled_enabled(true);
        assert!(compiled_enabled());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TraceCache::with_cap_bytes(1 << 20);
        let a = cache.get_or_record(key(1), || trace_of(1));
        let b = cache.get_or_record(
            TraceKey::new(
                Workload::External(1),
                ProblemSize::Mini,
                Transformations::all(),
            ),
            || trace_of(2),
        );
        let c = cache.get_or_record(
            TraceKey::new(
                Workload::External(1),
                ProblemSize::Small,
                Transformations::none(),
            ),
            || trace_of(3),
        );
        assert_eq!((a.len(), b.len(), c.len()), (1, 2, 3));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }
}

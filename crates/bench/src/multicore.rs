//! Multi-core mix harness: mix-spec parsing, memoized mix runs, the
//! contention sweep behind `figures multicore` and the per-core
//! `--explain` attribution for `sim --cores N`.
//!
//! # Mix spec grammar
//!
//! ```text
//! mix    := entry ('+' entry)*
//! entry  := workload ('@' offset)? (':' org)?
//! workload := any workload-catalog CLI token (e.g. gemm, mvt, list-chase)
//!           | 'file:' path                   (a recorded trace file)
//! offset := decimal cycle count              (phase offset, default 0)
//! org    := any catalog CLI key              (sram|nvm|vwb|l0|emshr|hybrid)
//! ```
//!
//! `gemm:vwb+mvt@500:sram` runs gemm on a VWB core starting at cycle 0
//! and mvt on an SRAM core starting at cycle 500, both over one shared
//! banked L2. An entry without `:org` uses the run's default
//! organization (`sim --org`). Because `file:` paths may themselves
//! contain `:` and `@`, the suffixes bind from the *right*: the final
//! `:part` is an organization only if it names a catalog entry, and the
//! final `@part` is an offset only if it is a decimal number.

use crate::trace_cache;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use sttcache::{
    CoreSpec, DCacheOrganization, MultiPlatform, MultiPlatformConfig, MultiRunResult, RunResult,
};
use sttcache_mem::telemetry::{self, TelemetrySnapshot};
use sttcache_mem::{CacheConfig, Cycle};
use sttcache_workloads::{ProblemSize, Transformations, Workload};

/// One core of a mix: which workload it runs, when it starts, and which
/// private organization it uses (`None` = the run's default).
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// The workload replayed on this core.
    pub workload: Workload,
    /// Phase offset in cycles.
    pub offset: Cycle,
    /// Private front-end organization override for this core.
    pub org: Option<DCacheOrganization>,
}

/// A parsed multi-programmed workload mix, one entry per core.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    /// Per-core entries, index order = core order.
    pub entries: Vec<MixEntry>,
}

/// The default mix workloads, cycled when more cores than kernels are
/// requested — the same four-kernel set the extension sweeps use
/// ([`crate::extensions::ext_mix`]).
pub fn default_mix_workloads() -> [Workload; 4] {
    crate::extensions::ext_mix()
}

/// Stagger between consecutive cores in the default mix, in cycles.
pub const DEFAULT_STAGGER: Cycle = 64;

impl MixSpec {
    /// Parses the mix grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(spec: &str) -> Result<MixSpec, String> {
        let mut entries = Vec::new();
        for part in spec.split('+') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty mix entry in '{spec}'"));
            }
            // Suffixes bind from the right so `file:` paths containing
            // ':' or '@' survive: the last ':key' is an organization only
            // if the catalog knows `key`, the last '@n' an offset only if
            // `n` is decimal. Anything else stays part of the token and
            // fails in the workload resolver with a full token list.
            let (head, org) = match part.rsplit_once(':') {
                Some((h, key)) if !h.is_empty() => match sttcache::by_cli(key) {
                    Some(e) => (h, Some(e.organization)),
                    None => (part, None),
                },
                _ => (part, None),
            };
            let (token, offset) = match head.rsplit_once('@') {
                Some((t, off)) if !t.is_empty() => match off.parse::<Cycle>() {
                    Ok(offset) => (t, offset),
                    Err(_) => (head, 0),
                },
                _ => (head, 0),
            };
            let workload = crate::workload::resolve(token)
                .map_err(|e| format!("in mix entry '{part}': {e}"))?;
            entries.push(MixEntry {
                workload,
                offset,
                org,
            });
        }
        Ok(MixSpec { entries })
    }

    /// The default staggered mix for `cores` cores: the
    /// [`default_mix_workloads`] cycled, core `i` starting at
    /// `i * DEFAULT_STAGGER` cycles, default organization everywhere.
    pub fn default_mix(cores: usize) -> MixSpec {
        let kernels = default_mix_workloads();
        MixSpec {
            entries: (0..cores)
                .map(|i| MixEntry {
                    workload: kernels[i % kernels.len()],
                    offset: i as Cycle * DEFAULT_STAGGER,
                    org: None,
                })
                .collect(),
        }
    }

    /// Number of cores in the mix.
    pub fn cores(&self) -> usize {
        self.entries.len()
    }

    /// Canonical text form (re-parses to the same mix).
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(|e| {
                let mut s = crate::workload::token_of(e.workload);
                if e.offset != 0 {
                    s.push_str(&format!("@{}", e.offset));
                }
                if let Some(org) = e.org {
                    let key = sttcache::catalog::catalog()
                        .iter()
                        .find(|c| c.organization == org)
                        .map(|c| c.cli)
                        .unwrap_or("?");
                    s.push_str(&format!(":{key}"));
                }
                s
            })
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The per-core platform specs, filling unset organizations with
    /// `default_org`.
    pub fn core_specs(&self, default_org: DCacheOrganization) -> Vec<CoreSpec> {
        self.entries
            .iter()
            .map(|e| CoreSpec::staggered(e.org.unwrap_or(default_org), e.offset))
            .collect()
    }
}

/// The canonical shared-L2 configuration with an explicit bank count —
/// the paper's 2 MB 16-way 12-cycle L2, banked `banks` ways (the sweep
/// knob of the multicore figures grid).
pub fn shared_l2_config(banks: usize) -> CacheConfig {
    CacheConfig::builder()
        .capacity_bytes(2 * 1024 * 1024)
        .associativity(16)
        .line_bytes(64)
        .banks(banks)
        .read_cycles(12)
        .write_cycles(12)
        .mshr_entries(8)
        .write_buffer_entries(8)
        .build()
        .expect("canonical l2 geometry is valid at any power-of-two bank count")
}

/// Builds the [`MultiPlatform`] for a mix.
///
/// # Errors
///
/// Propagates configuration errors (e.g. more than the supported
/// maximum of cores) as a printable message.
pub fn mix_platform(
    mix: &MixSpec,
    default_org: DCacheOrganization,
    l2_banks: Option<usize>,
) -> Result<MultiPlatform, String> {
    let mut cfg = MultiPlatformConfig::new(mix.core_specs(default_org));
    cfg.l2_override = l2_banks.map(shared_l2_config);
    MultiPlatform::new(cfg).map_err(|e| e.to_string())
}

fn mix_memo() -> &'static Mutex<HashMap<String, MultiRunResult>> {
    static MEMO: OnceLock<Mutex<HashMap<String, MultiRunResult>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs a mix, replaying each core's kernel from the shared trace
/// cache. Deterministic, so results are memoized per
/// `(platform config, workload keys)` exactly like
/// [`trace_cache::run_config`] memoizes single-core runs.
pub fn run_mix(
    mix: &MixSpec,
    default_org: DCacheOrganization,
    size: ProblemSize,
    transforms: Transformations,
    l2_banks: Option<usize>,
) -> MultiRunResult {
    let platform =
        mix_platform(mix, default_org, l2_banks).expect("caller validated the mix platform");
    let key = format!(
        "{:?}|{:?}|{:?}|{}",
        platform.config(),
        size,
        transforms,
        mix.label()
    );
    if let Some(hit) = mix_memo().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let traces: Vec<_> = mix
        .entries
        .iter()
        .map(|e| trace_cache::cached_trace(e.workload, size, transforms))
        .collect();
    let refs: Vec<&sttcache_cpu::Trace> = traces.iter().map(|t| &**t).collect();
    let result = platform.run_traces(&refs);
    mix_memo().lock().unwrap().insert(key, result.clone());
    result
}

/// The isolated (1-core, private L2 of the same geometry) reference run
/// for core `idx` of a mix — what every contention measurement compares
/// against. Served from the shared single-core result memo.
pub fn isolated_run(
    mix: &MixSpec,
    default_org: DCacheOrganization,
    size: ProblemSize,
    transforms: Transformations,
    l2_banks: Option<usize>,
    idx: usize,
) -> RunResult {
    let platform =
        mix_platform(mix, default_org, l2_banks).expect("caller validated the mix platform");
    trace_cache::run_config(
        &platform.isolated_config(idx),
        mix.entries[idx].workload,
        size,
        transforms,
    )
}

/// Aggregate contention slowdown of a mix in percent:
/// `100 · (Σ co-run cycles − Σ isolated cycles) / Σ isolated cycles`.
pub fn contention_slowdown_pct(
    mix: &MixSpec,
    default_org: DCacheOrganization,
    size: ProblemSize,
    transforms: Transformations,
    l2_banks: Option<usize>,
) -> f64 {
    let co = run_mix(mix, default_org, size, transforms, l2_banks);
    let iso: u64 = (0..mix.cores())
        .map(|i| isolated_run(mix, default_org, size, transforms, l2_banks, i).cycles())
        .sum();
    if iso == 0 {
        0.0
    } else {
        100.0 * (co.total_cycles() as f64 - iso as f64) / iso as f64
    }
}

/// The mixes of the `figures multicore` grid.
pub fn sweep_mixes() -> Vec<MixSpec> {
    vec![
        MixSpec::parse("gemm+mvt@64").expect("static mix"),
        MixSpec::parse("jacobi-2d+trisolv@64").expect("static mix"),
    ]
}

/// The shared-L2 bank counts of the `figures multicore` grid.
pub const SWEEP_BANKS: [usize; 3] = [1, 4, 8];

/// The private-org × mix × bank-count contention grid: each cell is the
/// aggregate slowdown of the co-run vs the same kernels isolated, in
/// percent. Rows are private organizations; columns are mix × bank
/// count. Grid points are independent, so they run through the sweep
/// engine ([`crate::SweepRunner`]); each N-core run is one
/// single-threaded work item, so output is byte-identical at any worker
/// count.
pub fn multicore_table(size: ProblemSize) -> crate::SeriesTable {
    let mixes = sweep_mixes();
    let orgs: Vec<DCacheOrganization> = sttcache::catalog::catalog()
        .iter()
        .map(|e| e.organization)
        .collect();
    let mut series = Vec::new();
    let mut points = Vec::new();
    for mix in &mixes {
        for &banks in &SWEEP_BANKS {
            series.push(format!("{} /{}b", mix.label(), banks));
            for &org in &orgs {
                points.push((org, mix.clone(), banks));
            }
        }
    }
    let runner = crate::SweepRunner::current();
    let values = runner.map_ok(&points, |_, (org, mix, banks)| {
        contention_slowdown_pct(mix, *org, size, Transformations::none(), Some(*banks))
    });
    // Reassemble column-major points into per-org rows.
    let mut table = crate::SeriesTable {
        series,
        rows: orgs
            .iter()
            .map(|o| (o.name().to_string(), Vec::new()))
            .collect(),
    };
    for (p, v) in points.iter().zip(values) {
        let row = table
            .rows
            .iter_mut()
            .find(|(name, _)| *name == p.0.name())
            .expect("row exists for every org");
        row.1.push(v);
    }
    table.append_average()
}

/// A mix run with telemetry, its isolated references, and everything
/// needed to attribute per-core penalties and shared-bank conflicts.
#[derive(Debug, Clone)]
pub struct MixExplanation {
    /// The co-scheduled run.
    pub result: MultiRunResult,
    /// Per-core isolated references (same organization, private L2).
    pub isolated: Vec<RunResult>,
    /// Telemetry drained from the co-scheduled run.
    pub snapshot: TelemetrySnapshot,
    /// The mix that ran.
    pub mix: MixSpec,
    /// The workload label.
    pub workload: String,
}

/// Runs a mix on the *calling* thread with the telemetry registry armed
/// (bypassing the mix memo so the registry captures this exact run) and
/// gathers the per-core isolated references.
pub fn explain_mix(
    mix: &MixSpec,
    default_org: DCacheOrganization,
    size: ProblemSize,
    transforms: Transformations,
    l2_banks: Option<usize>,
) -> MixExplanation {
    let platform =
        mix_platform(mix, default_org, l2_banks).expect("caller validated the mix platform");
    let traces: Vec<_> = mix
        .entries
        .iter()
        .map(|e| trace_cache::cached_trace(e.workload, size, transforms))
        .collect();
    let refs: Vec<&sttcache_cpu::Trace> = traces.iter().map(|t| &**t).collect();
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    let _ = telemetry::take();
    let result = platform.run_traces(&refs);
    telemetry::set_enabled(was_enabled);
    let snapshot = telemetry::take();
    let isolated = (0..mix.cores())
        .map(|i| isolated_run(mix, default_org, size, transforms, l2_banks, i))
        .collect();
    MixExplanation {
        result,
        isolated,
        snapshot,
        mix: mix.clone(),
        workload: format!("{:?}, opts {}", size, transforms.label()),
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl MixExplanation {
    /// Contention slowdown of core `idx` vs its isolated reference, in
    /// percent.
    pub fn core_slowdown_pct(&self, idx: usize) -> f64 {
        let iso = self.isolated[idx].cycles();
        if iso == 0 {
            0.0
        } else {
            100.0 * (self.result.cores[idx].cycles() as f64 - iso as f64) / iso as f64
        }
    }

    /// Renders the per-core attribution report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== explain: {}-core mix {} ({}) ==\n",
            self.mix.cores(),
            self.mix.label(),
            self.workload
        ));
        out.push_str("per-core penalty attribution:\n");
        for (idx, r) in self.result.cores.iter().enumerate() {
            out.push_str(&format!(
                "  core {idx}: {:<10} on {:<14} {:>10} cycles ({:+.1}% vs isolated {})\n",
                crate::workload::token_of(self.mix.entries[idx].workload),
                r.organization.name(),
                r.cycles(),
                self.core_slowdown_pct(idx),
                self.isolated[idx].cycles(),
            ));
            out.push_str(&format!(
                "    load-data stalls {:.1}%, store-buffer stalls {:.1}%, \
                 private DL1 bank conflicts {} cycles\n",
                pct(r.core.read_stall_cycles, r.core.cycles),
                pct(r.core.write_stall_cycles, r.core.cycles),
                r.dl1.bank_conflict_cycles,
            ));
        }
        out.push('\n');
        let l2 = &self.result.shared_l2;
        out.push_str("shared L2:\n");
        out.push_str(&format!(
            "  {} reads, {} writes, {} fills, {} write-backs\n",
            l2.reads, l2.writes, l2.fills, l2.writebacks
        ));
        out.push_str(&format!(
            "  bank conflict cycles:    {} total\n",
            l2.bank_conflict_cycles
        ));
        if let Some(c) = self.snapshot.indexed_for("l2", "bank_conflict_cycles") {
            if c.total() > 0 {
                out.push_str("  shared-bank conflict shares:\n");
                for (bank, &cycles) in c.counts.iter().enumerate() {
                    if cycles > 0 {
                        out.push_str(&format!(
                            "    bank {bank:<2} {cycles:>10} cycles ({:.1}%)\n",
                            pct(cycles, c.total()),
                        ));
                    }
                }
            } else {
                out.push_str("  shared-bank conflict shares: none recorded\n");
            }
        }
        if self.snapshot.is_empty() {
            out.push_str(
                "\nnote: the telemetry registry was empty — was another simulation \
                 running on this thread?\n",
            );
        }
        out
    }
}

/// Per-core gem5-style statistics dump for `sim --cores N`: each core's
/// full stats block plus one shared-level section.
pub fn mix_stats_text(result: &MultiRunResult, mix: &MixSpec) -> String {
    let mut out = String::new();
    for (idx, r) in result.cores.iter().enumerate() {
        out.push_str(&format!(
            "== core {idx}: {} on {} (offset {}) ==\n",
            crate::workload::token_of(mix.entries[idx].workload),
            r.organization.name(),
            mix.entries[idx].offset,
        ));
        out.push_str(&r.stats_text());
    }
    out.push_str("== shared levels ==\n");
    let l2 = &result.shared_l2;
    for (key, value, comment) in [
        ("shared.l2.reads", l2.reads, "demand reads from every core"),
        ("shared.l2.writes", l2.writes, "write-backs from every core"),
        ("shared.l2.fills", l2.fills, "lines filled from memory"),
        (
            "shared.l2.bank_conflict_cycles",
            l2.bank_conflict_cycles,
            "cycles cores queued on busy shared banks",
        ),
        (
            "shared.memory.accesses",
            result.memory.reads + result.memory.writes,
            "main-memory accesses",
        ),
    ] {
        out.push_str(&format!("{key:<40} {value:>16} # {comment}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_grammar_round_trips() {
        let mix = MixSpec::parse("gemm:vwb+mvt@500:sram+trisolv@64").unwrap();
        assert_eq!(mix.cores(), 3);
        assert_eq!(
            mix.entries[0].workload,
            crate::workload::resolve("gemm").unwrap()
        );
        assert_eq!(mix.entries[0].offset, 0);
        assert_eq!(
            mix.entries[0].org,
            Some(DCacheOrganization::nvm_vwb_default())
        );
        assert_eq!(mix.entries[1].offset, 500);
        assert_eq!(mix.entries[2].org, None);
        assert_eq!(mix.label(), "gemm:vwb+mvt@500:sram+trisolv@64");
        assert_eq!(MixSpec::parse(&mix.label()).unwrap(), mix);
    }

    #[test]
    fn mix_grammar_rejects_garbage() {
        assert!(MixSpec::parse("").is_err());
        assert!(MixSpec::parse("gemm+").is_err());
        assert!(MixSpec::parse("nosuchkernel").is_err());
        assert!(MixSpec::parse("gemm@abc").is_err());
        assert!(MixSpec::parse("gemm:nosuchorg").is_err());
    }

    #[test]
    fn default_mix_is_staggered() {
        let mix = MixSpec::default_mix(3);
        assert_eq!(mix.cores(), 3);
        assert_eq!(mix.entries[0].offset, 0);
        assert_eq!(mix.entries[1].offset, DEFAULT_STAGGER);
        assert_eq!(mix.entries[2].offset, 2 * DEFAULT_STAGGER);
    }

    #[test]
    fn run_mix_is_memoized_and_deterministic() {
        let mix = MixSpec::parse("gemm+mvt@64").unwrap();
        let org = DCacheOrganization::nvm_vwb_default();
        let a = run_mix(
            &mix,
            org,
            ProblemSize::Mini,
            Transformations::none(),
            Some(4),
        );
        let b = run_mix(
            &mix,
            org,
            ProblemSize::Mini,
            Transformations::none(),
            Some(4),
        );
        assert_eq!(a, b);
        assert_eq!(a.cores.len(), 2);
    }

    #[test]
    fn explain_mix_attributes_shared_conflicts() {
        // A bank-starved shared L2 no other test sweeps keeps the memo
        // cold and guarantees conflicts to attribute.
        let mix = MixSpec::parse("gemm+gemm@1").unwrap();
        let e = explain_mix(
            &mix,
            DCacheOrganization::NvmDropIn,
            ProblemSize::Mini,
            Transformations::none(),
            Some(1),
        );
        assert!(!e.snapshot.is_empty());
        let text = e.render();
        for needle in [
            "== explain: 2-core mix gemm+gemm@1",
            "per-core penalty attribution:",
            "vs isolated",
            "shared L2:",
            "bank conflict cycles:",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn stats_text_covers_every_core_and_the_shared_level() {
        let mix = MixSpec::parse("gemm+mvt@64").unwrap();
        let org = DCacheOrganization::SramBaseline;
        let r = run_mix(&mix, org, ProblemSize::Mini, Transformations::none(), None);
        let text = mix_stats_text(&r, &mix);
        assert!(text.contains("== core 0: gemm on SRAM baseline (offset 0) =="));
        assert!(text.contains("== core 1: mvt on SRAM baseline (offset 64) =="));
        assert!(text.contains("shared.l2.bank_conflict_cycles"));
    }
}

//! Regenerates Fig. 6 (per-transformation contribution split).

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig6(ProblemSize::Mini);
    let mut c = common::harness();
    for t in [
        Transformations::only_vectorize(),
        Transformations::only_prefetch(),
        Transformations::only_others(),
    ] {
        common::bench_sim(
            &mut c,
            "fig6",
            DCacheOrganization::nvm_vwb_default(),
            PolyBench::Gemm,
            t,
        );
    }
    c.final_summary();
}

//! Regenerates Fig. 4 (read vs write penalty contribution).

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig4(ProblemSize::Mini);
    let mut c = common::harness();
    common::bench_sim(
        &mut c,
        "fig4",
        DCacheOrganization::nvm_vwb_default(),
        PolyBench::Trmm,
        Transformations::none(),
    );
    c.final_summary();
}

//! Ablation benches for the design choices DESIGN.md calls out — sweeps
//! the paper does not report but that justify its parameter picks:
//! NVM bank count, promotion occupancy, DL1 associativity, write-buffer
//! depth, replacement policy, and a stride characterization of the VWB.

mod common;

use sttcache::{penalty_pct, DCacheOrganization, Platform, PlatformConfig, VwbConfig};
use sttcache_cpu::Engine;
use sttcache_mem::{CacheConfig, ReplacementPolicy};
use sttcache_workloads::{Kernel, PolyBench, ProblemSize, StrideWalk, Transformations};

fn cycles_with(cfg: PlatformConfig) -> u64 {
    let platform = Platform::with_config(cfg).expect("ablation configuration is valid");
    let kernel = PolyBench::Gemm.kernel(ProblemSize::Mini);
    platform
        .run(|e: &mut dyn Engine| kernel.run(e, Transformations::none()))
        .cycles()
}

fn nvm_dl1(banks: usize, assoc: usize, wb: usize) -> CacheConfig {
    CacheConfig::builder()
        .capacity_bytes(64 * 1024)
        .associativity(assoc)
        .line_bytes(64)
        .banks(banks)
        .read_cycles(4)
        .write_cycles(2)
        .write_buffer_entries(wb)
        .build()
        .expect("ablation dl1 config is valid")
}

fn print_sweep(title: &str, rows: &[(String, u64)]) {
    println!("== Ablation: {title} (gemm, NVM + VWB, cycles) ==");
    for (label, cycles) in rows {
        println!("{label:<24} {cycles:>12}");
    }
    println!();
}

fn main() {
    // Bank-count sweep: fewer banks => more promotion conflicts.
    let banks: Vec<(String, u64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&b| {
            let mut cfg = PlatformConfig::new(DCacheOrganization::nvm_vwb_default());
            cfg.dl1_override = Some(nvm_dl1(b, 2, 4));
            (format!("{b} banks"), cycles_with(cfg))
        })
        .collect();
    print_sweep("NVM bank count", &banks);

    // Promotion-occupancy sweep: the paper's "up to 4 cache cycles".
    let promo: Vec<(String, u64)> = [0u64, 2, 4, 8]
        .iter()
        .map(|&p| {
            let cfg = PlatformConfig::new(DCacheOrganization::NvmVwb(VwbConfig {
                promotion_cycles: p,
                ..VwbConfig::default()
            }));
            (format!("promotion {p} cycles"), cycles_with(cfg))
        })
        .collect();
    print_sweep("VWB promotion occupancy", &promo);

    // Associativity sweep on the NVM DL1.
    let assoc: Vec<(String, u64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&a| {
            let mut cfg = PlatformConfig::new(DCacheOrganization::nvm_vwb_default());
            cfg.dl1_override = Some(nvm_dl1(4, a, 4));
            (format!("{a}-way"), cycles_with(cfg))
        })
        .collect();
    print_sweep("DL1 associativity", &assoc);

    // Write-buffer depth sweep.
    let wb: Vec<(String, u64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&d| {
            let mut cfg = PlatformConfig::new(DCacheOrganization::nvm_vwb_default());
            cfg.dl1_override = Some(nvm_dl1(4, 2, d));
            (format!("{d} wb entries"), cycles_with(cfg))
        })
        .collect();
    print_sweep("eviction write-buffer depth", &wb);

    // Replacement-policy sweep on the NVM DL1 (the paper's LRU vs the
    // cheaper hardware approximations).
    let repl: Vec<(String, u64)> = ReplacementPolicy::ALL
        .iter()
        .map(|&p| {
            let mut cfg = PlatformConfig::new(DCacheOrganization::nvm_vwb_default());
            let dl1 = CacheConfig::builder()
                .capacity_bytes(64 * 1024)
                .associativity(2)
                .line_bytes(64)
                .banks(4)
                .read_cycles(4)
                .write_cycles(2)
                .replacement(p)
                .build()
                .expect("replacement ablation config is valid");
            cfg.dl1_override = Some(dl1);
            (p.name().to_string(), cycles_with(cfg))
        })
        .collect();
    print_sweep("DL1 replacement policy", &repl);

    // VWB size under a modelled associative-search cost: the paper's
    // reason for stopping at 2 Kbit becomes quantitative — beyond a point
    // the slower hit eats the capacity gain.
    let search: Vec<(String, u64)> = [1024usize, 2048, 4096, 8192, 16384]
        .iter()
        .map(|&bits| {
            let cfg = PlatformConfig::new(DCacheOrganization::NvmVwb(VwbConfig {
                capacity_bits: bits,
                model_search_cost: true,
                ..VwbConfig::default()
            }));
            (format!("{bits} bit (+search)"), cycles_with(cfg))
        })
        .collect();
    print_sweep("VWB size with associative-search cost", &search);

    // Stride characterization: drop-in NVM penalty of a strided walk as
    // the stride crosses the line size (16 f32 elements) — where the VWB
    // stops amortizing and the paper's prefetching takes over.
    println!("== Ablation: stride sweep (drop-in vs VWB penalty vs stride) ==");
    println!("{:<12} {:>12} {:>12}", "stride", "drop-in", "VWB");
    for stride in [1usize, 2, 4, 8, 16, 32] {
        let run = |org: DCacheOrganization| -> u64 {
            let platform = Platform::new(org).expect("canonical configuration");
            let walk = StrideWalk::new(4096, stride, 16 * 1024);
            platform
                .run(|e: &mut dyn Engine| walk.run(e, Transformations::none()))
                .cycles()
        };
        let base = run(DCacheOrganization::SramBaseline);
        println!(
            "{stride:<12} {:>11.1}% {:>11.1}%",
            penalty_pct(base, run(DCacheOrganization::NvmDropIn)),
            penalty_pct(base, run(DCacheOrganization::nvm_vwb_default())),
        );
    }
    println!();

    // Criterion timing of the two extreme bank configurations.
    let mut c = common::harness();
    for b in [1usize, 8] {
        let label = format!("ablations/banks-{b}");
        c.bench_function(&label, || {
            let mut cfg = PlatformConfig::new(DCacheOrganization::nvm_vwb_default());
            cfg.dl1_override = Some(nvm_dl1(b, 2, 4));
            common::black_box(cycles_with(cfg))
        });
    }
    c.final_summary();
}

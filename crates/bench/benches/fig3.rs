//! Regenerates Fig. 3 (drop-in vs VWB) and benchmarks the VWB simulation.

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig3(ProblemSize::Mini);
    let mut c = common::harness();
    common::bench_sim(
        &mut c,
        "fig3",
        DCacheOrganization::nvm_vwb_default(),
        PolyBench::Gemm,
        Transformations::none(),
    );
    c.final_summary();
}

//! Regenerates Fig. 8 (proposal vs EMSHR vs L0).

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig8(ProblemSize::Mini);
    let mut c = common::harness();
    for org in [
        DCacheOrganization::nvm_vwb_default(),
        DCacheOrganization::nvm_emshr_default(),
        DCacheOrganization::nvm_l0_default(),
    ] {
        common::bench_sim(&mut c, "fig8", org, PolyBench::Gemm, Transformations::all());
    }
    c.final_summary();
}

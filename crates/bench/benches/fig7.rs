//! Regenerates Fig. 7 (VWB size sweep).

mod common;

use sttcache::{DCacheOrganization, VwbConfig};
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig7(ProblemSize::Mini);
    let mut c = common::harness();
    for bits in [1024usize, 2048, 4096] {
        let org = DCacheOrganization::NvmVwb(VwbConfig {
            capacity_bits: bits,
            ..VwbConfig::default()
        });
        let label = format!("fig7/vwb-{bits}bit");
        c.bench_function(&label, || {
            let r = sttcache_bench::run_benchmark(
                org,
                PolyBench::Gemm,
                ProblemSize::Mini,
                Transformations::all(),
            );
            common::black_box(r.cycles())
        });
    }
    c.final_summary();
}

//! Regenerates Fig. 9 (optimization gains on baseline vs proposal).

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig9(ProblemSize::Mini);
    let mut c = common::harness();
    for org in [
        DCacheOrganization::SramBaseline,
        DCacheOrganization::nvm_vwb_default(),
    ] {
        common::bench_sim(&mut c, "fig9", org, PolyBench::Bicg, Transformations::all());
    }
    c.final_summary();
}

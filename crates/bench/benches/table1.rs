//! Regenerates Table I and benchmarks the technology-model evaluation.

mod common;

use sttcache_bench::figures;

fn main() {
    figures::print_table1();
    let mut c = common::harness();
    c.bench_function("table1/array-model", || {
        common::black_box(sttcache_bench::table1())
    });
    c.final_summary();
}

//! Regenerates Fig. 5 (VWB with and without code transformations).

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig5(ProblemSize::Mini);
    let mut c = common::harness();
    for t in [Transformations::none(), Transformations::all()] {
        common::bench_sim(
            &mut c,
            "fig5",
            DCacheOrganization::nvm_vwb_default(),
            PolyBench::Atax,
            t,
        );
    }
    c.final_summary();
}

//! Regenerates Fig. 1 (drop-in NVM penalty) and benchmarks two of its
//! underlying simulations.

mod common;

use sttcache::DCacheOrganization;
use sttcache_bench::figures;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

fn main() {
    figures::print_fig1(ProblemSize::Mini);
    let mut c = common::harness();
    for org in [
        DCacheOrganization::SramBaseline,
        DCacheOrganization::NvmDropIn,
    ] {
        common::bench_sim(
            &mut c,
            "fig1",
            org,
            PolyBench::Gemm,
            Transformations::none(),
        );
    }
    c.final_summary();
}

//! Shared timing harness for the figure benches — hermetic replacement
//! for Criterion (no registry dependencies).
//!
//! Each bench target regenerates one table/figure of the paper: it prints
//! the figure's rows once (so `cargo bench` output contains the
//! reproduction), then times a representative simulation. Timing is
//! warmup + median-of-N wall-clock runs, reported as plain text.
//!
//! `cargo bench` arguments: `--runs N` (timed runs per label, default 5)
//! and `--warmup N` (untimed warm-up runs, default 1); everything else
//! (`--bench`, filters) is ignored.

use std::time::{Duration, Instant};

#[allow(unused_imports)] // not every bench target needs a manual black_box
pub use std::hint::black_box;

/// One timed entry: label + per-run wall-clock times (sorted).
struct Row {
    label: String,
    runs: Vec<Duration>,
}

/// A minimal warmup + median-of-N timing harness.
pub struct Harness {
    warmup: usize,
    runs: usize,
    rows: Vec<Row>,
}

/// A harness configured from the command line (see module docs).
#[allow(dead_code)] // each bench target compiles its own copy of this module
pub fn harness() -> Harness {
    Harness::from_args()
}

impl Harness {
    /// Parses `--runs N` / `--warmup N`, ignoring the flags `cargo bench`
    /// itself injects.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let lookup = |flag: &str, default: usize| -> usize {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Harness {
            warmup: lookup("--warmup", 1),
            runs: lookup("--runs", 5).max(1),
            rows: Vec::new(),
        }
    }

    /// Times `f`: `warmup` untimed calls, then `runs` timed calls; prints
    /// and records the median.
    pub fn bench_function<O>(&mut self, label: &str, mut f: impl FnMut() -> O) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.runs)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "bench {label:<40} median {:>10} (min {}, max {}, {} runs)",
            fmt_duration(median),
            fmt_duration(times[0]),
            fmt_duration(*times.last().expect("at least one run")),
            self.runs,
        );
        self.rows.push(Row {
            label: label.to_string(),
            runs: times,
        });
    }

    /// Prints the closing summary table (median per label).
    pub fn final_summary(self) {
        if self.rows.is_empty() {
            return;
        }
        println!("\n== timing summary (median of {} runs) ==", self.runs);
        for row in &self.rows {
            let median = row.runs[row.runs.len() / 2];
            println!("{:<44} {:>10}", row.label, fmt_duration(median));
        }
    }
}

/// Renders a duration with a unit that keeps 3-4 significant digits.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Benchmarks one (organization, kernel, transformations) simulation.
#[allow(dead_code)] // not every bench target fans out through this helper
pub fn bench_sim(
    h: &mut Harness,
    group: &str,
    org: sttcache::DCacheOrganization,
    bench: sttcache_workloads::PolyBench,
    t: sttcache_workloads::Transformations,
) {
    let label = format!("{}/{}/{}/{}", group, org.name(), bench.name(), t.label());
    h.bench_function(&label, || {
        let r = sttcache_bench::run_benchmark(org, bench, sttcache_workloads::ProblemSize::Mini, t);
        black_box(r.cycles())
    });
}

//! Shared Criterion plumbing for the figure benches.
//!
//! Each bench target regenerates one table/figure of the paper: it prints
//! the figure's rows once (so `cargo bench` output contains the
//! reproduction), then times a representative simulation so Criterion has
//! something meaningful to measure.

use criterion::Criterion;
use sttcache::DCacheOrganization;
use sttcache_bench::run_benchmark;
use sttcache_workloads::{PolyBench, ProblemSize, Transformations};

/// A Criterion instance tuned for whole-simulation benchmarks.
#[allow(dead_code)] // each bench target compiles its own copy of this module
pub fn criterion() -> Criterion {
    Criterion::default().sample_size(10).configure_from_args()
}

/// Benchmarks one (organization, kernel, transformations) simulation.
#[allow(dead_code)] // not every bench target fans out through this helper
pub fn bench_sim(
    c: &mut Criterion,
    group: &str,
    org: DCacheOrganization,
    bench: PolyBench,
    t: Transformations,
) {
    let label = format!("{}/{}/{}", group, bench.name(), t.label());
    c.bench_function(&label, |b| {
        b.iter(|| {
            let r = run_benchmark(org, bench, ProblemSize::Mini, t);
            criterion::black_box(r.cycles())
        })
    });
}

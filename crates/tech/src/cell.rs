//! Memory-cell models.
//!
//! One [`CellModel`] per technology the paper discusses. Each model carries
//! the per-cell parameters the array model needs: intrinsic read/write time
//! (the part of the access that happens *inside* the cell/bit-line/sense
//! path, beyond the shared periphery), cell area in F², per-bit leakage,
//! per-bit dynamic energy and write endurance.
//!
//! The SRAM and STT-MRAM parameter sets are calibrated so the 64 KB 2-way
//! array of the paper's Table I is reproduced exactly; ReRAM and PRAM carry
//! representative published values (the paper rules them out for L1 — PRAM
//! for write latency and integration, both for endurance — and those
//! properties are visible in these numbers).

use crate::mtj::MtjDevice;
use crate::TechError;

/// The memory technologies modelled by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CellKind {
    /// 6T CMOS SRAM (the baseline DL1 technology).
    Sram6T,
    /// STT-MRAM, 2T-2MTJ cell with the paper's perpendicular dual MTJ.
    ///
    /// This is the paper's NVM of choice and the crate default.
    #[default]
    SttMram,
    /// STT-MRAM, legacy 1T-1MTJ cell (higher density, weaker read margin).
    SttMram1T1Mtj,
    /// Resistive RAM (HfOx-class bipolar ReRAM).
    ReRam,
    /// Phase-change RAM (GST mushroom cell).
    Pram,
}

impl CellKind {
    /// All kinds, for exhaustive sweeps and tests.
    pub const ALL: [CellKind; 5] = [
        CellKind::Sram6T,
        CellKind::SttMram,
        CellKind::SttMram1T1Mtj,
        CellKind::ReRam,
        CellKind::Pram,
    ];

    /// Whether the technology retains data without power.
    pub fn is_non_volatile(self) -> bool {
        !matches!(self, CellKind::Sram6T)
    }

    /// Human-readable technology name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Sram6T => "SRAM",
            CellKind::SttMram => "STT-MRAM",
            CellKind::SttMram1T1Mtj => "STT-MRAM (1T-1MTJ)",
            CellKind::ReRam => "ReRAM",
            CellKind::Pram => "PRAM",
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Raw per-cell parameters consumed by the array model.
///
/// Obtain a calibrated set through [`CellModel::parameters`]; construct a
/// custom set directly for what-if studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParameters {
    /// Intrinsic read time in ns (bit-line development + sensing).
    pub read_ns: f64,
    /// Intrinsic write time in ns (cell flip / pulse + driver).
    pub write_ns: f64,
    /// Cell area in F².
    pub area_f2: f64,
    /// Per-bit standby leakage in nW (HP flavour, 32 nm).
    pub leakage_nw_per_bit: f64,
    /// Dynamic read energy per accessed bit in pJ.
    pub read_pj_per_bit: f64,
    /// Dynamic write energy per accessed bit in pJ.
    pub write_pj_per_bit: f64,
    /// Write endurance in cycles.
    pub endurance_cycles: f64,
}

impl CellParameters {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if any field is non-positive
    /// or non-finite.
    pub fn validate(&self) -> Result<(), TechError> {
        let fields: [(&'static str, f64); 7] = [
            ("read_ns", self.read_ns),
            ("write_ns", self.write_ns),
            ("area_f2", self.area_f2),
            ("leakage_nw_per_bit", self.leakage_nw_per_bit),
            ("read_pj_per_bit", self.read_pj_per_bit),
            ("write_pj_per_bit", self.write_pj_per_bit),
            ("endurance_cycles", self.endurance_cycles),
        ];
        for (name, value) in fields {
            // Leakage may legitimately be zero for NVM cells.
            let ok = value.is_finite() && (value > 0.0 || name == "leakage_nw_per_bit");
            if !ok || value < 0.0 {
                return Err(TechError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// A calibrated cell model for one [`CellKind`].
///
/// # Example
///
/// ```
/// use sttcache_tech::{CellKind, CellModel};
///
/// let stt = CellModel::new(CellKind::SttMram);
/// let sram = CellModel::new(CellKind::Sram6T);
/// // Table I: STT-MRAM is ~3.5x denser than SRAM (42 F² vs 146 F²).
/// assert!(sram.parameters().area_f2 / stt.parameters().area_f2 > 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellModel {
    kind: CellKind,
    params: CellParameters,
}

impl CellModel {
    /// Creates the calibrated model for `kind`.
    pub fn new(kind: CellKind) -> Self {
        let params = match kind {
            // Calibrated so the 64 KB 2-way array reads in 0.787 ns and
            // writes in 0.773 ns at 32 nm HP (Table I).
            CellKind::Sram6T => CellParameters {
                read_ns: 0.250,
                write_ns: 0.236,
                area_f2: 146.0,
                leakage_nw_per_bit: 147.6,
                read_pj_per_bit: 0.040,
                write_pj_per_bit: 0.042,
                endurance_cycles: 1e16,
            },
            // Paper cell: 2T-2MTJ with the perpendicular dual MTJ. The
            // intrinsic read is dominated by MTJ sensing (2.4 ns at 100 %
            // TMR) plus the high-resistance bit-line development (0.433 ns);
            // the write by the 1.2 ns precessional pulse plus driver
            // (0.123 ns). With the shared periphery this reproduces
            // Table I's 3.37 ns / 1.86 ns at 64 KB.
            CellKind::SttMram => CellParameters {
                read_ns: 2.833,
                write_ns: 1.323,
                area_f2: 42.0,
                leakage_nw_per_bit: 0.0,
                read_pj_per_bit: 0.030,
                write_pj_per_bit: 0.250,
                endurance_cycles: 1e15,
            },
            // 1T-1MTJ: denser but the single-ended read margin is weaker
            // (longer sensing) and write endurance/stability is what pushed
            // industry to 2T-2MTJ (paper §III).
            CellKind::SttMram1T1Mtj => CellParameters {
                read_ns: 3.6,
                write_ns: 1.9,
                area_f2: 22.0,
                leakage_nw_per_bit: 0.0,
                read_pj_per_bit: 0.028,
                write_pj_per_bit: 0.300,
                endurance_cycles: 1e12,
            },
            // Fast read, small cell, but limited endurance (paper §II:
            // "plagued by severe endurance issues").
            CellKind::ReRam => CellParameters {
                read_ns: 1.1,
                write_ns: 9.0,
                area_f2: 16.0,
                leakage_nw_per_bit: 0.0,
                read_pj_per_bit: 0.022,
                write_pj_per_bit: 0.450,
                endurance_cycles: 1e10,
            },
            // Very slow writes and CMOS-integration problems rule PRAM out
            // for high-level caches (paper §I).
            CellKind::Pram => CellParameters {
                read_ns: 2.2,
                write_ns: 90.0,
                area_f2: 12.0,
                leakage_nw_per_bit: 0.0,
                read_pj_per_bit: 0.035,
                write_pj_per_bit: 2.8,
                endurance_cycles: 1e8,
            },
        };
        CellModel { kind, params }
    }

    /// Builds an STT-MRAM cell model from an explicit [`MtjDevice`],
    /// recomputing the intrinsic read/write times from the device physics.
    ///
    /// Bit-line and driver overheads (0.433 ns / 0.123 ns) and energies are
    /// inherited from the calibrated paper cell.
    pub fn from_mtj(mtj: &MtjDevice, write_overdrive: f64) -> Self {
        let base = CellModel::new(CellKind::SttMram);
        let params = CellParameters {
            read_ns: mtj.sensing_time_ns() + 0.433,
            write_ns: mtj.write_pulse_ns(write_overdrive) + 0.123,
            ..base.params
        };
        CellModel {
            kind: CellKind::SttMram,
            params,
        }
    }

    /// Creates a model with custom parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if `params` fails
    /// [`CellParameters::validate`].
    pub fn with_parameters(kind: CellKind, params: CellParameters) -> Result<Self, TechError> {
        params.validate()?;
        Ok(CellModel { kind, params })
    }

    /// The technology kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The parameter set.
    pub fn parameters(&self) -> &CellParameters {
        &self.params
    }
}

impl Default for CellModel {
    fn default() -> Self {
        CellModel::new(CellKind::SttMram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_models_validate() {
        for kind in CellKind::ALL {
            CellModel::new(kind).parameters().validate().unwrap();
        }
    }

    #[test]
    fn stt_read_is_the_bottleneck_not_write() {
        // The paper's key technology claim: with realistic TMR the read
        // intrinsic exceeds the write intrinsic for the 2T-2MTJ cell.
        let p = *CellModel::new(CellKind::SttMram).parameters();
        assert!(p.read_ns > p.write_ns);
    }

    #[test]
    fn sram_is_fastest_and_leakiest() {
        let sram = *CellModel::new(CellKind::Sram6T).parameters();
        for kind in [CellKind::SttMram, CellKind::ReRam, CellKind::Pram] {
            let nvm = *CellModel::new(kind).parameters();
            assert!(sram.read_ns < nvm.read_ns, "{kind}");
            assert!(sram.leakage_nw_per_bit > nvm.leakage_nw_per_bit, "{kind}");
        }
    }

    #[test]
    fn pram_write_is_prohibitive_for_l1() {
        let pram = *CellModel::new(CellKind::Pram).parameters();
        let stt = *CellModel::new(CellKind::SttMram).parameters();
        assert!(pram.write_ns > 10.0 * stt.write_ns);
    }

    #[test]
    fn endurance_ordering_matches_paper() {
        // SRAM >= STT-MRAM >> ReRAM > PRAM.
        let e = |k: CellKind| CellModel::new(k).parameters().endurance_cycles;
        assert!(e(CellKind::Sram6T) >= e(CellKind::SttMram));
        assert!(e(CellKind::SttMram) > 1e4 * e(CellKind::ReRam));
        assert!(e(CellKind::ReRam) > e(CellKind::Pram));
    }

    #[test]
    fn from_mtj_matches_paper_cell() {
        let mtj = MtjDevice::paper_device().unwrap();
        let cell = CellModel::from_mtj(&mtj, 2.0);
        let builtin = CellModel::new(CellKind::SttMram);
        assert!((cell.parameters().read_ns - builtin.parameters().read_ns).abs() < 1e-9);
        assert!((cell.parameters().write_ns - builtin.parameters().write_ns).abs() < 1e-9);
    }

    #[test]
    fn custom_parameters_are_validated() {
        let mut p = *CellModel::new(CellKind::Sram6T).parameters();
        p.read_ns = -1.0;
        assert!(CellModel::with_parameters(CellKind::Sram6T, p).is_err());
        p.read_ns = f64::INFINITY;
        assert!(CellModel::with_parameters(CellKind::Sram6T, p).is_err());
    }

    #[test]
    fn non_volatility_flags() {
        assert!(!CellKind::Sram6T.is_non_volatile());
        for kind in [
            CellKind::SttMram,
            CellKind::SttMram1T1Mtj,
            CellKind::ReRam,
            CellKind::Pram,
        ] {
            assert!(kind.is_non_volatile());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::SttMram.to_string(), "STT-MRAM");
        assert_eq!(CellKind::Sram6T.to_string(), "SRAM");
    }
}

//! Magnetic tunnel junction (MTJ) device model.
//!
//! STT-MRAM stores a bit in the relative magnetic orientation of the free and
//! pinned layers of an MTJ. The paper's central technology observation is
//! that with realistic tunnel-magnetoresistance (TMR) ratios — constrained by
//! cell stability and endurance, and by the industry shift from 1T-1MTJ to
//! 2T-2MTJ cells — the *read* sensing latency, not the write pulse, is the
//! bottleneck for L1-class arrays. This module captures that trade-off:
//! lower TMR ⇒ smaller read margin ⇒ longer sensing time.

use crate::TechError;

/// The MTJ stack geometry (perpendicular vs in-plane anisotropy).
///
/// The paper's cell is "the advanced perpendicular dual MTJ cell with low
/// power, high speed write operation and high magneto-resistive ratio"
/// (Noguchi et al., VLSI 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum MtjStack {
    /// Perpendicular magnetic anisotropy, dual-interface stack (paper cell).
    #[default]
    PerpendicularDual,
    /// Perpendicular magnetic anisotropy, single interface.
    PerpendicularSingle,
    /// Legacy in-plane stack.
    InPlane,
}

impl MtjStack {
    /// Relative write-current requirement of this stack (perpendicular dual
    /// is the most write-efficient).
    pub fn write_current_factor(self) -> f64 {
        match self {
            MtjStack::PerpendicularDual => 1.0,
            MtjStack::PerpendicularSingle => 1.4,
            MtjStack::InPlane => 2.6,
        }
    }
}

/// Switching regime of an STT write pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SwitchingMode {
    /// Sub-10 ns precessional switching (cache-class writes).
    Precessional,
    /// 10–100 ns thermally assisted regime.
    ThermalActivation,
}

/// An MTJ device with its electrical and magnetic parameters.
///
/// # Example
///
/// ```
/// use sttcache_tech::MtjDevice;
///
/// # fn main() -> Result<(), sttcache_tech::TechError> {
/// let mtj = MtjDevice::paper_device()?;
/// // Realistic TMR for a stable, endurable cell is ~100 %.
/// assert!((mtj.tmr() - 1.0).abs() < 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjDevice {
    stack: MtjStack,
    /// Parallel-state resistance in ohms.
    r_parallel: f64,
    /// TMR ratio: (R_ap − R_p) / R_p, as a fraction (1.0 = 100 %).
    tmr: f64,
    /// Thermal stability factor Δ = E_b / k_B·T.
    thermal_stability: f64,
    /// Critical switching current in microamperes.
    critical_current_ua: f64,
}

impl MtjDevice {
    /// The paper's device: advanced perpendicular dual-MTJ with a realistic
    /// (stability- and endurance-constrained) TMR of ~100 %.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in parameters; the `Result` mirrors
    /// [`MtjDevice::new`] so doc examples exercise the fallible path.
    pub fn paper_device() -> Result<Self, TechError> {
        MtjDevice::new(MtjStack::PerpendicularDual, 2500.0, 1.0, 60.0, 35.0)
    }

    /// Creates an MTJ device.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if any parameter is outside
    /// its physical range (`r_parallel > 0`, `0 < tmr ≤ 4`,
    /// `thermal_stability ≥ 30` for non-volatile retention,
    /// `critical_current_ua > 0`).
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
    pub fn new(
        stack: MtjStack,
        r_parallel: f64,
        tmr: f64,
        thermal_stability: f64,
        critical_current_ua: f64,
    ) -> Result<Self, TechError> {
        if !(r_parallel > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "r_parallel",
                value: r_parallel,
            });
        }
        if !(tmr > 0.0 && tmr <= 4.0) {
            return Err(TechError::InvalidParameter {
                name: "tmr",
                value: tmr,
            });
        }
        if !(thermal_stability >= 30.0) {
            return Err(TechError::InvalidParameter {
                name: "thermal_stability",
                value: thermal_stability,
            });
        }
        if !(critical_current_ua > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "critical_current_ua",
                value: critical_current_ua,
            });
        }
        Ok(MtjDevice {
            stack,
            r_parallel,
            tmr,
            thermal_stability,
            critical_current_ua,
        })
    }

    /// The stack geometry.
    pub fn stack(&self) -> MtjStack {
        self.stack
    }

    /// Parallel-state resistance in ohms.
    pub fn r_parallel(&self) -> f64 {
        self.r_parallel
    }

    /// Anti-parallel-state resistance in ohms.
    pub fn r_antiparallel(&self) -> f64 {
        self.r_parallel * (1.0 + self.tmr)
    }

    /// TMR ratio as a fraction (1.0 = 100 %).
    pub fn tmr(&self) -> f64 {
        self.tmr
    }

    /// Thermal stability factor Δ.
    pub fn thermal_stability(&self) -> f64 {
        self.thermal_stability
    }

    /// Critical switching current in µA.
    pub fn critical_current_ua(&self) -> f64 {
        self.critical_current_ua
    }

    /// Read-sensing time in nanoseconds for a given sense-amplifier
    /// reference margin.
    ///
    /// Sensing resolves the resistance difference between R_p and R_ap; the
    /// usable signal scales with `TMR / (2 + TMR)` (mid-point referenced
    /// sensing), and the sense amplifier integrates until the bit-line
    /// differential exceeds its offset. Lower TMR ⇒ longer integration.
    /// Calibrated so the paper device senses in ≈2.4 ns, which combined with
    /// array overheads yields Table I's 3.37 ns read at 64 KB.
    pub fn sensing_time_ns(&self) -> f64 {
        // Signal fraction available to the sense amp.
        let signal = self.tmr / (2.0 + self.tmr);
        // Paper device: tmr = 1.0 ⇒ signal = 1/3 ⇒ 0.8 / (1/3) = 2.4 ns.
        0.8 / signal
    }

    /// Write-pulse width in nanoseconds for a given overdrive ratio
    /// `i_write / i_critical` in the precessional regime.
    ///
    /// STT switching time scales roughly as `1 / (I/Ic − 1)` above the
    /// critical current. Calibrated so the paper device with 2× overdrive
    /// switches in ≈1.2 ns (array overheads bring the 64 KB write to
    /// Table I's 1.86 ns).
    ///
    /// # Panics
    ///
    /// Panics if `overdrive <= 1.0` (no switching below critical current).
    pub fn write_pulse_ns(&self, overdrive: f64) -> f64 {
        assert!(
            overdrive > 1.0,
            "write overdrive must exceed the critical current"
        );
        let base = 1.2 * self.stack.write_current_factor();
        base / (overdrive - 1.0)
    }

    /// Switching mode for a given pulse width.
    pub fn switching_mode(&self, pulse_ns: f64) -> SwitchingMode {
        if pulse_ns < 10.0 {
            SwitchingMode::Precessional
        } else {
            SwitchingMode::ThermalActivation
        }
    }

    /// Retention time in seconds at operating temperature, from the thermal
    /// stability factor: `t = t0 · exp(Δ)` with `t0 = 1 ns` attempt time.
    pub fn retention_seconds(&self) -> f64 {
        1e-9 * self.thermal_stability.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_is_valid() {
        let mtj = MtjDevice::paper_device().unwrap();
        assert_eq!(mtj.stack(), MtjStack::PerpendicularDual);
        assert!(mtj.r_antiparallel() > mtj.r_parallel());
    }

    #[test]
    fn lower_tmr_senses_slower() {
        let hi = MtjDevice::new(MtjStack::PerpendicularDual, 2500.0, 2.0, 60.0, 35.0).unwrap();
        let lo = MtjDevice::new(MtjStack::PerpendicularDual, 2500.0, 0.5, 60.0, 35.0).unwrap();
        assert!(lo.sensing_time_ns() > hi.sensing_time_ns());
    }

    #[test]
    fn paper_sensing_time_matches_calibration() {
        let mtj = MtjDevice::paper_device().unwrap();
        assert!((mtj.sensing_time_ns() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn higher_overdrive_switches_faster() {
        let mtj = MtjDevice::paper_device().unwrap();
        assert!(mtj.write_pulse_ns(3.0) < mtj.write_pulse_ns(1.5));
    }

    #[test]
    #[should_panic(expected = "overdrive")]
    fn subcritical_write_panics() {
        let mtj = MtjDevice::paper_device().unwrap();
        let _ = mtj.write_pulse_ns(0.9);
    }

    #[test]
    fn retention_is_years_for_delta_60() {
        let mtj = MtjDevice::paper_device().unwrap();
        // exp(60) ns ≈ 3.6e9 years; just check it exceeds ten years.
        assert!(mtj.retention_seconds() > 10.0 * 365.25 * 86400.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(MtjDevice::new(MtjStack::InPlane, -1.0, 1.0, 60.0, 35.0).is_err());
        assert!(MtjDevice::new(MtjStack::InPlane, 2500.0, 0.0, 60.0, 35.0).is_err());
        assert!(MtjDevice::new(MtjStack::InPlane, 2500.0, 9.0, 60.0, 35.0).is_err());
        assert!(MtjDevice::new(MtjStack::InPlane, 2500.0, 1.0, 10.0, 35.0).is_err());
        assert!(MtjDevice::new(MtjStack::InPlane, 2500.0, 1.0, 60.0, 0.0).is_err());
    }

    #[test]
    fn in_plane_needs_more_write_current() {
        assert!(
            MtjStack::InPlane.write_current_factor()
                > MtjStack::PerpendicularDual.write_current_factor()
        );
    }

    #[test]
    fn switching_mode_boundary() {
        let mtj = MtjDevice::paper_device().unwrap();
        assert_eq!(mtj.switching_mode(2.0), SwitchingMode::Precessional);
        assert_eq!(mtj.switching_mode(50.0), SwitchingMode::ThermalActivation);
    }
}

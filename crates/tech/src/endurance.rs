//! Write-endurance and lifetime estimation.
//!
//! The paper rejects ReRAM and PRAM partly because of "severe endurance
//! issues" and keeps STT-MRAM because it "suffers minimal degradation over
//! time". This module turns a cell's endurance rating plus an observed write
//! rate into a lifetime estimate, optionally accounting for wear-levelling
//! across the array's lines.

use crate::cell::CellModel;

/// An estimated array lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lifetime {
    /// Lifetime in seconds (infinite if the write rate is zero).
    pub seconds: f64,
}

impl Lifetime {
    /// Lifetime in years.
    pub fn years(&self) -> f64 {
        self.seconds / (365.25 * 86400.0)
    }

    /// Whether the lifetime exceeds a typical 10-year product requirement.
    pub fn meets_ten_year_target(&self) -> bool {
        self.years() >= 10.0
    }
}

/// Endurance model for a memory array built from a given cell.
///
/// # Example
///
/// ```
/// use sttcache_tech::{CellKind, CellModel, EnduranceModel};
///
/// let stt = EnduranceModel::new(CellModel::new(CellKind::SttMram), 1024);
/// // 100 M line-writes/s spread over 1024 lines: STT-MRAM easily
/// // survives 10 years...
/// assert!(stt.lifetime(1e8, 1.0).meets_ten_year_target());
/// // ...while PRAM at the same L1-class write rate does not.
/// let pram = EnduranceModel::new(CellModel::new(CellKind::Pram), 1024);
/// assert!(!pram.lifetime(1e8, 1.0).meets_ten_year_target());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    cell: CellModel,
    lines: usize,
}

impl EnduranceModel {
    /// Creates a model for an array of `lines` cache lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(cell: CellModel, lines: usize) -> Self {
        assert!(lines > 0, "array must have at least one line");
        EnduranceModel { cell, lines }
    }

    /// Estimates lifetime for `writes_per_second` line-writes and a
    /// wear-levelling quality factor in `(0, 1]` (1 = perfectly uniform
    /// wear; smaller = hot lines concentrate wear).
    ///
    /// # Panics
    ///
    /// Panics if `uniformity` is outside `(0, 1]` or `writes_per_second` is
    /// negative.
    pub fn lifetime(&self, writes_per_second: f64, uniformity: f64) -> Lifetime {
        assert!(
            uniformity > 0.0 && uniformity <= 1.0,
            "wear uniformity must be in (0, 1]"
        );
        assert!(writes_per_second >= 0.0, "write rate must be non-negative");
        if writes_per_second == 0.0 {
            return Lifetime {
                seconds: f64::INFINITY,
            };
        }
        // Per-line write rate if wear were uniform, de-rated by uniformity.
        let per_line_rate = writes_per_second / (self.lines as f64 * uniformity);
        Lifetime {
            seconds: self.cell.parameters().endurance_cycles / per_line_rate,
        }
    }

    /// The cell model.
    pub fn cell(&self) -> &CellModel {
        &self.cell
    }

    /// The line count used for wear spreading.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Estimates lifetime from an observed per-line (or per-set) wear map:
    /// the uniformity factor is derived from the map's write distribution
    /// via [`wear_uniformity`] and the write rate from its total.
    ///
    /// `seconds_observed` is the wall-clock (at the modelled clock rate)
    /// over which `wear_map` was collected.
    ///
    /// # Panics
    ///
    /// Panics if `seconds_observed` is not positive.
    pub fn lifetime_from_wear_map(&self, wear_map: &[u64], seconds_observed: f64) -> Lifetime {
        assert!(
            seconds_observed > 0.0,
            "observation window must be positive"
        );
        let total: u64 = wear_map.iter().sum();
        self.lifetime(total as f64 / seconds_observed, wear_uniformity(wear_map))
    }
}

/// Jain's fairness index of a wear map: `(Σw)² / (N·Σw²)`, in `(0, 1]`.
///
/// `1.0` means perfectly uniform wear (every line written equally often);
/// `1/N` means all writes landed on a single line. An empty or all-zero
/// map reports `1.0` (no wear to be non-uniform about), so the result is
/// always a valid uniformity factor for [`EnduranceModel::lifetime`].
pub fn wear_uniformity(wear_map: &[u64]) -> f64 {
    let total: f64 = wear_map.iter().map(|&w| w as f64).sum();
    if wear_map.is_empty() || total == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = wear_map.iter().map(|&w| (w as f64) * (w as f64)).sum();
    (total * total) / (wear_map.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn model(kind: CellKind) -> EnduranceModel {
        EnduranceModel::new(CellModel::new(kind), 1024)
    }

    #[test]
    fn zero_writes_is_infinite_lifetime() {
        let lt = model(CellKind::SttMram).lifetime(0.0, 1.0);
        assert!(lt.seconds.is_infinite());
        assert!(lt.meets_ten_year_target());
    }

    #[test]
    fn stt_outlives_reram_and_pram() {
        let rate = 1e8;
        let stt = model(CellKind::SttMram).lifetime(rate, 1.0);
        let reram = model(CellKind::ReRam).lifetime(rate, 1.0);
        let pram = model(CellKind::Pram).lifetime(rate, 1.0);
        assert!(stt.seconds > reram.seconds);
        assert!(reram.seconds > pram.seconds);
    }

    #[test]
    fn poor_wear_leveling_shortens_life() {
        let good = model(CellKind::SttMram).lifetime(1e8, 1.0);
        let bad = model(CellKind::SttMram).lifetime(1e8, 0.1);
        assert!(bad.seconds < good.seconds);
        assert!((good.seconds / bad.seconds - 10.0).abs() < 1e-6);
    }

    #[test]
    fn more_lines_spread_wear() {
        let small = EnduranceModel::new(CellModel::new(CellKind::ReRam), 256);
        let large = EnduranceModel::new(CellModel::new(CellKind::ReRam), 4096);
        assert!(large.lifetime(1e8, 1.0).seconds > small.lifetime(1e8, 1.0).seconds);
    }

    #[test]
    fn years_conversion() {
        let lt = Lifetime {
            seconds: 365.25 * 86400.0,
        };
        assert!((lt.years() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "uniformity")]
    fn invalid_uniformity_panics() {
        let _ = model(CellKind::SttMram).lifetime(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_panics() {
        let _ = EnduranceModel::new(CellModel::new(CellKind::SttMram), 0);
    }

    #[test]
    fn uniformity_is_one_for_uniform_and_empty_maps() {
        assert_eq!(wear_uniformity(&[]), 1.0);
        assert_eq!(wear_uniformity(&[0, 0, 0]), 1.0);
        assert!((wear_uniformity(&[7, 7, 7, 7]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniformity_of_a_single_hot_line_is_one_over_n() {
        let mut map = vec![0u64; 16];
        map[3] = 1000;
        assert!((wear_uniformity(&map) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn uniformity_decreases_with_skew() {
        let even = wear_uniformity(&[10, 10, 10, 10]);
        let skewed = wear_uniformity(&[37, 1, 1, 1]);
        assert!(skewed < even);
        assert!(skewed > 0.25); // better than a single hot line
    }

    #[test]
    fn wear_map_lifetime_matches_manual_rate_and_uniformity() {
        let m = model(CellKind::SttMram);
        let map = vec![100u64; 1024];
        let from_map = m.lifetime_from_wear_map(&map, 2.0);
        let manual = m.lifetime(1024.0 * 100.0 / 2.0, 1.0);
        assert!((from_map.seconds - manual.seconds).abs() < 1e-6 * manual.seconds);
    }

    #[test]
    fn hot_set_shortens_wear_map_lifetime() {
        let m = model(CellKind::SttMram);
        let uniform = m.lifetime_from_wear_map(&vec![10u64; 1024], 1.0);
        let mut hot = vec![0u64; 1024];
        hot[0] = 10 * 1024;
        let skewed = m.lifetime_from_wear_map(&hot, 1.0);
        assert!(skewed.seconds < uniform.seconds);
    }

    #[test]
    fn zero_wear_map_is_infinite_lifetime() {
        let lt = model(CellKind::SttMram).lifetime_from_wear_map(&[0, 0], 1.0);
        assert!(lt.seconds.is_infinite());
    }
}

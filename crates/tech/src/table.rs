//! Regeneration of the paper's Table I.
//!
//! Table I compares the 64 KB SRAM L1 D-cache with its STT-MRAM replacement
//! at the 32 nm HP node. The SRAM leakage entry was lost in the available
//! text of the paper (only the STT-MRAM value, 28.35 mW, survived); the
//! model's SRAM value (~105.7 mW) is what the calibrated analytical model
//! produces and is flagged as such in `EXPERIMENTS.md`.

use crate::array::{ArrayConfig, ArrayModel};
use crate::cell::CellKind;

/// One column of Table I (one technology).
#[derive(Debug, Clone, PartialEq)]
pub struct TableOneRow {
    /// Technology name.
    pub technology: String,
    /// Random read latency in ns.
    pub read_latency_ns: f64,
    /// Random write latency in ns.
    pub write_latency_ns: f64,
    /// Array leakage in mW.
    pub leakage_mw: f64,
    /// Cell area in F².
    pub cell_area_f2: f64,
    /// Set associativity.
    pub associativity: usize,
    /// Cache line size in bits.
    pub line_bits: usize,
}

/// Produces both columns of the paper's Table I: the 64 KB 2-way SRAM
/// D-cache (256-bit lines) and the 64 KB 2-way STT-MRAM D-cache (512-bit
/// lines).
///
/// # Example
///
/// ```
/// let [sram, stt] = sttcache_tech::table_one();
/// assert_eq!(sram.technology, "SRAM");
/// assert_eq!(stt.line_bits, 512);
/// assert!(stt.read_latency_ns > 4.0 * sram.read_latency_ns * 0.9);
/// ```
pub fn table_one() -> [TableOneRow; 2] {
    let sram = ArrayModel::new(
        ArrayConfig::builder()
            .cell(CellKind::Sram6T)
            .line_bits(256)
            .build()
            .expect("table-one SRAM config is valid"),
    );
    let stt = ArrayModel::new(
        ArrayConfig::builder()
            .cell(CellKind::SttMram)
            .line_bits(512)
            .build()
            .expect("table-one STT config is valid"),
    );
    [row(&sram), row(&stt)]
}

fn row(model: &ArrayModel) -> TableOneRow {
    TableOneRow {
        technology: model.cell().kind().name().to_string(),
        read_latency_ns: model.read_latency_ns(),
        write_latency_ns: model.write_latency_ns(),
        leakage_mw: model.leakage_mw(),
        cell_area_f2: model.cell_area_f2(),
        associativity: model.config().associativity(),
        line_bits: model.config().line_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_paper() {
        let [sram, stt] = table_one();
        assert!((sram.read_latency_ns - 0.787).abs() < 1e-3);
        assert!((sram.write_latency_ns - 0.773).abs() < 1e-3);
        assert_eq!(sram.cell_area_f2, 146.0);
        assert_eq!(sram.associativity, 2);
        assert_eq!(sram.line_bits, 256);

        assert!((stt.read_latency_ns - 3.37).abs() < 1e-2);
        assert!((stt.write_latency_ns - 1.86).abs() < 1e-2);
        assert!((stt.leakage_mw - 28.35).abs() < 1e-6);
        assert_eq!(stt.cell_area_f2, 42.0);
        assert_eq!(stt.associativity, 2);
        assert_eq!(stt.line_bits, 512);
    }

    #[test]
    fn sram_leaks_more_than_stt() {
        let [sram, stt] = table_one();
        assert!(sram.leakage_mw > 3.0 * stt.leakage_mw);
    }
}

//! Analytical technology models for on-chip memory arrays.
//!
//! This crate is the technology substrate of the `sttcache` reproduction of
//! *"System level exploration of a STT-MRAM based Level 1 Data-Cache"*
//! (Komalan et al., DATE 2015). It provides CACTI/NVSim-flavoured analytical
//! models for the memory cells the paper discusses — 6T SRAM, STT-MRAM
//! (1T-1MTJ and 2T-2MTJ), ReRAM and PRAM — and for complete banked memory
//! arrays built from them: access latency, dynamic energy, leakage power,
//! silicon area and endurance.
//!
//! The array model is calibrated at the 32 nm high-performance node so that a
//! 64 KB, 2-way array reproduces the paper's Table I exactly (SRAM:
//! 0.787 ns read / 0.773 ns write, 146 F² per cell; STT-MRAM: 3.37 ns read /
//! 1.86 ns write, 28.35 mW leakage, 42 F² per cell).
//!
//! # Example
//!
//! ```
//! use sttcache_tech::{ArrayConfig, ArrayModel, CellKind, TechNode};
//!
//! # fn main() -> Result<(), sttcache_tech::TechError> {
//! let cfg = ArrayConfig::builder()
//!     .capacity_bytes(64 * 1024)
//!     .associativity(2)
//!     .line_bits(512)
//!     .cell(CellKind::SttMram)
//!     .node(TechNode::hp_32nm())
//!     .build()?;
//! let model = ArrayModel::new(cfg);
//! assert!((model.read_latency_ns() - 3.37).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod cell;
mod endurance;
mod energy;
mod error;
mod explore;
mod mtj;
mod node;
mod table;

pub use array::{ArrayConfig, ArrayConfigBuilder, ArrayModel, ArrayOrganization};
pub use cell::{CellKind, CellModel, CellParameters};
pub use endurance::{wear_uniformity, EnduranceModel, Lifetime};
pub use energy::{EnergyBreakdown, LeakageIntegrator};
pub use error::TechError;
pub use explore::{explore, pareto_front, DesignPoint, SweepSpec};
pub use mtj::{MtjDevice, MtjStack, SwitchingMode};
pub use node::{TechNode, TransistorFlavor};
pub use table::{table_one, TableOneRow};

/// Nanoseconds, as used for array access latencies.
pub type Nanoseconds = f64;
/// Picojoules, as used for per-access dynamic energy.
pub type Picojoules = f64;
/// Milliwatts, as used for leakage power.
pub type Milliwatts = f64;
/// Square millimetres, as used for array area.
pub type SquareMillimetres = f64;

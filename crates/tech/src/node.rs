//! Process technology nodes.
//!
//! The paper evaluates a 32 nm high-performance (HP) node. This module keeps
//! the node description separate from the cell models so the same cell can be
//! scaled across nodes (the paper obtains its STT-MRAM numbers "by means of
//! appropriate technology scaling" from published 65/45 nm prototypes).

use crate::TechError;

/// Transistor flavour of a process node.
///
/// High-performance transistors are fast but leaky; low-standby-power
/// transistors trade speed for drastically lower sub-threshold leakage.
/// The paper's Table I uses the HP flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum TransistorFlavor {
    /// High performance (fast, leaky). Paper default.
    #[default]
    HighPerformance,
    /// Low operating power.
    LowOperatingPower,
    /// Low standby power.
    LowStandbyPower,
}

impl TransistorFlavor {
    /// Multiplier applied to per-cell leakage relative to the HP flavour.
    pub fn leakage_factor(self) -> f64 {
        match self {
            TransistorFlavor::HighPerformance => 1.0,
            TransistorFlavor::LowOperatingPower => 0.12,
            TransistorFlavor::LowStandbyPower => 0.015,
        }
    }

    /// Multiplier applied to gate/logic delay relative to the HP flavour.
    pub fn delay_factor(self) -> f64 {
        match self {
            TransistorFlavor::HighPerformance => 1.0,
            TransistorFlavor::LowOperatingPower => 1.35,
            TransistorFlavor::LowStandbyPower => 1.9,
        }
    }
}

/// A process technology node: feature size, supply voltage and transistor
/// flavour.
///
/// All array-model delays and energies are expressed relative to this node;
/// [`TechNode::hp_32nm`] is the calibration point for the paper's Table I.
///
/// # Example
///
/// ```
/// use sttcache_tech::TechNode;
///
/// let node = TechNode::hp_32nm();
/// assert_eq!(node.feature_nm(), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    feature_nm: f64,
    vdd: f64,
    flavor: TransistorFlavor,
}

impl TechNode {
    /// The paper's evaluation node: 32 nm, high-performance transistors,
    /// 0.9 V supply.
    pub fn hp_32nm() -> Self {
        TechNode {
            feature_nm: 32.0,
            vdd: 0.9,
            flavor: TransistorFlavor::HighPerformance,
        }
    }

    /// A 45 nm HP node (used for cross-node scaling checks).
    pub fn hp_45nm() -> Self {
        TechNode {
            feature_nm: 45.0,
            vdd: 1.0,
            flavor: TransistorFlavor::HighPerformance,
        }
    }

    /// A 22 nm HP node (forward scaling).
    pub fn hp_22nm() -> Self {
        TechNode {
            feature_nm: 22.0,
            vdd: 0.8,
            flavor: TransistorFlavor::HighPerformance,
        }
    }

    /// Creates a custom node.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if `feature_nm` or `vdd` is
    /// not strictly positive.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
    pub fn new(feature_nm: f64, vdd: f64, flavor: TransistorFlavor) -> Result<Self, TechError> {
        if !(feature_nm > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "feature_nm",
                value: feature_nm,
            });
        }
        if !(vdd > 0.0) {
            return Err(TechError::InvalidParameter {
                name: "vdd",
                value: vdd,
            });
        }
        Ok(TechNode {
            feature_nm,
            vdd,
            flavor,
        })
    }

    /// Feature size F in nanometres.
    pub fn feature_nm(&self) -> f64 {
        self.feature_nm
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Transistor flavour.
    pub fn flavor(&self) -> TransistorFlavor {
        self.flavor
    }

    /// Area of one F² in mm² (`F` in nm ⇒ `F²` in nm², converted to mm²).
    pub fn f2_mm2(&self) -> f64 {
        let f_mm = self.feature_nm * 1e-6;
        f_mm * f_mm
    }

    /// Delay scale of this node relative to the 32 nm HP calibration node.
    ///
    /// First-order Dennard-style scaling: gate delay shrinks roughly linearly
    /// with feature size; the flavour factor is applied on top.
    pub fn delay_scale(&self) -> f64 {
        (self.feature_nm / 32.0) * self.flavor.delay_factor()
    }

    /// Dynamic-energy scale relative to the 32 nm HP calibration node
    /// (CV² scaling: capacitance ∝ F, energy ∝ F·Vdd²).
    pub fn energy_scale(&self) -> f64 {
        (self.feature_nm / 32.0) * (self.vdd / 0.9).powi(2)
    }

    /// Leakage-power scale relative to the 32 nm HP calibration node.
    ///
    /// Sub-threshold leakage per transistor *grows* as nodes shrink (the
    /// paper's motivation for NVMs); this is modelled as an inverse-linear
    /// dependence on feature size times the flavour factor.
    pub fn leakage_scale(&self) -> f64 {
        (32.0 / self.feature_nm) * self.flavor.leakage_factor()
    }
}

impl Default for TechNode {
    fn default() -> Self {
        TechNode::hp_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_node_scales_are_unity() {
        let n = TechNode::hp_32nm();
        assert_eq!(n.delay_scale(), 1.0);
        assert_eq!(n.energy_scale(), 1.0);
        assert_eq!(n.leakage_scale(), 1.0);
    }

    #[test]
    fn smaller_node_is_faster_and_leakier() {
        let n22 = TechNode::hp_22nm();
        assert!(n22.delay_scale() < 1.0);
        assert!(n22.leakage_scale() > 1.0);
    }

    #[test]
    fn larger_node_is_slower() {
        let n45 = TechNode::hp_45nm();
        assert!(n45.delay_scale() > 1.0);
        assert!(n45.energy_scale() > 1.0);
    }

    #[test]
    fn invalid_nodes_are_rejected() {
        assert!(TechNode::new(0.0, 1.0, TransistorFlavor::HighPerformance).is_err());
        assert!(TechNode::new(32.0, -0.1, TransistorFlavor::HighPerformance).is_err());
        assert!(TechNode::new(f64::NAN, 1.0, TransistorFlavor::HighPerformance).is_err());
    }

    #[test]
    fn f2_area_is_consistent() {
        let n = TechNode::hp_32nm();
        // 32 nm = 3.2e-5 mm, squared = 1.024e-9 mm².
        assert!((n.f2_mm2() - 1.024e-9).abs() < 1e-12);
    }

    #[test]
    fn low_power_flavors_leak_less_but_are_slower() {
        let hp = TransistorFlavor::HighPerformance;
        let lstp = TransistorFlavor::LowStandbyPower;
        assert!(lstp.leakage_factor() < hp.leakage_factor());
        assert!(lstp.delay_factor() > hp.delay_factor());
    }
}

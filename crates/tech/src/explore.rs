//! Technology design-space exploration.
//!
//! The paper's §VI explorations ("the effect of the different tune-able
//! parameters") generalize naturally at the technology layer: which
//! (capacity, associativity, cell) points are Pareto-optimal in the
//! latency / leakage / area space? This module sweeps array
//! configurations, evaluates them through the calibrated [`ArrayModel`]
//! and extracts the Pareto front — the standard memory-DSE workflow of
//! CACTI/NVSim users.

use crate::array::{ArrayConfig, ArrayModel};
use crate::cell::CellKind;
use crate::TechError;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The configuration.
    pub config: ArrayConfig,
    /// Random read latency in ns.
    pub read_latency_ns: f64,
    /// Random write latency in ns.
    pub write_latency_ns: f64,
    /// Standby leakage in mW.
    pub leakage_mw: f64,
    /// Array area in mm².
    pub area_mm2: f64,
}

impl DesignPoint {
    /// Evaluates a configuration through the analytical model.
    pub fn evaluate(config: ArrayConfig) -> Self {
        let model = ArrayModel::new(config);
        DesignPoint {
            config,
            read_latency_ns: model.read_latency_ns(),
            write_latency_ns: model.write_latency_ns(),
            leakage_mw: model.leakage_mw(),
            area_mm2: model.area_mm2(),
        }
    }

    /// Whether `self` dominates `other` (no worse on every objective,
    /// strictly better on at least one) over read latency, leakage and
    /// area.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.read_latency_ns <= other.read_latency_ns
            && self.leakage_mw <= other.leakage_mw
            && self.area_mm2 <= other.area_mm2;
        let better = self.read_latency_ns < other.read_latency_ns
            || self.leakage_mw < other.leakage_mw
            || self.area_mm2 < other.area_mm2;
        no_worse && better
    }
}

/// Sweep specification for [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Capacities in bytes (powers of two).
    pub capacities: Vec<usize>,
    /// Associativities.
    pub associativities: Vec<usize>,
    /// Cell technologies.
    pub cells: Vec<CellKind>,
    /// Line size in bits (fixed across the sweep).
    pub line_bits: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            capacities: vec![16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024],
            associativities: vec![2, 4],
            cells: vec![CellKind::Sram6T, CellKind::SttMram],
            line_bits: 512,
        }
    }
}

/// Evaluates every combination in the sweep.
///
/// # Errors
///
/// Returns the first [`TechError`] produced by an invalid combination
/// (e.g. an associativity that does not divide the line count).
///
/// # Example
///
/// ```
/// use sttcache_tech::{explore, SweepSpec};
///
/// # fn main() -> Result<(), sttcache_tech::TechError> {
/// let points = explore(&SweepSpec::default())?;
/// assert_eq!(points.len(), 4 * 2 * 2);
/// # Ok(())
/// # }
/// ```
pub fn explore(spec: &SweepSpec) -> Result<Vec<DesignPoint>, TechError> {
    let mut points = Vec::new();
    for &capacity in &spec.capacities {
        for &assoc in &spec.associativities {
            for &cell in &spec.cells {
                let cfg = ArrayConfig::builder()
                    .capacity_bytes(capacity)
                    .associativity(assoc)
                    .line_bits(spec.line_bits)
                    .cell(cell)
                    .build()?;
                points.push(DesignPoint::evaluate(cfg));
            }
        }
    }
    Ok(points)
}

/// Extracts the Pareto-optimal subset (read latency × leakage × area) of a
/// set of design points, preserving input order.
///
/// # Example
///
/// ```
/// use sttcache_tech::{explore, pareto_front, SweepSpec};
///
/// # fn main() -> Result<(), sttcache_tech::TechError> {
/// let points = explore(&SweepSpec::default())?;
/// let front = pareto_front(&points);
/// assert!(!front.is_empty());
/// assert!(front.len() <= points.len());
/// # Ok(())
/// # }
/// ```
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    points
        .iter()
        .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_cross_product() {
        let spec = SweepSpec {
            capacities: vec![16 * 1024, 64 * 1024],
            associativities: vec![2],
            cells: vec![CellKind::Sram6T, CellKind::SttMram, CellKind::ReRam],
            line_bits: 512,
        };
        let points = explore(&spec).unwrap();
        assert_eq!(points.len(), 6);
    }

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        let points = explore(&SweepSpec::default()).unwrap();
        for p in &points {
            assert!(!p.dominates(p));
        }
    }

    #[test]
    fn front_members_are_mutually_non_dominating() {
        let points = explore(&SweepSpec::default()).unwrap();
        let front = pareto_front(&points);
        for a in &front {
            for b in &front {
                assert!(!a.dominates(b) || a == b);
            }
        }
    }

    #[test]
    fn every_non_front_point_is_dominated() {
        let points = explore(&SweepSpec::default()).unwrap();
        let front = pareto_front(&points);
        for p in &points {
            if !front.contains(p) {
                assert!(front.iter().any(|f| f.dominates(p)), "{p:?}");
            }
        }
    }

    #[test]
    fn sram_and_stt_both_reach_the_front() {
        // SRAM wins latency, STT-MRAM wins leakage and area: at equal
        // capacity both must survive.
        let spec = SweepSpec {
            capacities: vec![64 * 1024],
            associativities: vec![2],
            cells: vec![CellKind::Sram6T, CellKind::SttMram],
            line_bits: 512,
        };
        let front = pareto_front(&explore(&spec).unwrap());
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn invalid_combinations_error() {
        let spec = SweepSpec {
            capacities: vec![64],
            associativities: vec![2],
            cells: vec![CellKind::Sram6T],
            line_bits: 4096,
        };
        assert!(explore(&spec).is_err());
    }
}

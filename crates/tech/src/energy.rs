//! Energy accounting helpers.
//!
//! The paper defers full power models ("power models have yet to be fully
//! developed though") but claims the NVM's energy advantage; this module is
//! the extension that makes those claims measurable: a per-component dynamic
//! energy breakdown plus a leakage integrator over simulated time.

use crate::{Milliwatts, Picojoules};

/// Accumulated dynamic-energy breakdown for one memory component.
///
/// All quantities are picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy spent on read accesses.
    pub read_pj: Picojoules,
    /// Energy spent on write accesses.
    pub write_pj: Picojoules,
}

impl EnergyBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one read access of the given energy.
    pub fn add_read(&mut self, pj: Picojoules) {
        self.read_pj += pj;
    }

    /// Adds one write access of the given energy.
    pub fn add_write(&mut self, pj: Picojoules) {
        self.write_pj += pj;
    }

    /// Total dynamic energy in pJ.
    pub fn total_pj(&self) -> Picojoules {
        self.read_pj + self.write_pj
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.read_pj += other.read_pj;
        self.write_pj += other.write_pj;
    }
}

/// Integrates leakage power over simulated time for a set of components.
///
/// # Example
///
/// ```
/// use sttcache_tech::LeakageIntegrator;
///
/// let mut leak = LeakageIntegrator::new(1.0); // 1 GHz clock
/// leak.add_component("dl1", 28.35);
/// leak.add_component("l2", 300.0);
/// // 1e6 cycles at 1 GHz = 1 ms; 328.35 mW over 1 ms = 328.35 µJ.
/// let uj = leak.energy_uj(1_000_000);
/// assert!((uj - 328.35).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageIntegrator {
    clock_ghz: f64,
    components: Vec<(String, Milliwatts)>,
}

impl LeakageIntegrator {
    /// Creates an integrator for a platform clocked at `clock_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_ghz` is not strictly positive.
    pub fn new(clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "clock frequency must be positive");
        LeakageIntegrator {
            clock_ghz,
            components: Vec::new(),
        }
    }

    /// Registers a component and its leakage power in mW.
    pub fn add_component(&mut self, name: impl Into<String>, leakage_mw: Milliwatts) {
        self.components.push((name.into(), leakage_mw));
    }

    /// Total registered leakage power in mW.
    pub fn total_mw(&self) -> Milliwatts {
        self.components.iter().map(|(_, mw)| mw).sum()
    }

    /// Leakage energy in microjoules over `cycles` simulated cycles.
    pub fn energy_uj(&self, cycles: u64) -> f64 {
        let seconds = cycles as f64 / (self.clock_ghz * 1e9);
        // mW · s = mJ; convert to µJ.
        self.total_mw() * seconds * 1e3
    }

    /// Per-component leakage energies in µJ over `cycles` cycles.
    pub fn breakdown_uj(&self, cycles: u64) -> Vec<(String, f64)> {
        let seconds = cycles as f64 / (self.clock_ghz * 1e9);
        self.components
            .iter()
            .map(|(name, mw)| (name.clone(), mw * seconds * 1e3))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = EnergyBreakdown::new();
        b.add_read(2.0);
        b.add_read(3.0);
        b.add_write(10.0);
        assert_eq!(b.read_pj, 5.0);
        assert_eq!(b.write_pj, 10.0);
        assert_eq!(b.total_pj(), 15.0);
    }

    #[test]
    fn breakdown_merges() {
        let mut a = EnergyBreakdown {
            read_pj: 1.0,
            write_pj: 2.0,
        };
        let b = EnergyBreakdown {
            read_pj: 10.0,
            write_pj: 20.0,
        };
        a.merge(&b);
        assert_eq!(a.read_pj, 11.0);
        assert_eq!(a.write_pj, 22.0);
    }

    #[test]
    fn leakage_integrates_linearly_in_time() {
        let mut leak = LeakageIntegrator::new(2.0);
        leak.add_component("x", 100.0);
        let e1 = leak.energy_uj(1_000_000);
        let e2 = leak.energy_uj(2_000_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn per_component_breakdown_sums_to_total() {
        let mut leak = LeakageIntegrator::new(1.0);
        leak.add_component("a", 10.0);
        leak.add_component("b", 20.0);
        let parts: f64 = leak.breakdown_uj(500).iter().map(|(_, e)| e).sum();
        assert!((parts - leak.energy_uj(500)).abs() < 1e-12);
    }

    #[test]
    fn empty_integrator_is_zero() {
        let leak = LeakageIntegrator::new(1.0);
        assert_eq!(leak.total_mw(), 0.0);
        assert_eq!(leak.energy_uj(1_000_000), 0.0);
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn zero_clock_panics() {
        let _ = LeakageIntegrator::new(0.0);
    }
}

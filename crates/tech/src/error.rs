//! Error type for technology-model construction.

use std::error::Error;
use std::fmt;

/// Error returned when a technology or array configuration is invalid.
///
/// Produced by [`crate::ArrayConfigBuilder::build`] and the validating
/// constructors in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TechError {
    /// The capacity is zero or not a power of two.
    InvalidCapacity(usize),
    /// The associativity is zero or does not divide the number of lines.
    InvalidAssociativity(usize),
    /// The line size is zero, not a power of two, or larger than the array.
    InvalidLineBits(usize),
    /// The bank count is zero, not a power of two, or exceeds the line count.
    InvalidBanks(usize),
    /// A numeric device parameter was out of its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::InvalidCapacity(c) => {
                write!(f, "capacity {c} bytes is not a non-zero power of two")
            }
            TechError::InvalidAssociativity(a) => {
                write!(f, "associativity {a} is invalid for this array")
            }
            TechError::InvalidLineBits(l) => {
                write!(f, "line size {l} bits is invalid for this array")
            }
            TechError::InvalidBanks(b) => write!(f, "bank count {b} is invalid for this array"),
            TechError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} = {value} is outside its physical range"
                )
            }
        }
    }
}

impl Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            TechError::InvalidCapacity(3).to_string(),
            TechError::InvalidAssociativity(0).to_string(),
            TechError::InvalidLineBits(7).to_string(),
            TechError::InvalidBanks(3).to_string(),
            TechError::InvalidParameter {
                name: "tmr",
                value: -1.0,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("parameter"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}

//! Banked memory-array model.
//!
//! Combines a [`CellModel`] with an array organization (capacity,
//! associativity, line size, banks) and a [`TechNode`] to produce the
//! quantities the system simulator needs: access latency in ns and cycles,
//! dynamic energy per access, leakage power, and silicon area.
//!
//! The shared-periphery delay (decode, word-line, column mux, output drive)
//! is modelled as proportional to the decode depth `log2(bits per bank)`;
//! the constant is calibrated so a single-bank 64 KB array at 32 nm HP
//! reproduces the paper's Table I for both SRAM and STT-MRAM.

use crate::cell::{CellKind, CellModel};
use crate::node::TechNode;
use crate::{Milliwatts, Nanoseconds, Picojoules, SquareMillimetres, TechError};

/// Periphery delay per decode level at the calibration node, in ns.
///
/// Chosen so `K · log2(2^19 bits) = 0.537 ns` for the 64 KB Table I array:
/// `0.537 + 0.250 (SRAM sense) = 0.787 ns` read, `0.537 + 0.236 = 0.773 ns`
/// write, `0.537 + 2.833 (STT sense) = 3.37 ns`, `0.537 + 1.323 = 1.86 ns`.
const PERIPHERY_NS_PER_LEVEL: f64 = 0.537 / 19.0;

/// Periphery leakage per decode level at the calibration node, in mW.
///
/// Chosen so the (leak-free-cell) STT-MRAM 64 KB array dissipates Table I's
/// 28.35 mW: `K · log2(2^19) = 28.35`.
const PERIPHERY_MW_PER_LEVEL: f64 = 28.35 / 19.0;

/// Fixed decode/drive energy per access at the calibration node, in pJ.
const DECODE_PJ: f64 = 5.0;

/// Fraction of the cell-array footprint that is usable storage (the rest is
/// periphery, spine and routing).
const LAYOUT_EFFICIENCY: f64 = 0.7;

/// Validated configuration of a memory array.
///
/// Construct with [`ArrayConfig::builder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfig {
    capacity_bytes: usize,
    associativity: usize,
    line_bits: usize,
    banks: usize,
    cell: CellKind,
    node: TechNode,
}

/// Builder for [`ArrayConfig`].
///
/// Defaults mirror the paper's STT-MRAM DL1: 64 KB, 2-way, 512-bit lines,
/// single bank, STT-MRAM cells, 32 nm HP.
///
/// # Example
///
/// ```
/// use sttcache_tech::{ArrayConfig, CellKind};
///
/// # fn main() -> Result<(), sttcache_tech::TechError> {
/// let cfg = ArrayConfig::builder()
///     .capacity_bytes(32 * 1024)
///     .cell(CellKind::Sram6T)
///     .line_bits(256)
///     .build()?;
/// assert_eq!(cfg.sets(), 32 * 1024 / 32 / 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ArrayConfigBuilder {
    capacity_bytes: usize,
    associativity: usize,
    line_bits: usize,
    banks: usize,
    cell: CellKind,
    node: TechNode,
}

impl Default for ArrayConfigBuilder {
    fn default() -> Self {
        ArrayConfigBuilder {
            capacity_bytes: 64 * 1024,
            associativity: 2,
            line_bits: 512,
            banks: 1,
            cell: CellKind::SttMram,
            node: TechNode::hp_32nm(),
        }
    }
}

impl ArrayConfigBuilder {
    /// Total capacity in bytes (must be a power of two).
    pub fn capacity_bytes(&mut self, bytes: usize) -> &mut Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Set associativity (ways).
    pub fn associativity(&mut self, ways: usize) -> &mut Self {
        self.associativity = ways;
        self
    }

    /// Line size in bits (must be a power of two ≥ 8).
    pub fn line_bits(&mut self, bits: usize) -> &mut Self {
        self.line_bits = bits;
        self
    }

    /// Number of independently accessible banks (power of two).
    pub fn banks(&mut self, banks: usize) -> &mut Self {
        self.banks = banks;
        self
    }

    /// Memory-cell technology.
    pub fn cell(&mut self, cell: CellKind) -> &mut Self {
        self.cell = cell;
        self
    }

    /// Process node.
    pub fn node(&mut self, node: TechNode) -> &mut Self {
        self.node = node;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`TechError`] if the capacity or line size is not a power
    /// of two, the associativity does not divide the line count, or the bank
    /// count exceeds the line count.
    pub fn build(&self) -> Result<ArrayConfig, TechError> {
        let b = *self;
        if b.capacity_bytes == 0 || !b.capacity_bytes.is_power_of_two() {
            return Err(TechError::InvalidCapacity(b.capacity_bytes));
        }
        if b.line_bits < 8 || !b.line_bits.is_power_of_two() {
            return Err(TechError::InvalidLineBits(b.line_bits));
        }
        let total_bits = b.capacity_bytes * 8;
        if b.line_bits > total_bits {
            return Err(TechError::InvalidLineBits(b.line_bits));
        }
        let lines = total_bits / b.line_bits;
        if b.associativity == 0 || !lines.is_multiple_of(b.associativity) {
            return Err(TechError::InvalidAssociativity(b.associativity));
        }
        if b.banks == 0 || !b.banks.is_power_of_two() || b.banks > lines {
            return Err(TechError::InvalidBanks(b.banks));
        }
        Ok(ArrayConfig {
            capacity_bytes: b.capacity_bytes,
            associativity: b.associativity,
            line_bits: b.line_bits,
            banks: b.banks,
            cell: b.cell,
            node: b.node,
        })
    }
}

impl ArrayConfig {
    /// Starts building a configuration.
    pub fn builder() -> ArrayConfigBuilder {
        ArrayConfigBuilder::default()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Set associativity.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Line size in bits.
    pub fn line_bits(&self) -> usize {
        self.line_bits
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bits / 8
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Cell technology.
    pub fn cell(&self) -> CellKind {
        self.cell
    }

    /// Process node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> usize {
        self.capacity_bytes * 8
    }

    /// Number of cache lines.
    pub fn lines(&self) -> usize {
        self.total_bits() / self.line_bits
    }

    /// Number of sets (`lines / associativity`).
    pub fn sets(&self) -> usize {
        self.lines() / self.associativity
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig::builder()
            .build()
            .expect("default array config is valid")
    }
}

/// Physical organization derived from an [`ArrayConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayOrganization {
    /// Word-lines per bank (one line per row in this first-order model).
    pub rows_per_bank: usize,
    /// Bit-lines per bank.
    pub cols_per_bank: usize,
    /// Bank count.
    pub banks: usize,
    /// Decode depth `log2(bits per bank)` used for periphery delay.
    pub decode_levels: u32,
}

/// The analytical array model: latency, energy, leakage and area for a
/// configured memory array.
///
/// # Example
///
/// ```
/// use sttcache_tech::{ArrayConfig, ArrayModel, CellKind};
///
/// # fn main() -> Result<(), sttcache_tech::TechError> {
/// let sram = ArrayModel::new(
///     ArrayConfig::builder().cell(CellKind::Sram6T).line_bits(256).build()?,
/// );
/// // Table I: 64 KB SRAM reads in 0.787 ns.
/// assert!((sram.read_latency_ns() - 0.787).abs() < 1e-3);
/// // At 1 GHz that is a single cycle.
/// assert_eq!(sram.read_cycles(1.0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayModel {
    config: ArrayConfig,
    cell: CellModel,
}

impl ArrayModel {
    /// Builds the model for a configuration using the calibrated cell model
    /// for the configured [`CellKind`].
    pub fn new(config: ArrayConfig) -> Self {
        ArrayModel {
            config,
            cell: CellModel::new(config.cell()),
        }
    }

    /// Builds the model with an explicit (possibly custom) cell model.
    pub fn with_cell(config: ArrayConfig, cell: CellModel) -> Self {
        ArrayModel { config, cell }
    }

    /// The configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// The cell model in use.
    pub fn cell(&self) -> &CellModel {
        &self.cell
    }

    /// Derived physical organization.
    pub fn organization(&self) -> ArrayOrganization {
        let bits_per_bank = self.config.total_bits() / self.config.banks();
        let cols = self.config.line_bits() * self.config.associativity();
        ArrayOrganization {
            rows_per_bank: bits_per_bank / cols,
            cols_per_bank: cols,
            banks: self.config.banks(),
            decode_levels: bits_per_bank.trailing_zeros(),
        }
    }

    fn periphery_ns(&self) -> f64 {
        let levels = self.organization().decode_levels as f64;
        PERIPHERY_NS_PER_LEVEL * levels * self.config.node().delay_scale()
    }

    /// Random-access read latency in nanoseconds.
    pub fn read_latency_ns(&self) -> Nanoseconds {
        self.periphery_ns() + self.cell.parameters().read_ns * self.config.node().delay_scale()
    }

    /// Random-access write latency in nanoseconds.
    pub fn write_latency_ns(&self) -> Nanoseconds {
        self.periphery_ns() + self.cell.parameters().write_ns * self.config.node().delay_scale()
    }

    /// Read latency in whole clock cycles at `clock_ghz` (ceiling, min 1).
    pub fn read_cycles(&self, clock_ghz: f64) -> u64 {
        cycles(self.read_latency_ns(), clock_ghz)
    }

    /// Write latency in whole clock cycles at `clock_ghz` (ceiling, min 1).
    pub fn write_cycles(&self, clock_ghz: f64) -> u64 {
        cycles(self.write_latency_ns(), clock_ghz)
    }

    /// Dynamic energy of reading `bits` from the array, in pJ.
    pub fn read_energy_pj(&self, bits: usize) -> Picojoules {
        let scale = self.config.node().energy_scale();
        (DECODE_PJ + self.cell.parameters().read_pj_per_bit * bits as f64) * scale
    }

    /// Dynamic energy of writing `bits` into the array, in pJ.
    pub fn write_energy_pj(&self, bits: usize) -> Picojoules {
        let scale = self.config.node().energy_scale();
        (DECODE_PJ + self.cell.parameters().write_pj_per_bit * bits as f64) * scale
    }

    /// Standby leakage power of the whole array (cells + periphery), in mW.
    pub fn leakage_mw(&self) -> Milliwatts {
        let node = self.config.node();
        let cell_mw = self.config.total_bits() as f64
            * self.cell.parameters().leakage_nw_per_bit
            * 1e-6
            * node.leakage_scale();
        let periphery_mw = PERIPHERY_MW_PER_LEVEL
            * self.organization().decode_levels as f64
            * node.leakage_scale();
        cell_mw + periphery_mw
    }

    /// Silicon area of the array in mm² (cell matrix over layout
    /// efficiency; periphery is folded into the efficiency factor).
    pub fn area_mm2(&self) -> SquareMillimetres {
        self.config.total_bits() as f64
            * self.cell.parameters().area_f2
            * self.config.node().f2_mm2()
            / LAYOUT_EFFICIENCY
    }

    /// Per-cell area in F², as reported in the paper's Table I.
    pub fn cell_area_f2(&self) -> f64 {
        self.cell.parameters().area_f2
    }
}

fn cycles(latency_ns: f64, clock_ghz: f64) -> u64 {
    assert!(clock_ghz > 0.0, "clock frequency must be positive");
    (latency_ns * clock_ghz).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_sram() -> ArrayModel {
        ArrayModel::new(
            ArrayConfig::builder()
                .cell(CellKind::Sram6T)
                .line_bits(256)
                .build()
                .unwrap(),
        )
    }

    fn table1_stt() -> ArrayModel {
        ArrayModel::new(ArrayConfig::builder().build().unwrap())
    }

    #[test]
    fn table1_sram_latencies() {
        let m = table1_sram();
        assert!(
            (m.read_latency_ns() - 0.787).abs() < 1e-3,
            "{}",
            m.read_latency_ns()
        );
        assert!(
            (m.write_latency_ns() - 0.773).abs() < 1e-3,
            "{}",
            m.write_latency_ns()
        );
    }

    #[test]
    fn table1_stt_latencies() {
        let m = table1_stt();
        assert!(
            (m.read_latency_ns() - 3.37).abs() < 1e-2,
            "{}",
            m.read_latency_ns()
        );
        assert!(
            (m.write_latency_ns() - 1.86).abs() < 1e-2,
            "{}",
            m.write_latency_ns()
        );
    }

    #[test]
    fn table1_stt_leakage() {
        let m = table1_stt();
        assert!((m.leakage_mw() - 28.35).abs() < 1e-6, "{}", m.leakage_mw());
    }

    #[test]
    fn table1_cycles_at_1ghz() {
        // The system simulation uses exactly these: SRAM 1/1, STT 4/2.
        let sram = table1_sram();
        let stt = table1_stt();
        assert_eq!(sram.read_cycles(1.0), 1);
        assert_eq!(sram.write_cycles(1.0), 1);
        assert_eq!(stt.read_cycles(1.0), 4);
        assert_eq!(stt.write_cycles(1.0), 2);
    }

    #[test]
    fn stt_area_is_much_smaller() {
        // Table I: 42 F² vs 146 F² per cell; the paper notes 2-3x more
        // capacity fits in the same footprint.
        let sram = table1_sram();
        let stt = table1_stt();
        assert!(sram.area_mm2() / stt.area_mm2() > 3.0);
        assert_eq!(stt.cell_area_f2(), 42.0);
        assert_eq!(sram.cell_area_f2(), 146.0);
    }

    #[test]
    fn banking_shrinks_periphery_delay() {
        let one = ArrayModel::new(ArrayConfig::builder().banks(1).build().unwrap());
        let four = ArrayModel::new(ArrayConfig::builder().banks(4).build().unwrap());
        assert!(four.read_latency_ns() < one.read_latency_ns());
    }

    #[test]
    fn bigger_array_is_slower() {
        let small = ArrayModel::new(
            ArrayConfig::builder()
                .capacity_bytes(16 * 1024)
                .build()
                .unwrap(),
        );
        let big = ArrayModel::new(
            ArrayConfig::builder()
                .capacity_bytes(256 * 1024)
                .build()
                .unwrap(),
        );
        assert!(big.read_latency_ns() > small.read_latency_ns());
        assert!(big.leakage_mw() > small.leakage_mw());
        assert!(big.area_mm2() > small.area_mm2());
    }

    #[test]
    fn write_energy_exceeds_read_energy_for_stt() {
        let stt = table1_stt();
        assert!(stt.write_energy_pj(512) > stt.read_energy_pj(512));
    }

    #[test]
    fn wider_access_costs_more_energy() {
        let stt = table1_stt();
        assert!(stt.read_energy_pj(1024) > stt.read_energy_pj(32));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ArrayConfig::builder().capacity_bytes(0).build().is_err());
        assert!(ArrayConfig::builder().capacity_bytes(3000).build().is_err());
        assert!(ArrayConfig::builder().line_bits(7).build().is_err());
        assert!(ArrayConfig::builder().line_bits(4).build().is_err());
        assert!(ArrayConfig::builder().associativity(0).build().is_err());
        assert!(ArrayConfig::builder().associativity(3000).build().is_err());
        assert!(ArrayConfig::builder().banks(0).build().is_err());
        assert!(ArrayConfig::builder().banks(3).build().is_err());
        assert!(ArrayConfig::builder()
            .capacity_bytes(64)
            .line_bits(1024)
            .build()
            .is_err());
    }

    #[test]
    fn organization_is_consistent() {
        let m = table1_stt();
        let org = m.organization();
        assert_eq!(
            org.rows_per_bank * org.cols_per_bank * org.banks,
            m.config().total_bits()
        );
        assert_eq!(org.decode_levels, 19);
    }

    #[test]
    fn sets_and_lines() {
        let cfg = ArrayConfig::builder().build().unwrap();
        assert_eq!(cfg.lines(), 64 * 1024 / 64);
        assert_eq!(cfg.sets(), cfg.lines() / 2);
        assert_eq!(cfg.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn zero_clock_panics() {
        let _ = table1_stt().read_cycles(0.0);
    }
}

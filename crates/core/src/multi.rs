//! N-core multi-programmed platforms over a shared banked L2.
//!
//! The paper evaluates its STT-MRAM DL1 on a single core, but every
//! related dense-NVM study (Jadidi et al., HALLS) stresses the shared
//! level: bank conflicts and shared-L2 pressure are where NVM write
//! latency actually bites. [`MultiPlatform`] closes that gap without a
//! coherence protocol — each core runs its *own* kernel on a *private*
//! front-end (any catalog organization), and only the unified L2 and
//! main memory are shared, exactly the multi-programmed (rate-mode)
//! setup those studies use.
//!
//! # Determinism
//!
//! Cores are interleaved by one global rule: **always step the
//! unfinished core with the lowest `(now, index)`**. One event (load,
//! store, prefetch, compute batch or branch) is applied per step, so
//! cores reach the shared L2 in a single, totally ordered cycle
//! sequence and bank reservations resolve identically on every run.
//! The whole multi-core run executes on one thread ([`SharedL2`] is
//! deliberately `!Send`), so a run is one sweep work item and output is
//! byte-identical at any `--jobs` count by construction.
//!
//! With a single core the rule degenerates to "replay the trace in
//! order", which is exactly what [`crate::Platform::run_trace`] does —
//! a 1-core `MultiPlatform` therefore reproduces the single-core
//! platform bit-for-bit (proven in `tests/multicore_equivalence.rs`).

use crate::platform::{DCacheOrganization, Platform, PlatformConfig, RunResult};
use crate::stage::{
    probe_then_fetch, BufferStage, Buffered, StageSpec, StageStats, StageTelemetry,
};
use crate::SttError;
use sttcache_cpu::{Core, CoreConfig, CoreReport, DataPort, Engine, MemPort, Trace, TraceEvent};
use sttcache_mem::{Addr, Cache, CacheConfig, CacheStats, Cycle, MainMemory, MemoryLevel, Shared};

/// The shared tail of a multi-core hierarchy: one banked unified L2
/// over main memory. Every core's private DL1 holds a handle.
pub type SharedL2 = Shared<Cache<MainMemory>>;

/// A core-private DL1 over the shared L2 — the multi-core counterpart
/// of [`crate::Hierarchy`].
pub type McHierarchy = Cache<SharedL2>;

/// Maximum core count a [`MultiPlatform`] accepts.
pub const MAX_CORES: usize = 8;

/// Address-space stride separating the cores of a mix.
///
/// Multi-programmed kernels are separate processes: they must never
/// alias in the shared L2. Every kernel records the same virtual
/// addresses, so the scheduler translates core `i`'s accesses by
/// `i · 2^32`. The stride sits far above every set/bank index bit of
/// any configurable cache, so the translation is invisible to a single
/// core's timing — a 1-core run and the per-core isolated references
/// stay bit-identical to the untranslated trace — while guaranteeing
/// distinct cores share no line (coherence-free by construction).
pub const CORE_ADDRESS_STRIDE: u64 = 1 << 32;

/// Core `idx`'s private image of a trace address (see
/// [`CORE_ADDRESS_STRIDE`]). Oracles auditing a co-scheduled run must
/// apply the same translation to per-core reference address sets.
pub fn core_addr(idx: usize, addr: Addr) -> Addr {
    Addr(addr.0 + idx as u64 * CORE_ADDRESS_STRIDE)
}

/// Per-core DL1 telemetry component names (must be `&'static str`).
const CORE_DL1_COMPONENTS: [&str; MAX_CORES] = [
    "core0.dl1",
    "core1.dl1",
    "core2.dl1",
    "core3.dl1",
    "core4.dl1",
    "core5.dl1",
    "core6.dl1",
    "core7.dl1",
];

/// A core-private front-end over the shared L2 — the multi-core
/// counterpart of [`crate::FrontEnd`], with the same two shapes:
/// direct DL1 access or any [`BufferStage`] composition in front of it.
///
/// Statistics come straight off the private DL1 (the shared L2 sits
/// behind a `RefCell` and cannot be walked with the `levels()`
/// iterator); shared-level statistics belong to the platform, which
/// keeps its own [`SharedL2`] handle.
#[derive(Debug)]
pub enum McFrontEnd {
    /// Direct DL1 access.
    Plain(MemPort<McHierarchy>),
    /// A buffer-stage composition in front of the DL1.
    Buffered(Buffered<Box<dyn BufferStage>, McHierarchy>),
}

impl McFrontEnd {
    /// Wraps a ready-built stage composition around `dl1`.
    pub fn buffered(stage: Box<dyn BufferStage>, dl1: McHierarchy) -> Self {
        McFrontEnd::Buffered(Buffered::compose(stage, dl1))
    }

    /// The private DL1 behind whatever buffer structure this front-end
    /// has.
    fn dl1(&self) -> &McHierarchy {
        match self {
            McFrontEnd::Plain(p) => p.level(),
            McFrontEnd::Buffered(b) => b.below(),
        }
    }

    /// Mutable access to the private DL1.
    fn dl1_mut(&mut self) -> &mut McHierarchy {
        match self {
            McFrontEnd::Plain(p) => p.level_mut(),
            McFrontEnd::Buffered(b) => b.below_mut(),
        }
    }

    /// The private DL1 statistics.
    pub fn dl1_stats(&self) -> &CacheStats {
        self.dl1().stats()
    }

    /// Labelled statistics of every buffer stage, outermost first
    /// (empty for `Plain`).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        match self {
            McFrontEnd::Plain(_) => Vec::new(),
            McFrontEnd::Buffered(b) => {
                let mut out = Vec::new();
                b.stage().collect_stats(&mut out);
                out
            }
        }
    }

    /// Occupancy snapshots of every buffer stage, outermost first
    /// (empty for `Plain`).
    pub fn stage_telemetry(&self) -> Vec<StageTelemetry> {
        match self {
            McFrontEnd::Plain(_) => Vec::new(),
            McFrontEnd::Buffered(b) => {
                let mut out = Vec::new();
                b.stage()
                    .collect_telemetry(b.below().config().line_bytes(), &mut out);
                out
            }
        }
    }

    /// Resets all statistics in the stage, the private DL1 **and the
    /// shared L2 behind it** (`Cache::reset_stats` recurses into its
    /// next level, and the shared level has only one counter set) —
    /// resetting through any one core clears the L2 for every core.
    /// [`MultiPlatform`] never resets mid-run; this exists for the
    /// stage-conformance audit.
    pub fn reset_stats(&mut self) {
        match self {
            McFrontEnd::Plain(p) => p.level_mut().reset_stats(),
            McFrontEnd::Buffered(b) => b.reset_stats(),
        }
    }

    /// Drains the *core-private* dirty state — front buffer stages into
    /// the DL1, then the DL1 into the shared L2. The shared L2 itself is
    /// drained once by the platform (it holds lines from every core), not
    /// per front-end. Returns lines written back and the completion cycle.
    pub fn flush_dirty(&mut self, now: Cycle) -> (usize, Cycle) {
        let (front, done) = match self {
            McFrontEnd::Plain(_) => (0, now),
            McFrontEnd::Buffered(b) => b.flush_dirty(now),
        };
        let (n1, t1) = self.dl1_mut().flush_dirty(done);
        (front + n1, t1)
    }

    /// Dirty state still held in the core-private part (front buffer
    /// entries plus DL1 dirty lines). Zero after a completed
    /// [`flush_dirty`](Self::flush_dirty).
    pub fn dirty_line_count(&self) -> usize {
        let front = match self {
            McFrontEnd::Plain(_) => 0,
            McFrontEnd::Buffered(b) => b.dirty_entries(),
        };
        front + self.dl1().dirty_lines()
    }

    /// Base address and line size of every line resident in the
    /// core-private part (stage entries plus DL1 lines), for phantom-line
    /// verification: a core's private levels must never hold a line the
    /// core itself did not touch.
    pub fn resident_lines(&self) -> Vec<(Addr, usize)> {
        let mut lines: Vec<(Addr, usize)> = Vec::new();
        let dl1_bytes = self.dl1().config().line_bytes();
        if let McFrontEnd::Buffered(b) = self {
            lines.extend(b.resident_lines().into_iter().map(|a| (a, dl1_bytes)));
        }
        lines.extend(
            self.dl1()
                .resident_lines()
                .into_iter()
                .map(|a| (a, dl1_bytes)),
        );
        lines
    }

    /// End-of-run verification of the core-private part, reported
    /// through [`sttcache_mem::invariants`]; the platform audits the
    /// shared L2 separately.
    pub fn check_drained(&self, now: Cycle) {
        let front_dirty = match self {
            McFrontEnd::Plain(_) => 0,
            McFrontEnd::Buffered(b) => {
                b.check_invariants(now);
                b.dirty_entries()
            }
        };
        if front_dirty > 0 {
            sttcache_mem::invariants::report(
                "mc-front-end",
                now,
                None,
                format!("{front_dirty} dirty buffer entries remain after drain"),
            );
        }
        self.dl1().check_drained(now);
    }
}

impl DataPort for McFrontEnd {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            McFrontEnd::Plain(p) => p.read(addr, now),
            McFrontEnd::Buffered(b) => b.read(addr, now),
        }
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            McFrontEnd::Plain(p) => p.write(addr, now),
            McFrontEnd::Buffered(b) => b.write(addr, now),
        }
    }

    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        // Same PLD semantics as the single-core front-end: probe the L1
        // tags, fetch on a miss; promoting stages override
        // `BufferStage::prefetch`.
        match self {
            McFrontEnd::Plain(p) => probe_then_fetch(p.level_mut(), addr, now),
            McFrontEnd::Buffered(b) => b.prefetch(addr, now),
        }
    }
}

/// One core of a [`MultiPlatform`]: which private organization it runs
/// and when it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// The private L1 D-cache organization (any catalog entry).
    pub organization: DCacheOrganization,
    /// Cycle at which this core issues its first event — the staggered
    /// phase offset of a multi-programmed mix.
    pub phase_offset: Cycle,
}

impl CoreSpec {
    /// A core starting at cycle 0.
    pub fn new(organization: DCacheOrganization) -> Self {
        CoreSpec {
            organization,
            phase_offset: 0,
        }
    }

    /// A core starting at `phase_offset`.
    pub fn staggered(organization: DCacheOrganization, phase_offset: Cycle) -> Self {
        CoreSpec {
            organization,
            phase_offset,
        }
    }
}

/// Full multi-core platform configuration. The shared parameters
/// (core microarchitecture, memory latency, clock, geometry overrides)
/// mirror [`PlatformConfig`]; only the organization and phase offset
/// are per-core. Instruction fetch is ideal (the paper never changes
/// the IL1, and the single-core default is the same).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPlatformConfig {
    /// One entry per core, index order = scheduling tie-break order.
    pub cores: Vec<CoreSpec>,
    /// Core parameters (identical for every core).
    pub core: CoreConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Replaces the canonical per-core DL1 geometry/timing when set.
    pub dl1_override: Option<CacheConfig>,
    /// Replaces the canonical shared-L2 geometry/timing when set — the
    /// knob for bank-count sweeps.
    pub l2_override: Option<CacheConfig>,
}

impl MultiPlatformConfig {
    /// The paper's platform parameters around the given cores.
    pub fn new(cores: Vec<CoreSpec>) -> Self {
        MultiPlatformConfig {
            cores,
            core: CoreConfig::default(),
            memory_latency: 100,
            clock_ghz: 1.0,
            dl1_override: None,
            l2_override: None,
        }
    }

    /// `n` identical cores of `organization`, all starting at cycle 0.
    pub fn homogeneous(organization: DCacheOrganization, n: usize) -> Self {
        MultiPlatformConfig::new(vec![CoreSpec::new(organization); n])
    }
}

/// The N-core platform: per-core private front-ends over one shared
/// banked L2 and main memory. Build once, [`MultiPlatform::run_traces`]
/// any number of workload mixes — each run starts from cold caches.
#[derive(Debug, Clone)]
pub struct MultiPlatform {
    config: MultiPlatformConfig,
}

impl MultiPlatform {
    /// Creates a multi-core platform.
    ///
    /// # Errors
    ///
    /// Returns an [`SttError`] if there is no core or more than
    /// [`MAX_CORES`], or if any per-core organization or the shared-L2
    /// configuration is invalid (validated eagerly by building the full
    /// assembly once).
    pub fn new(config: MultiPlatformConfig) -> Result<Self, SttError> {
        if config.cores.is_empty() {
            return Err(SttError::InvalidPlatform {
                reason: "a multi-core platform needs at least one core".into(),
            });
        }
        if config.cores.len() > MAX_CORES {
            return Err(SttError::InvalidPlatform {
                reason: format!(
                    "{} cores requested, but at most {MAX_CORES} are supported",
                    config.cores.len()
                ),
            });
        }
        let p = MultiPlatform { config };
        let l2 = p.build_shared_l2()?;
        for idx in 0..p.config.cores.len() {
            p.build_front_end_for(idx, &l2)?;
            p.core_platform(idx)?; // validates the per-core energy-model config
        }
        Ok(p)
    }

    /// The configuration.
    pub fn config(&self) -> &MultiPlatformConfig {
        &self.config
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.config.cores.len()
    }

    /// The equivalent *single-core* platform configuration for core
    /// `idx` — same organization, overrides and timing parameters over a
    /// private (unshared) L2. Running core `idx`'s trace on this platform
    /// is the "isolated run" every contention measurement compares
    /// against.
    pub fn isolated_config(&self, idx: usize) -> PlatformConfig {
        PlatformConfig {
            organization: self.config.cores[idx].organization,
            core: self.config.core,
            memory_latency: self.config.memory_latency,
            clock_ghz: self.config.clock_ghz,
            dl1_override: self.config.dl1_override,
            l2_override: self.config.l2_override,
            icache: None,
        }
    }

    fn core_platform(&self, idx: usize) -> Result<Platform, SttError> {
        Platform::with_config(self.isolated_config(idx))
    }

    /// Builds the cold shared tail: one banked L2 over main memory.
    fn build_shared_l2(&self) -> Result<SharedL2, SttError> {
        let l2cfg = match self.config.l2_override {
            Some(cfg) => cfg,
            None => crate::l2_config()?,
        };
        let mut tail = Cache::new(l2cfg, MainMemory::new(self.config.memory_latency));
        tail.set_telemetry_component("l2");
        Ok(Shared::new(tail))
    }

    /// Builds core `idx`'s cold private front-end over a handle to the
    /// shared L2.
    fn build_front_end_for(&self, idx: usize, l2: &SharedL2) -> Result<McFrontEnd, SttError> {
        let dl1_cfg = match self.config.dl1_override {
            Some(cfg) => cfg,
            None => match self.config.cores[idx].organization.dl1_technology() {
                crate::DlOneTechnology::Sram => crate::sram_dl1_config()?,
                crate::DlOneTechnology::SttMram => crate::nvm_dl1_config()?,
            },
        };
        let mut dl1 = Cache::new(dl1_cfg, l2.clone());
        dl1.set_telemetry_component(CORE_DL1_COMPONENTS[idx]);
        let line_bits = dl1.config().line_bytes() * 8;
        Ok(match self.config.cores[idx].organization {
            DCacheOrganization::SramBaseline | DCacheOrganization::NvmDropIn => {
                McFrontEnd::Plain(MemPort::new(dl1))
            }
            DCacheOrganization::NvmVwb(cfg) => {
                McFrontEnd::buffered(StageSpec::Vwb(cfg).build(line_bits)?, dl1)
            }
            DCacheOrganization::NvmL0(cfg) => {
                McFrontEnd::buffered(StageSpec::L0(cfg).build(line_bits)?, dl1)
            }
            DCacheOrganization::NvmEmshr(cfg) => {
                McFrontEnd::buffered(StageSpec::Emshr(cfg).build(line_bits)?, dl1)
            }
            DCacheOrganization::NvmStack(spec) => {
                McFrontEnd::buffered(Box::new(spec.build(line_bits)?), dl1)
            }
        })
    }

    /// Replays one recorded trace per core on a cold platform, cores
    /// interleaved by the lowest-`(now, index)` rule (see the module
    /// docs), and collects per-core plus shared statistics.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one trace per core is supplied.
    pub fn run_traces(&self, traces: &[&Trace]) -> MultiRunResult {
        let (reports, ports, l2) = self.execute(traces);
        self.assemble(reports, &ports, &l2)
    }

    /// [`MultiPlatform::run_traces`] followed by a full end-of-run
    /// audit: every front-end is drained into the shared L2, the shared
    /// L2 into memory, `check_drained` runs at every level (reported
    /// through [`sttcache_mem::invariants`] when armed), and the
    /// resident lines of each core's private levels and of the shared L2
    /// are returned for phantom-line verification. The statistics in the
    /// returned [`MultiRunResult`] *include* the drain write-backs.
    pub fn run_traces_audited(&self, traces: &[&Trace]) -> (MultiRunResult, MultiAudit) {
        let (reports, mut ports, l2) = self.execute(traces);
        let mut t = reports.iter().map(|r| r.cycles).max().unwrap_or(0)
            + self
                .config
                .cores
                .iter()
                .map(|c| c.phase_offset)
                .max()
                .unwrap_or(0);
        let mut flushed = 0;
        for fe in &mut ports {
            let (n, done) = fe.flush_dirty(t);
            flushed += n;
            t = done;
        }
        {
            let (n, done) = l2.borrow_mut().flush_dirty(t);
            flushed += n;
            t = done;
        }
        for fe in &ports {
            fe.check_drained(t);
        }
        l2.borrow().check_drained(t);
        let dirty_after_drain = ports
            .iter()
            .map(McFrontEnd::dirty_line_count)
            .sum::<usize>()
            + l2.borrow().dirty_lines();
        let core_resident = ports.iter().map(McFrontEnd::resident_lines).collect();
        let shared_resident = {
            let guard = l2.borrow();
            let line_bytes = guard.config().line_bytes();
            guard
                .resident_lines()
                .into_iter()
                .map(|a| (a, line_bytes))
                .collect()
        };
        let result = self.assemble(reports, &ports, &l2);
        (
            result,
            MultiAudit {
                flushed_lines: flushed,
                dirty_after_drain,
                core_resident,
                shared_resident,
            },
        )
    }

    /// Builds the cold assembly and interleaves the traces to
    /// completion; reports are taken in index order (draining each
    /// core's store buffer deterministically).
    fn execute(&self, traces: &[&Trace]) -> (Vec<CoreReport>, Vec<McFrontEnd>, SharedL2) {
        let n = self.config.cores.len();
        assert_eq!(traces.len(), n, "one trace per core");
        let l2 = self
            .build_shared_l2()
            .expect("configuration was validated eagerly");
        let mut cores: Vec<Core<McFrontEnd>> = (0..n)
            .map(|idx| {
                let fe = self
                    .build_front_end_for(idx, &l2)
                    .expect("configuration was validated eagerly");
                Core::starting_at(self.config.core, fe, self.config.cores[idx].phase_offset)
            })
            .collect();

        let mut pos = vec![0usize; n];
        loop {
            // The unfinished core with the lowest (now, index); ties go
            // to the lower index, so the interleave is a total order.
            let mut pick: Option<usize> = None;
            for (idx, core) in cores.iter().enumerate() {
                if pos[idx] < traces[idx].events().len() {
                    pick = match pick {
                        Some(best) if cores[best].now() <= core.now() => Some(best),
                        _ => Some(idx),
                    };
                }
            }
            let Some(idx) = pick else { break };
            let ev = traces[idx].events()[pos[idx]];
            pos[idx] += 1;
            // Exactly `Trace::replay_into`'s dispatch, one event at a
            // time, with memory addresses relocated into the core's
            // private address-space stripe.
            match ev {
                TraceEvent::Load { addr, bytes } => {
                    cores[idx].load(core_addr(idx, addr), bytes as usize)
                }
                TraceEvent::Store { addr, bytes } => {
                    cores[idx].store(core_addr(idx, addr), bytes as usize)
                }
                TraceEvent::Prefetch { addr } => cores[idx].prefetch(core_addr(idx, addr)),
                TraceEvent::Compute { ops } => cores[idx].compute(ops as u64),
                TraceEvent::Branch { taken } => cores[idx].branch(taken),
            }
        }

        let reports: Vec<CoreReport> = cores.iter_mut().map(Core::report).collect();
        let ports: Vec<McFrontEnd> = cores.into_iter().map(Core::into_port).collect();
        (reports, ports, l2)
    }

    /// Assembles per-core [`RunResult`]s plus the shared totals. Each
    /// core's `l2` and `memory` fields carry the *shared* end-of-run
    /// totals (the same values in every core's result — per-core demand
    /// on the shared level is visible in that core's private DL1
    /// miss/write-back counters).
    fn assemble(
        &self,
        reports: Vec<CoreReport>,
        ports: &[McFrontEnd],
        l2: &SharedL2,
    ) -> MultiRunResult {
        let shared_l2 = l2.stats_snapshot();
        let memory = *l2.borrow().next_level().stats();
        let cores = reports
            .into_iter()
            .zip(ports)
            .enumerate()
            .map(|(idx, (report, fe))| {
                let dl1 = *fe.dl1_stats();
                let buffers = fe.stage_stats();
                let energy = self
                    .core_platform(idx)
                    .expect("configuration was validated eagerly")
                    .energy_report(&report, &dl1, &shared_l2, &buffers);
                RunResult {
                    organization: self.config.cores[idx].organization,
                    core: report,
                    dl1,
                    l2: shared_l2,
                    memory,
                    il1: None,
                    buffers,
                    energy,
                }
            })
            .collect();
        MultiRunResult {
            cores,
            shared_l2,
            memory,
        }
    }
}

/// Everything measured in one multi-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRunResult {
    /// Per-core results, in core-index order. The `l2`/`memory` fields
    /// hold the shared totals (identical across cores).
    pub cores: Vec<RunResult>,
    /// Shared-L2 end-of-run statistics (bank conflicts included).
    pub shared_l2: CacheStats,
    /// Main-memory end-of-run statistics.
    pub memory: CacheStats,
}

impl MultiRunResult {
    /// Sum of per-core cycle counts (each excludes its phase offset) —
    /// the aggregate-work metric the contention sweeps report.
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(RunResult::cycles).sum()
    }
}

/// End-of-run audit from [`MultiPlatform::run_traces_audited`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAudit {
    /// Lines written back by the full drain (stages → DL1s → L2 →
    /// memory).
    pub flushed_lines: usize,
    /// Dirty lines anywhere after the drain — must be zero.
    pub dirty_after_drain: usize,
    /// Per core: base address and line size of every line resident in
    /// that core's *private* levels after the drain.
    pub core_resident: Vec<Vec<(Addr, usize)>>,
    /// Lines resident in the shared L2 after the drain.
    pub shared_resident: Vec<(Addr, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttcache_cpu::TraceRecorder;

    fn stream_trace(base: u64, lines: u64) -> Trace {
        let mut rec = TraceRecorder::new();
        for pass in 0..2 {
            for i in 0..lines {
                rec.load(Addr(base + i * 64), 4);
                rec.compute(2);
                if i % 3 == 0 {
                    rec.store(Addr(base + i * 64), 4);
                }
            }
            rec.branch(pass == 0);
        }
        rec.into_trace()
    }

    fn two_core_platform() -> MultiPlatform {
        MultiPlatform::new(MultiPlatformConfig::new(vec![
            CoreSpec::new(DCacheOrganization::nvm_vwb_default()),
            CoreSpec::staggered(DCacheOrganization::SramBaseline, 100),
        ]))
        .unwrap()
    }

    #[test]
    fn rejects_zero_and_too_many_cores() {
        assert!(MultiPlatform::new(MultiPlatformConfig::new(Vec::new())).is_err());
        let too_many =
            MultiPlatformConfig::homogeneous(DCacheOrganization::SramBaseline, MAX_CORES + 1);
        assert!(MultiPlatform::new(too_many).is_err());
        let ok = MultiPlatformConfig::homogeneous(DCacheOrganization::SramBaseline, MAX_CORES);
        assert!(MultiPlatform::new(ok).is_ok());
    }

    #[test]
    fn two_cores_share_one_l2() {
        let p = two_core_platform();
        let (a, b) = (stream_trace(0, 64), stream_trace(1 << 20, 64));
        let r = p.run_traces(&[&a, &b]);
        assert_eq!(r.cores.len(), 2);
        // Both cores' misses reached the one L2.
        let demand: u64 = r.cores.iter().map(|c| c.dl1.read_misses()).sum();
        assert!(r.shared_l2.reads >= demand);
        assert_eq!(r.cores[0].l2, r.shared_l2);
        assert_eq!(r.cores[1].l2, r.shared_l2);
        assert!(r.cores.iter().all(|c| c.cycles() > 0));
    }

    #[test]
    fn runs_are_reproducible() {
        let p = two_core_platform();
        let (a, b) = (stream_trace(0, 64), stream_trace(1 << 20, 64));
        assert_eq!(p.run_traces(&[&a, &b]), p.run_traces(&[&a, &b]));
    }

    #[test]
    fn contention_costs_cycles() {
        // Same kernel alone vs against a co-runner hammering the same
        // banks: the co-run must not be faster.
        let solo = MultiPlatform::new(MultiPlatformConfig::homogeneous(
            DCacheOrganization::NvmDropIn,
            1,
        ))
        .unwrap();
        let duo = MultiPlatform::new(MultiPlatformConfig::homogeneous(
            DCacheOrganization::NvmDropIn,
            2,
        ))
        .unwrap();
        let t0 = stream_trace(0, 256);
        let t1 = stream_trace(0, 256);
        let alone = solo.run_traces(&[&t0]).cores[0].cycles();
        let contended = duo.run_traces(&[&t0, &t1]).cores[0].cycles();
        assert!(
            contended >= alone,
            "co-run sped core 0 up: {contended} < {alone}"
        );
    }

    #[test]
    fn audited_run_drains_clean() {
        let p = two_core_platform();
        let (a, b) = (stream_trace(0, 64), stream_trace(1 << 20, 64));
        let (r, audit) = p.run_traces_audited(&[&a, &b]);
        assert_eq!(audit.dirty_after_drain, 0);
        assert!(audit.flushed_lines > 0);
        assert_eq!(audit.core_resident.len(), 2);
        // The drain's write-backs are included in the shared stats.
        assert!(r.shared_l2.writes > 0);
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_core_count() {
        let p = two_core_platform();
        let a = stream_trace(0, 8);
        p.run_traces(&[&a]);
    }
}

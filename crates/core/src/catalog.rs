//! The organization catalog.
//!
//! One authoritative enumeration of every evaluated L1 D-cache
//! organization — name, CLI key, constructor, front-buffer capacity and
//! paper-figure provenance — so the platform tests, figure binaries,
//! extension sweeps and the differential fuzzer all walk the same list
//! instead of keeping private hard-coded copies. Adding an organization
//! here (a [`StageSpec`] composition, possibly a [`StackSpec`]) makes it
//! show up everywhere at once, with no front-end or figure-path changes.

use crate::baselines::{EmshrConfig, L0Config};
use crate::platform::DCacheOrganization;
use crate::stage::{StackSpec, StageSpec};
use crate::vwb::VwbConfig;

/// The beyond-paper stacked hybrid: a VWB front (wide-interface read
/// decoupling for DL1 *hits*) over an EMSHR-enhanced DL1 (retained-entry
/// capture of DL1 *misses*) — the two mechanisms target disjoint access
/// classes, so the stack composes them without interference.
pub const HYBRID_STACK: StackSpec = StackSpec {
    name: "NVM + VWB/EMSHR hybrid",
    outer: StageSpec::Vwb(VwbConfig {
        capacity_bits: 2048,
        hit_cycles: 1,
        promotion_cycles: 0,
        model_search_cost: false,
    }),
    inner: StageSpec::Emshr(EmshrConfig {
        capacity_bits: 2048,
        hit_cycles: 1,
    }),
};

/// One catalog row: an organization plus everything the harnesses need
/// to present it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrgEntry {
    /// Human-readable name (identical to
    /// [`DCacheOrganization::name`]).
    pub name: &'static str,
    /// Stable lowercase key for CLI flags (`--org <cli>`).
    pub cli: &'static str,
    /// The organization value to build a platform from.
    pub organization: DCacheOrganization,
    /// Total front-buffer data capacity in bits (0 = none).
    pub capacity_bits: usize,
    /// Where the organization comes from in the paper.
    pub provenance: &'static str,
}

/// Every evaluated organization, SRAM reference first.
pub fn catalog() -> Vec<OrgEntry> {
    let vwb = VwbConfig::default();
    let l0 = L0Config::default();
    let emshr = EmshrConfig::default();
    vec![
        OrgEntry {
            name: "SRAM baseline",
            cli: "sram",
            organization: DCacheOrganization::SramBaseline,
            capacity_bits: 0,
            provenance: "Fig. 1 (100 % reference)",
        },
        OrgEntry {
            name: "NVM drop-in",
            cli: "nvm",
            organization: DCacheOrganization::NvmDropIn,
            capacity_bits: 0,
            provenance: "Fig. 1",
        },
        OrgEntry {
            name: "NVM + VWB",
            cli: "vwb",
            organization: DCacheOrganization::NvmVwb(vwb),
            capacity_bits: vwb.capacity_bits,
            provenance: "Figs. 3-7, 9 (the proposal)",
        },
        OrgEntry {
            name: "NVM + L0",
            cli: "l0",
            organization: DCacheOrganization::NvmL0(l0),
            capacity_bits: l0.capacity_bits,
            provenance: "Fig. 8",
        },
        OrgEntry {
            name: "NVM + EMSHR",
            cli: "emshr",
            organization: DCacheOrganization::NvmEmshr(emshr),
            capacity_bits: emshr.capacity_bits,
            provenance: "Fig. 8",
        },
        OrgEntry {
            name: HYBRID_STACK.name,
            cli: "hybrid",
            organization: DCacheOrganization::NvmStack(HYBRID_STACK),
            capacity_bits: HYBRID_STACK.capacity_bits(),
            provenance: "beyond-paper stage composition",
        },
    ]
}

/// Looks an organization up by its CLI key.
pub fn by_cli(key: &str) -> Option<OrgEntry> {
    catalog().into_iter().find(|e| e.cli == key)
}

/// The catalog as a Markdown table (the README's organization table is
/// generated from this; a test keeps them in sync).
pub fn readme_table() -> String {
    let mut s = String::from(
        "| Organization | CLI key | Front buffer | Provenance |\n\
         |---|---|---|---|\n",
    );
    for e in catalog() {
        let capacity = if e.capacity_bits == 0 {
            "—".to_string()
        } else {
            format!("{} Kbit", e.capacity_bits / 1024)
        };
        s.push_str(&format!(
            "| {} | `{}` | {} | {} |\n",
            e.name, e.cli, capacity, e.provenance
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    #[test]
    fn catalog_is_complete_and_consistent() {
        let entries = catalog();
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[0].organization, DCacheOrganization::SramBaseline);
        for e in &entries {
            assert_eq!(e.name, e.organization.name(), "{}", e.cli);
            // Every entry must construct a valid platform.
            Platform::new(e.organization)
                .unwrap_or_else(|err| panic!("catalog entry {} does not build: {err}", e.cli));
        }
        let mut keys: Vec<&str> = entries.iter().map(|e| e.cli).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), entries.len(), "duplicate CLI keys");
    }

    #[test]
    fn cli_lookup_round_trips() {
        for e in catalog() {
            assert_eq!(by_cli(e.cli).unwrap().organization, e.organization);
        }
        assert!(by_cli("no-such-org").is_none());
    }

    #[test]
    fn hybrid_capacity_sums_both_stages() {
        assert_eq!(HYBRID_STACK.capacity_bits(), 4096);
        assert_eq!(
            DCacheOrganization::nvm_hybrid_default().name(),
            "NVM + VWB/EMSHR hybrid"
        );
    }

    #[test]
    fn readme_organization_table_is_in_sync() {
        let readme = include_str!("../../../README.md");
        for line in readme_table().lines() {
            assert!(
                readme.contains(line),
                "README.md is missing the catalog row:\n{line}\n\
                 regenerate the organization table from \
                 sttcache::catalog::readme_table()"
            );
        }
    }
}

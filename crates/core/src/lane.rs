//! Monomorphic replay lanes.
//!
//! Every per-event access in a generic replay crosses the [`FrontEnd`]
//! enum match plus a `Box<dyn BufferStage>` virtual call. For the
//! catalog's stock organizations the stage type is statically known, so
//! replay can run on a monomorphic port instead — a [`ReplayLane`] is
//! selected once per `(configuration, trace)` pair and the compiler
//! inlines the Plain/VWB/L0/EMSHR hit paths straight into the replay
//! loop. The generic [`FrontEnd`] stays as the fallback for ad-hoc stage
//! stacks and as the correctness referee the lane-equivalence battery
//! replays against: a lane must be byte-identical to the generic path on
//! every trace, by construction (same stage and hierarchy code, only the
//! dispatch layer differs).

use crate::baselines::{EmshrStage, L0Stage};
use crate::front_end::FrontEnd;
use crate::stage::{probe_then_fetch, BufferStage, Buffered, StageStats};
use crate::vwb::VwbStage;
use crate::Hierarchy;
use sttcache_cpu::{CompiledTrace, Core, DataPort, MemPort, Trace};
use sttcache_mem::{Addr, CacheStats, Cycle, DecodedAddr, MemoryLevel};

/// Which dispatch [`crate::Platform::run_trace`] and
/// [`crate::Platform::run_compiled`] replay through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneMode {
    /// The monomorphic lane when the organization has one, the generic
    /// path otherwise (the default).
    Auto,
    /// Always the generic [`FrontEnd`] path — the correctness referee the
    /// equivalence battery compares lanes against.
    Generic,
}

impl LaneMode {
    /// Reads `STTCACHE_REPLAY_LANE`: `off`, `0` or `generic` force the
    /// generic path; anything else (including unset) selects
    /// [`LaneMode::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("STTCACHE_REPLAY_LANE") {
            Ok(v) if matches!(v.as_str(), "off" | "0" | "generic") => LaneMode::Generic,
            _ => LaneMode::Auto,
        }
    }
}

/// The statistics surface the platform reads off a port after a run,
/// over and above [`DataPort`] — what lets the run loop stay generic
/// over monomorphic lanes and the [`FrontEnd`] fallback alike.
pub trait LanePort: DataPort {
    /// DL1 statistics.
    fn dl1_stats(&self) -> &CacheStats;
    /// L2 statistics.
    fn l2_stats(&self) -> &CacheStats;
    /// Main-memory statistics.
    fn memory_stats(&self) -> &CacheStats;
    /// Labelled statistics of every buffer stage, outermost first.
    fn stage_stats(&self) -> Vec<StageStats>;
}

impl LanePort for FrontEnd {
    fn dl1_stats(&self) -> &CacheStats {
        FrontEnd::dl1_stats(self)
    }

    fn l2_stats(&self) -> &CacheStats {
        FrontEnd::l2_stats(self)
    }

    fn memory_stats(&self) -> &CacheStats {
        FrontEnd::memory_stats(self)
    }

    fn stage_stats(&self) -> Vec<StageStats> {
        FrontEnd::stage_stats(self)
    }
}

/// The monomorphic lane for the plain organizations: a [`MemPort`] over
/// the concrete hierarchy plus the probe-then-fetch prefetch policy
/// `FrontEnd::Plain` applies (a bare [`MemPort`] drops hints).
#[derive(Debug, Clone)]
pub struct PlainLane(MemPort<Hierarchy>);

impl PlainLane {
    /// Wraps the concrete hierarchy.
    pub fn new(dl1: Hierarchy) -> Self {
        PlainLane(MemPort::new(dl1))
    }
}

impl DataPort for PlainLane {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.0.read(addr, now)
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.0.write(addr, now)
    }

    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        probe_then_fetch(self.0.level_mut(), addr, now);
    }

    fn read_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        self.0.read_pre(d, now)
    }

    fn write_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        self.0.write_pre(d, now)
    }
}

impl LanePort for PlainLane {
    fn dl1_stats(&self) -> &CacheStats {
        self.0.level().stats()
    }

    fn l2_stats(&self) -> &CacheStats {
        self.0.level().next_level().stats()
    }

    fn memory_stats(&self) -> &CacheStats {
        self.0.level().next_level().next_level().stats()
    }

    fn stage_stats(&self) -> Vec<StageStats> {
        Vec::new()
    }
}

impl<S: BufferStage> LanePort for Buffered<S, Hierarchy> {
    fn dl1_stats(&self) -> &CacheStats {
        self.below().stats()
    }

    fn l2_stats(&self) -> &CacheStats {
        self.below().next_level().stats()
    }

    fn memory_stats(&self) -> &CacheStats {
        self.below().next_level().next_level().stats()
    }

    fn stage_stats(&self) -> Vec<StageStats> {
        let mut out = Vec::new();
        self.stage().collect_stats(&mut out);
        out
    }
}

/// A replay port built once per `(configuration, trace)` pair: one
/// monomorphic variant per stock organization, with the generic
/// [`FrontEnd`] as the fallback for ad-hoc stage stacks and as the
/// referee.
#[derive(Debug)]
pub enum ReplayLane {
    /// Direct DL1 access (SRAM baseline, NVM drop-in).
    Plain(PlainLane),
    /// The VWB proposal.
    Vwb(Buffered<VwbStage, Hierarchy>),
    /// The L0-cache baseline.
    L0(Buffered<L0Stage, Hierarchy>),
    /// The enhanced-MSHR baseline.
    Emshr(Buffered<EmshrStage, Hierarchy>),
    /// The generic dynamic-dispatch path.
    Generic(FrontEnd),
}

impl ReplayLane {
    /// Short stable lane identifier (diagnostics and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            ReplayLane::Plain(_) => "plain",
            ReplayLane::Vwb(_) => "vwb",
            ReplayLane::L0(_) => "l0",
            ReplayLane::Emshr(_) => "emshr",
            ReplayLane::Generic(_) => "generic",
        }
    }
}

/// Pushes one recorded event stream into a core. Generic over the port
/// type, so one driver replays through every [`ReplayLane`] variant —
/// rank-2 polymorphism a plain closure cannot express.
pub(crate) trait LaneDriver {
    fn drive<P: DataPort>(&self, core: &mut Core<P>);
}

/// Replays an interpreted [`Trace`].
pub(crate) struct TraceDriver<'a>(pub &'a Trace);

impl LaneDriver for TraceDriver<'_> {
    fn drive<P: DataPort>(&self, core: &mut Core<P>) {
        self.0.replay_into(core);
    }
}

/// Replays a [`CompiledTrace`] through the pre-decoded entry points.
pub(crate) struct CompiledDriver<'a>(pub &'a CompiledTrace);

impl LaneDriver for CompiledDriver<'_> {
    fn drive<P: DataPort>(&self, core: &mut Core<P>) {
        self.0.replay_into_core(core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mode_env_parsing() {
        // Only the value spelling matters here, not the process env (the
        // figures CLI documents the variable; tests must not mutate
        // global env in a threaded harness).
        assert_eq!(LaneMode::from_env(), LaneMode::Auto);
    }

    #[test]
    fn plain_lane_matches_plain_front_end() {
        use sttcache_mem::{Cache, MainMemory};
        let build = || {
            let mut tail = Cache::new(crate::l2_config().unwrap(), MainMemory::new(100));
            tail.set_telemetry_component("l2");
            let mut dl1 = Cache::new(crate::nvm_dl1_config().unwrap(), tail);
            dl1.set_telemetry_component("dl1");
            dl1
        };
        let mut lane = PlainLane::new(build());
        let mut fe = FrontEnd::Plain(MemPort::new(build()));
        let mut t = 0;
        for i in 0..24u64 {
            let a = Addr((i % 6) * 64);
            let (l, g) = match i % 3 {
                0 => (lane.read(a, t), fe.read(a, t)),
                1 => (lane.write(a, t), fe.write(a, t)),
                _ => {
                    lane.prefetch(a, t);
                    fe.prefetch(a, t);
                    (t, t)
                }
            };
            assert_eq!(l, g, "plain lane diverged at event {i}");
            t = l + 3;
        }
        assert_eq!(lane.dl1_stats(), LanePort::dl1_stats(&fe));
        assert_eq!(lane.l2_stats(), LanePort::l2_stats(&fe));
        assert_eq!(lane.memory_stats(), LanePort::memory_stats(&fe));
        assert!(lane.stage_stats().is_empty());
    }
}

//! The Very Wide Buffer (paper §IV).
//!
//! The VWB is a small, fully associative, single-ported register-file-like
//! structure between the datapath and the STT-MRAM DL1. Its interface is
//! asymmetric: **wide toward the memory** (a whole cache line transfers in
//! one promotion — the A9-class array already reads out a full line, so no
//! extra circuitry is needed) and **narrow toward the datapath** (a
//! post-decode MUX selects the word). VWB hits therefore decouple reads
//! from the long NVM sensing latency.
//!
//! ## Policies (verbatim from the paper)
//!
//! *Load*: "The VWB is always checked for the data first … On encountering
//! a miss, the NVM DL1 is checked. If the data is present, then it is read
//! from the NVM DL1 and also written into the VWB always. The evicted data
//! from the VWB is stored in the NVM DL1. If the data is not present in the
//! NVM DL1 also, then the miss is served from the next cache level, and the
//! cache line … is then transferred into the processor and the VWB."
//!
//! *Store*: "The data block in the DL1 is only updated via the VWB if it's
//! already present in it. Otherwise, it's directly updated via the
//! processor … we follow the write allocate policy for the data cache array
//! and a non allocate policy for the VWB."
//!
//! ## Timing
//!
//! A promotion "may take as long as 4 cache cycles" because it *is* the
//! 4-cycle wide NVM read: the A9-class array drives the full line, so the
//! transfer rides the demand access and a concurrent access to the same
//! bank stalls behind it (different banks proceed). A narrower fill port
//! can be modelled with [`VwbConfig::promotion_cycles`], which holds the
//! bank for extra cycles past the critical word (ablation knob).

use crate::buffer::FaBuffer;
use crate::stage::{BufferStage, BufferStats, Buffered, StageTelemetry};
use crate::SttError;
use sttcache_mem::{telemetry, AccessOutcome, Addr, Cache, Cycle, MemoryLevel, ServedBy};

/// VWB configuration.
///
/// # Example
///
/// ```
/// use sttcache::VwbConfig;
///
/// let cfg = VwbConfig::default();
/// assert_eq!(cfg.capacity_bits, 2048); // the paper's 2 Kbit
/// assert_eq!(cfg.entries(512), 4);     // four 512-bit lines
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VwbConfig {
    /// Total VWB capacity in bits (the paper sweeps 1/2/4 Kbit in Fig. 7).
    pub capacity_bits: usize,
    /// Datapath-side hit latency in cycles (register-file speed).
    pub hit_cycles: u64,
    /// Extra cycles the source bank stays busy *after* the promoting
    /// read has completed.
    ///
    /// The wide transfer happens concurrently with the array read (the
    /// A9-class array already drives the full line), so the default is 0:
    /// the promotion "takes as long as 4 cache cycles" because the NVM
    /// read does. Non-zero values model a narrower VWB fill port and are
    /// swept by the ablation bench.
    pub promotion_cycles: u64,
    /// Models the cost of the fully associative search growing with the
    /// entry count ("a fully associative search also becomes a big problem
    /// with the increase in size of the VWB", §VI): when set, the hit
    /// latency becomes `hit_cycles + entries / 8`. Off by default (the
    /// paper's 2-4 Kbit sizes search in one cycle).
    pub model_search_cost: bool,
}

impl Default for VwbConfig {
    fn default() -> Self {
        VwbConfig {
            capacity_bits: 2048,
            hit_cycles: 1,
            promotion_cycles: 0,
            model_search_cost: false,
        }
    }
}

impl VwbConfig {
    /// Number of line entries for a DL1 line of `line_bits`.
    pub fn entries(&self, line_bits: usize) -> usize {
        self.capacity_bits / line_bits
    }

    /// The effective hit latency for a DL1 line of `line_bits`, including
    /// the associative-search cost when modelled.
    pub fn effective_hit_cycles(&self, line_bits: usize) -> u64 {
        if self.model_search_cost {
            self.hit_cycles + self.entries(line_bits) as u64 / 8
        } else {
            self.hit_cycles
        }
    }

    /// Validates against the DL1 line size.
    ///
    /// # Errors
    ///
    /// Returns [`SttError::InvalidBuffer`] when the VWB cannot hold even
    /// one DL1 line or the hit latency is zero.
    pub fn validate(&self, line_bits: usize) -> Result<(), SttError> {
        if self.entries(line_bits) == 0 {
            return Err(SttError::InvalidBuffer {
                structure: "vwb",
                reason: format!(
                    "capacity {} bits holds no {}-bit line",
                    self.capacity_bits, line_bits
                ),
            });
        }
        if self.hit_cycles == 0 {
            return Err(SttError::InvalidBuffer {
                structure: "vwb",
                reason: "hit latency must be at least one cycle".into(),
            });
        }
        Ok(())
    }
}

/// The VWB as a composable [`BufferStage`]: serves the datapath at
/// register speed and promotes lines out of whatever [`MemoryLevel`]
/// backs it.
#[derive(Debug, Clone)]
pub struct VwbStage {
    pub(crate) config: VwbConfig,
    pub(crate) buffer: FaBuffer,
    pub(crate) stats: BufferStats,
    hit_cycles: u64,
    /// Cached DL1 line size (fixed at construction) so the per-access
    /// line decode skips the virtual `below.line_bytes()` call.
    line_bytes: usize,
    /// Length of the current run of consecutive stores absorbed by the
    /// buffer. Only maintained while the telemetry gate is armed (it
    /// feeds the coalescing-run histogram and nothing else, so disarmed
    /// runs skip even the bookkeeping).
    coalesce_run: u64,
}

impl VwbStage {
    /// Creates the stage for a DL1 line of `line_bits`.
    ///
    /// # Errors
    ///
    /// Returns [`SttError::InvalidBuffer`] if the configuration fails
    /// [`VwbConfig::validate`] for the line size.
    pub fn new(config: VwbConfig, line_bits: usize) -> Result<Self, SttError> {
        config.validate(line_bits)?;
        Ok(VwbStage {
            buffer: FaBuffer::new(config.entries(line_bits)),
            hit_cycles: config.effective_hit_cycles(line_bits),
            config,
            stats: BufferStats::default(),
            coalesce_run: 0,
            line_bytes: line_bits / 8,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &VwbConfig {
        &self.config
    }

    /// Promotes the line containing `addr`: demand-reads it from the
    /// backing level, installs it into the VWB, handles the dirty eviction
    /// and models the wide transfer's bank occupancy. Returns the backing
    /// level's outcome (critical-word availability).
    fn promote(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        let line_bytes = self.line_bytes;
        let line = addr.line(line_bytes);
        let out = below.read(addr, now);
        self.stats.fills += 1;
        // The wide transfer holds the bank after the critical word.
        below.occupy_bank(addr, out.complete_at, self.config.promotion_cycles);
        if let Some(evicted) = self
            .buffer
            .insert(line, out.complete_at, out.complete_at, false)
        {
            if evicted.dirty {
                // "The evicted data from the VWB is stored in the NVM DL1."
                // The write-back proceeds in the background; it contends for
                // banks but does not block the requester.
                self.stats.dirty_evictions += 1;
                let base = evicted.line.base(line_bytes);
                let _ = below.write(base, out.complete_at);
            }
        }
        if sttcache_mem::invariants::enabled() {
            self.check_invariants(out.complete_at);
        }
        if telemetry::enabled() {
            use std::sync::OnceLock;
            static DEPTH_HIST: OnceLock<telemetry::Slot> = OnceLock::new();
            static DEPTH_SERIES: OnceLock<telemetry::Slot> = OnceLock::new();
            let depth = self.buffer.len() as u64;
            DEPTH_HIST
                .get_or_init(|| telemetry::Slot::histogram("vwb", "depth"))
                .observe(depth);
            DEPTH_SERIES
                .get_or_init(|| telemetry::Slot::series("vwb", "depth"))
                .sample(out.complete_at, depth);
        }
        out
    }
}

impl BufferStage for VwbStage {
    fn kind(&self) -> &'static str {
        "vwb"
    }

    fn read(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        self.stats.reads += 1;
        let line = addr.line(self.line_bytes);
        if let Some(idx) = self.buffer.find(line) {
            // VWB hit: register-file latency once the data has landed.
            self.stats.read_hits += 1;
            let ready = self.buffer.entry(idx).ready_at.max(now);
            self.buffer.touch(idx, ready, false);
            return AccessOutcome {
                complete_at: ready + self.hit_cycles,
                served_by: ServedBy::ThisLevel,
            };
        }
        self.promote(below, addr, now)
    }

    fn write(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        self.stats.writes += 1;
        let line = addr.line(self.line_bytes);
        if let Some(idx) = self.buffer.find(line) {
            // Present in the VWB: update it there (write-back to the DL1
            // happens on eviction).
            self.stats.write_hits += 1;
            let ready = self.buffer.entry(idx).ready_at.max(now);
            self.buffer.touch(idx, ready, true);
            if telemetry::enabled() {
                self.coalesce_run += 1;
            }
            return AccessOutcome {
                complete_at: ready + self.hit_cycles,
                served_by: ServedBy::ThisLevel,
            };
        }
        // "Otherwise, it's directly updated via the processor": write
        // straight into the DL1 (write-allocate there, no VWB allocation).
        if telemetry::enabled() && self.coalesce_run > 0 {
            use std::sync::OnceLock;
            static RUN_HIST: OnceLock<telemetry::Slot> = OnceLock::new();
            // A write miss ends the current run of buffer-absorbed stores.
            RUN_HIST
                .get_or_init(|| telemetry::Slot::histogram("vwb", "coalesce_run"))
                .observe(self.coalesce_run);
            self.coalesce_run = 0;
        }
        below.write(addr, now)
    }

    fn prefetch(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) {
        let line = addr.line(self.line_bytes);
        if self.buffer.find(line).is_some() {
            self.stats.prefetch_drops += 1;
            return;
        }
        self.stats.prefetch_fills += 1;
        let _ = self.promote(below, addr, now);
    }

    fn contains(&self, addr: Addr, line_bytes: usize) -> bool {
        self.buffer.find(addr.line(line_bytes)).is_some()
    }

    fn flush_dirty(&mut self, below: &mut dyn MemoryLevel, now: Cycle) -> (usize, Cycle) {
        let line_bytes = below.line_bytes();
        let dirty: Vec<sttcache_mem::LineAddr> = self
            .buffer
            .iter()
            .filter(|e| e.dirty)
            .map(|e| e.line)
            .collect();
        let mut done = now;
        for line in &dirty {
            done = below.write(line.base(line_bytes), done).complete_at;
            self.buffer.clean(*line);
        }
        if sttcache_mem::invariants::enabled() {
            self.check_invariants(done);
            if done < now {
                sttcache_mem::invariants::report(
                    "vwb",
                    now,
                    None,
                    format!("flush_dirty completed in the past (at {done})"),
                );
            }
            if let Some(stale) = self.buffer.iter().find(|e| e.dirty) {
                sttcache_mem::invariants::report(
                    "vwb",
                    done,
                    Some(stale.line.0),
                    "stale dirty entry after flush_dirty".into(),
                );
            }
        }
        (dirty.len(), done)
    }

    fn dirty_entries(&self) -> usize {
        self.buffer.iter().filter(|e| e.dirty).count()
    }

    fn resident_lines(&self, line_bytes: usize) -> Vec<Addr> {
        self.buffer
            .iter()
            .map(|e| e.line.base(line_bytes))
            .collect()
    }

    fn check_invariants(&self, now: Cycle) {
        if self.buffer.len() > self.buffer.capacity() {
            sttcache_mem::invariants::report(
                "vwb",
                now,
                None,
                format!(
                    "{} entries exceed capacity {}",
                    self.buffer.len(),
                    self.buffer.capacity()
                ),
            );
        }
    }

    fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    fn stats(&self) -> BufferStats {
        self.stats
    }

    fn collect_telemetry(&self, _line_bytes: usize, out: &mut Vec<StageTelemetry>) {
        out.push(StageTelemetry {
            kind: self.kind(),
            resident: self.buffer.len(),
            dirty: self.dirty_entries(),
            capacity: self.buffer.capacity(),
        });
    }

    fn boxed_clone(&self) -> Box<dyn BufferStage> {
        Box::new(self.clone())
    }
}

/// The VWB front-end over an NVM DL1: a [`VwbStage`] composed with a
/// [`Cache`] via [`Buffered`].
///
/// Implements [`DataPort`](sttcache_cpu::DataPort), so it slots directly
/// under a [`sttcache_cpu::Core`]. Generic over the DL1's next level `N`.
///
/// # Example
///
/// ```
/// use sttcache::{nvm_dl1_config, VwbConfig, VwbFrontEnd};
/// use sttcache_cpu::DataPort;
/// use sttcache_mem::{Addr, Cache, MainMemory};
///
/// # fn main() -> Result<(), sttcache::SttError> {
/// let dl1 = Cache::new(nvm_dl1_config()?.clone(), MainMemory::new(100));
/// let mut vwb = VwbFrontEnd::new(VwbConfig::default(), dl1)?;
/// let t0 = vwb.read(Addr(0), 0);     // cold miss, promoted
/// let t1 = vwb.read(Addr(8), t0);    // VWB hit: 1 cycle
/// assert_eq!(t1, t0 + 1);
/// # Ok(())
/// # }
/// ```
pub type VwbFrontEnd<N> = Buffered<VwbStage, Cache<N>>;

impl<N: MemoryLevel> VwbFrontEnd<N> {
    /// Creates a VWB in front of `dl1`.
    ///
    /// # Errors
    ///
    /// Returns [`SttError::InvalidBuffer`] if the configuration fails
    /// [`VwbConfig::validate`] for the DL1's line size.
    pub fn new(config: VwbConfig, dl1: Cache<N>) -> Result<Self, SttError> {
        let line_bits = dl1.config().line_bytes() * 8;
        Ok(Buffered::compose(VwbStage::new(config, line_bits)?, dl1))
    }

    /// The configuration.
    pub fn config(&self) -> &VwbConfig {
        &self.stage().config
    }

    /// VWB statistics.
    pub fn stats(&self) -> &BufferStats {
        &self.stage().stats
    }

    /// The DL1 behind the VWB.
    pub fn dl1(&self) -> &Cache<N> {
        self.below()
    }

    /// Mutable access to the DL1.
    pub fn dl1_mut(&mut self) -> &mut Cache<N> {
        self.below_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvm_dl1_config;
    use sttcache_cpu::DataPort;
    use sttcache_mem::MainMemory;

    fn vwb() -> VwbFrontEnd<MainMemory> {
        let dl1 = Cache::new(nvm_dl1_config().unwrap(), MainMemory::new(100));
        VwbFrontEnd::new(VwbConfig::default(), dl1).unwrap()
    }

    #[test]
    fn default_config_has_four_entries() {
        let fe = vwb();
        assert_eq!(fe.stage().buffer.capacity(), 4);
    }

    #[test]
    fn vwb_hit_is_one_cycle() {
        let mut fe = vwb();
        let t = fe.read(Addr(0), 0);
        // Same line, different word: VWB hit.
        let t2 = fe.read(Addr(32), t);
        assert_eq!(t2, t + 1);
        assert_eq!(fe.stats().read_hits, 1);
    }

    #[test]
    fn nvm_hit_promotion_costs_the_nvm_read() {
        let mut fe = vwb();
        // Warm DL1 with lines 0..8 to push line 0 out of the VWB (4
        // entries) but keep it in the DL1.
        let mut t = 0;
        for i in 0..8u64 {
            t = fe.read(Addr(i * 64), t) + 10;
        }
        assert!(!fe.contains(Addr(0)));
        assert!(fe.dl1().contains(Addr(0)));
        // Re-reading line 0: VWB miss, NVM hit: 4 cycles.
        let done = fe.read(Addr(0), t);
        assert_eq!(done, t + 4);
        assert!(fe.contains(Addr(0)));
    }

    #[test]
    fn promotion_extra_occupancy_is_modelled_when_configured() {
        let dl1 = Cache::new(nvm_dl1_config().unwrap(), MainMemory::new(100));
        let mut fe = VwbFrontEnd::new(
            VwbConfig {
                promotion_cycles: 4,
                ..VwbConfig::default()
            },
            dl1,
        )
        .unwrap();
        let mut t = 0;
        for i in 0..8u64 {
            t = fe.read(Addr(i * 64), t) + 10;
        }
        // Promote line 0 (bank 0): with a narrow fill port the bank stays
        // busy 4 cycles past the critical word.
        let done = fe.read(Addr(0), t);
        assert!(fe.dl1().bank_free_at(Addr(0)) >= done + 4);
    }

    #[test]
    fn default_promotion_is_concurrent_with_the_read() {
        let mut fe = vwb();
        let mut t = 0;
        for i in 0..8u64 {
            t = fe.read(Addr(i * 64), t) + 10;
        }
        let done = fe.read(Addr(0), t);
        // The wide transfer rides the read: no extra bank time.
        assert!(fe.dl1().bank_free_at(Addr(0)) <= done);
    }

    #[test]
    fn store_hit_in_vwb_does_not_touch_dl1() {
        let mut fe = vwb();
        let t = fe.read(Addr(0), 0);
        let dl1_writes = fe.dl1().stats().writes;
        let t2 = fe.write(Addr(8), t);
        assert_eq!(t2, t + 1);
        assert_eq!(fe.dl1().stats().writes, dl1_writes);
        assert_eq!(fe.stats().write_hits, 1);
    }

    #[test]
    fn store_miss_goes_directly_to_dl1_without_vwb_allocation() {
        let mut fe = vwb();
        let t = fe.write(Addr(0x10000), 0);
        assert!(t > 0);
        assert!(!fe.contains(Addr(0x10000)));
        assert!(fe.dl1().contains(Addr(0x10000))); // write-allocate in DL1
        assert_eq!(fe.stats().write_hits, 0);
    }

    #[test]
    fn dirty_eviction_writes_back_to_dl1() {
        let mut fe = vwb();
        let t = fe.read(Addr(0), 0);
        fe.write(Addr(0), t + 5); // dirty the VWB line
        let before = fe.dl1().stats().writes;
        // Evict line 0 by promoting 4 more lines.
        let mut t2 = t + 50;
        for i in 1..=4u64 {
            t2 = fe.read(Addr(i * 64), t2) + 10;
        }
        assert_eq!(fe.stats().dirty_evictions, 1);
        assert_eq!(fe.dl1().stats().writes, before + 1);
    }

    #[test]
    fn prefetch_fills_without_blocking() {
        let mut fe = vwb();
        fe.prefetch(Addr(0x2000), 0);
        assert!(fe.contains(Addr(0x2000)));
        assert_eq!(fe.stats().prefetch_fills, 1);
        // A second hint for the same line is dropped.
        fe.prefetch(Addr(0x2000), 1);
        assert_eq!(fe.stats().prefetch_drops, 1);
        // A later read hits in the VWB once the fill has landed.
        let t = fe.read(Addr(0x2000), 500);
        assert_eq!(t, 501);
    }

    #[test]
    fn read_before_prefetch_lands_waits_for_the_fill() {
        let mut fe = vwb();
        fe.prefetch(Addr(0x2000), 0);
        // Cold fill takes ~104+ cycles; read issued at cycle 1 waits.
        let t = fe.read(Addr(0x2000), 1);
        assert!(t > 100);
        assert_eq!(fe.stats().read_hits, 1);
    }

    #[test]
    fn smaller_vwb_has_fewer_entries() {
        let dl1 = Cache::new(nvm_dl1_config().unwrap(), MainMemory::new(100));
        let fe = VwbFrontEnd::new(
            VwbConfig {
                capacity_bits: 1024,
                ..VwbConfig::default()
            },
            dl1,
        )
        .unwrap();
        assert_eq!(fe.stage().buffer.capacity(), 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let dl1 = Cache::new(nvm_dl1_config().unwrap(), MainMemory::new(100));
        assert!(VwbFrontEnd::new(
            VwbConfig {
                capacity_bits: 256,
                ..VwbConfig::default()
            },
            dl1.clone(),
        )
        .is_err());
        assert!(VwbFrontEnd::new(
            VwbConfig {
                hit_cycles: 0,
                ..VwbConfig::default()
            },
            dl1,
        )
        .is_err());
    }

    #[test]
    fn search_cost_scales_with_entries() {
        // A 16 Kbit VWB (32 entries) with modelled search cost hits in
        // 1 + 32/8 = 5 cycles.
        let dl1 = Cache::new(nvm_dl1_config().unwrap(), MainMemory::new(100));
        let cfg = VwbConfig {
            capacity_bits: 16 * 1024,
            model_search_cost: true,
            ..VwbConfig::default()
        };
        assert_eq!(cfg.effective_hit_cycles(512), 5);
        let mut fe = VwbFrontEnd::new(cfg, dl1).unwrap();
        let t = fe.read(Addr(0), 0);
        assert_eq!(fe.read(Addr(8), t + 10), t + 10 + 5);
        // The paper's 2 Kbit buffer still searches in one cycle.
        assert_eq!(
            VwbConfig {
                model_search_cost: true,
                ..VwbConfig::default()
            }
            .effective_hit_cycles(512),
            1
        );
    }

    #[test]
    fn hit_rate_metric() {
        let mut fe = vwb();
        let t = fe.read(Addr(0), 0);
        fe.read(Addr(8), t);
        fe.read(Addr(16), t + 10);
        assert!((fe.stats().read_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! # sttcache — an STT-MRAM L1 data-cache exploration platform
//!
//! A from-scratch Rust reproduction of *"System level exploration of a
//! STT-MRAM based Level 1 Data-Cache"* (Komalan, Tenllado, Gómez, Tirado,
//! Catthoor — DATE 2015).
//!
//! The paper replaces the SRAM L1 D-cache of a 1 GHz ARM Cortex-A9-like
//! core with an STT-MRAM array (4× read / 2× write latency, Table I) and
//! shows that a small, fully associative, *wide-interfaced* buffer — the
//! **Very Wide Buffer (VWB)** — plus code transformations (vectorization,
//! prefetching, alignment/branch intrinsics) reduces the drop-in penalty
//! from ≈54 % to ≈8 %.
//!
//! This crate provides:
//!
//! * [`VwbFrontEnd`] — the paper's §IV organization, with its exact load
//!   and store policies, banked-promotion stalls and write-back handling;
//! * [`baselines`] — the comparison structures of Fig. 8: a small fully
//!   associative [`baselines::L0FrontEnd`] and the DATE'14 enhanced-MSHR
//!   [`baselines::EmshrFrontEnd`];
//! * [`Platform`] — the full evaluated system (64 KB DL1, 2 MB L2, main
//!   memory, in-order core) with one-call runs and penalty computation;
//! * energy/area/lifetime reporting via `sttcache-tech`.
//!
//! # Quick start
//!
//! ```
//! use sttcache::{DCacheOrganization, Platform};
//! use sttcache_cpu::Engine;
//! use sttcache_mem::Addr;
//!
//! # fn main() -> Result<(), sttcache::SttError> {
//! // A tiny workload: walk an array twice.
//! let walk = |e: &mut dyn Engine| {
//!     for pass in 0..2 {
//!         for i in 0..256u64 {
//!             e.load(Addr(i * 4), 4);
//!             e.compute(1);
//!         }
//!         e.branch(pass == 0);
//!     }
//! };
//!
//! let sram = Platform::new(DCacheOrganization::SramBaseline)?.run(&walk);
//! let nvm = Platform::new(DCacheOrganization::NvmDropIn)?.run(&walk);
//! let vwb = Platform::new(DCacheOrganization::nvm_vwb_default())?.run(&walk);
//!
//! let drop_in = sttcache::penalty_pct(sram.cycles(), nvm.cycles());
//! let with_vwb = sttcache::penalty_pct(sram.cycles(), vwb.cycles());
//! assert!(with_vwb < drop_in);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod buffer;
pub mod catalog;
mod dl1;
mod error;
mod front_end;
mod lane;
mod multi;
mod penalty;
mod platform;
mod report;
mod stage;
mod vwb;

pub use catalog::{by_cli, readme_table, OrgEntry, HYBRID_STACK};
pub use dl1::{
    l2_config, nvm_dl1_config, nvm_il1_config, sram_dl1_config, sram_il1_config, DlOneTechnology,
};
pub use error::SttError;
pub use front_end::FrontEnd;
pub use lane::{LaneMode, LanePort, PlainLane, ReplayLane};
pub use multi::{
    core_addr, CoreSpec, McFrontEnd, McHierarchy, MultiAudit, MultiPlatform, MultiPlatformConfig,
    MultiRunResult, SharedL2, CORE_ADDRESS_STRIDE, MAX_CORES,
};
pub use penalty::{average_penalty, penalty_pct, PenaltyRow};
pub use platform::{
    DCacheOrganization, EnergyReport, IcacheConfig, Platform, PlatformConfig, RunResult,
};
pub use stage::{
    probe_then_fetch, BufferStage, BufferStats, Buffered, StackSpec, StackedStage, StageSpec,
    StageStats, StageTelemetry,
};
pub use vwb::{VwbConfig, VwbFrontEnd, VwbStage};

/// The concrete two-level hierarchy under every front-end:
/// DL1 → unified L2 → main memory.
pub type Hierarchy = sttcache_mem::Cache<sttcache_mem::Cache<sttcache_mem::MainMemory>>;

//! Penalty metrics.
//!
//! Every figure in the paper reports *performance penalty*: the execution-
//! time increase of a configuration relative to the SRAM D-cache baseline,
//! in percent ("SRAM D-cache baseline = 100 %").

/// Performance penalty in percent of `cycles` relative to
/// `baseline_cycles`.
///
/// Negative values mean the configuration is *faster* than the baseline
/// (possible when code transformations are applied on top).
///
/// # Panics
///
/// Panics if `baseline_cycles` is zero.
///
/// # Example
///
/// ```
/// assert_eq!(sttcache::penalty_pct(100, 154), 54.0);
/// assert_eq!(sttcache::penalty_pct(100, 92), -8.0);
/// ```
pub fn penalty_pct(baseline_cycles: u64, cycles: u64) -> f64 {
    assert!(
        baseline_cycles > 0,
        "baseline must have run for at least one cycle"
    );
    (cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64 * 100.0
}

/// One labelled penalty value (a bar of a paper figure).
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltyRow {
    /// Benchmark (or configuration) name.
    pub name: String,
    /// Penalty in percent.
    pub penalty_pct: f64,
}

impl PenaltyRow {
    /// Creates a row.
    pub fn new(name: impl Into<String>, penalty_pct: f64) -> Self {
        PenaltyRow {
            name: name.into(),
            penalty_pct,
        }
    }
}

impl std::fmt::Display for PenaltyRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<16} {:>8.2} %", self.name, self.penalty_pct)
    }
}

/// Arithmetic mean of the rows' penalties (the paper's AVERAGE bar).
///
/// Returns 0 for an empty slice.
///
/// # Example
///
/// ```
/// use sttcache::{average_penalty, PenaltyRow};
///
/// let rows = vec![PenaltyRow::new("atax", 40.0), PenaltyRow::new("mvt", 60.0)];
/// assert_eq!(average_penalty(&rows), 50.0);
/// ```
pub fn average_penalty(rows: &[PenaltyRow]) -> f64 {
    if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.penalty_pct).sum::<f64>() / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_is_relative_increase() {
        assert_eq!(penalty_pct(200, 300), 50.0);
        assert_eq!(penalty_pct(100, 100), 0.0);
        assert!(penalty_pct(100, 95) < 0.0);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        let _ = penalty_pct(0, 10);
    }

    #[test]
    fn average_of_empty_is_zero() {
        assert_eq!(average_penalty(&[]), 0.0);
    }

    #[test]
    fn row_display_is_aligned() {
        let row = PenaltyRow::new("gemm", 54.321);
        assert!(row.to_string().contains("54.32"));
    }
}

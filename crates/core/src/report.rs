//! gem5-style text statistics dump.
//!
//! [`RunResult::stats_text`] renders every counter of a run in a
//! `stats.txt`-flavoured `key value # comment` format, so runs can be
//! diffed, grepped and archived the way gem5 users do.

use crate::platform::RunResult;
use std::fmt::Write as _;

impl RunResult {
    /// Renders the run's statistics as gem5-style text.
    ///
    /// # Example
    ///
    /// ```
    /// use sttcache::{DCacheOrganization, Platform};
    /// use sttcache_mem::Addr;
    ///
    /// # fn main() -> Result<(), sttcache::SttError> {
    /// let platform = Platform::new(DCacheOrganization::nvm_vwb_default())?;
    /// let result = platform.run(|e| {
    ///     e.load(Addr(0), 4);
    ///     e.compute(3);
    /// });
    /// let text = result.stats_text();
    /// assert!(text.contains("core.cycles"));
    /// assert!(text.contains("vwb.read_hits"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn stats_text(&self) -> String {
        let mut s = String::new();
        let mut put = |key: &str, value: String, comment: &str| {
            let _ = writeln!(s, "{key:<40} {value:>16} # {comment}");
        };

        put(
            "config.organization",
            self.organization.name().to_string(),
            "L1 D-cache organization",
        );
        put(
            "core.cycles",
            self.core.cycles.to_string(),
            "simulated cycles (1 GHz => ns)",
        );
        put(
            "core.instructions",
            self.core.instructions.to_string(),
            "instructions retired",
        );
        put(
            "core.ipc",
            format!("{:.4}", self.core.ipc()),
            "instructions per cycle",
        );
        put(
            "core.loads",
            self.core.loads.to_string(),
            "load instructions",
        );
        put(
            "core.stores",
            self.core.stores.to_string(),
            "store instructions",
        );
        put(
            "core.prefetches",
            self.core.prefetches.to_string(),
            "software prefetch hints",
        );
        put(
            "core.branches",
            self.core.branches.to_string(),
            "branch instructions",
        );
        put(
            "core.mispredicts",
            self.core.mispredicts.to_string(),
            "mispredicted branches",
        );
        put(
            "core.read_stall_cycles",
            self.core.read_stall_cycles.to_string(),
            "cycles stalled on load data",
        );
        put(
            "core.write_stall_cycles",
            self.core.write_stall_cycles.to_string(),
            "cycles stalled on a full store buffer",
        );
        put(
            "core.branch_stall_cycles",
            self.core.branch_stall_cycles.to_string(),
            "pipeline-refill cycles",
        );
        put(
            "core.fetch_stall_cycles",
            self.core.fetch_stall_cycles.to_string(),
            "instruction-fetch stalls (explicit IL1 only)",
        );

        for (prefix, stats) in [
            ("dl1", &self.dl1),
            ("l2", &self.l2),
            ("memory", &self.memory),
        ] {
            put(
                &format!("{prefix}.reads"),
                stats.reads.to_string(),
                "read accesses",
            );
            put(
                &format!("{prefix}.writes"),
                stats.writes.to_string(),
                "write accesses",
            );
            put(
                &format!("{prefix}.read_hits"),
                stats.read_hits.to_string(),
                "read hits",
            );
            put(
                &format!("{prefix}.write_hits"),
                stats.write_hits.to_string(),
                "write hits",
            );
            put(
                &format!("{prefix}.miss_rate"),
                format!("{:.4}", stats.miss_rate()),
                "misses / accesses",
            );
            put(
                &format!("{prefix}.fills"),
                stats.fills.to_string(),
                "lines filled from below",
            );
            put(
                &format!("{prefix}.writebacks"),
                stats.writebacks.to_string(),
                "dirty evictions",
            );
            put(
                &format!("{prefix}.bank_conflict_cycles"),
                stats.bank_conflict_cycles.to_string(),
                "cycles waiting on busy banks",
            );
        }

        if let Some(il1) = &self.il1 {
            put(
                "il1.reads",
                il1.reads.to_string(),
                "instruction-line fetches",
            );
            put(
                "il1.miss_rate",
                format!("{:.4}", il1.miss_rate()),
                "IL1 miss rate",
            );
        }
        for stage in &self.buffers {
            let s = &stage.stats;
            match stage.kind {
                "vwb" => {
                    put(
                        "vwb.reads",
                        s.reads.to_string(),
                        "loads presented to the VWB",
                    );
                    put(
                        "vwb.read_hits",
                        s.read_hits.to_string(),
                        "loads served at buffer speed",
                    );
                    put(
                        "vwb.read_hit_rate",
                        format!("{:.4}", s.read_hit_rate()),
                        "decoupled fraction of reads",
                    );
                    put(
                        "vwb.writes",
                        s.writes.to_string(),
                        "stores presented to the VWB",
                    );
                    put(
                        "vwb.write_hits",
                        s.write_hits.to_string(),
                        "stores absorbed by the VWB",
                    );
                    put(
                        "vwb.promotions",
                        s.fills.to_string(),
                        "lines promoted from the DL1",
                    );
                    put(
                        "vwb.dirty_evictions",
                        s.dirty_evictions.to_string(),
                        "dirty lines written back to the DL1",
                    );
                    put(
                        "vwb.prefetch_fills",
                        s.prefetch_fills.to_string(),
                        "hint-triggered promotions",
                    );
                }
                "l0" => {
                    put("l0.reads", s.reads.to_string(), "loads presented to the L0");
                    put("l0.read_hits", s.read_hits.to_string(), "L0 read hits");
                    put("l0.fills", s.fills.to_string(), "lines filled from the DL1");
                }
                "emshr" => {
                    put(
                        "emshr.reads",
                        s.reads.to_string(),
                        "loads presented to the EMSHR",
                    );
                    put(
                        "emshr.read_hits",
                        s.read_hits.to_string(),
                        "retained-entry hits",
                    );
                    put(
                        "emshr.allocations",
                        s.fills.to_string(),
                        "DL1 misses captured",
                    );
                }
                kind => {
                    put(
                        &format!("{kind}.reads"),
                        s.reads.to_string(),
                        "loads presented to the stage",
                    );
                    put(
                        &format!("{kind}.read_hits"),
                        s.read_hits.to_string(),
                        "stage read hits",
                    );
                    put(
                        &format!("{kind}.fills"),
                        s.fills.to_string(),
                        "lines brought into the stage",
                    );
                }
            }
        }

        put(
            "energy.dl1_dynamic_pj",
            format!("{:.1}", self.energy.dl1_dynamic_pj),
            "DL1 dynamic energy",
        );
        put(
            "energy.l2_dynamic_pj",
            format!("{:.1}", self.energy.l2_dynamic_pj),
            "L2 dynamic energy",
        );
        put(
            "energy.buffer_dynamic_pj",
            format!("{:.1}", self.energy.buffer_dynamic_pj),
            "front-end buffer dynamic energy",
        );
        put(
            "energy.leakage_uj",
            format!("{:.4}", self.energy.leakage_uj),
            "DL1+L2 leakage over the run",
        );
        put(
            "energy.total_uj",
            format!("{:.4}", self.energy.total_uj()),
            "total energy",
        );
        put(
            "area.dl1_mm2",
            format!("{:.5}", self.energy.dl1_area_mm2),
            "DL1 array area",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{DCacheOrganization, Platform};
    use sttcache_mem::Addr;

    fn tiny_run(org: DCacheOrganization) -> String {
        let platform = Platform::new(org).expect("canonical configuration");
        platform
            .run(|e| {
                for i in 0..64u64 {
                    e.load(Addr(i * 8), 4);
                    e.compute(2);
                }
                e.store(Addr(0), 4);
                e.branch(false);
            })
            .stats_text()
    }

    #[test]
    fn plain_dump_has_hierarchy_sections() {
        let text = tiny_run(DCacheOrganization::NvmDropIn);
        for key in [
            "core.cycles",
            "core.ipc",
            "dl1.reads",
            "l2.reads",
            "memory.reads",
            "energy.total_uj",
        ] {
            assert!(text.contains(key), "missing {key}\n{text}");
        }
        assert!(!text.contains("vwb."));
    }

    #[test]
    fn vwb_dump_has_buffer_section() {
        let text = tiny_run(DCacheOrganization::nvm_vwb_default());
        assert!(text.contains("vwb.read_hit_rate"));
        assert!(text.contains("vwb.promotions"));
    }

    #[test]
    fn every_line_has_a_comment() {
        let text = tiny_run(DCacheOrganization::nvm_l0_default());
        for line in text.lines() {
            assert!(line.contains(" # "), "{line}");
        }
        assert!(text.contains("l0.read_hits"));
    }
}

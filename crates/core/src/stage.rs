//! Composable data-path stages.
//!
//! Every evaluated L1 D-cache organization is a (possibly empty) stack of
//! small buffer structures — VWB, L0, EMSHR — in front of the DL1. This
//! module makes that composition explicit: a [`BufferStage`] serves reads,
//! writes and prefetch hints against a generic backing [`MemoryLevel`],
//! and exposes the drain/verification surface (`flush_dirty`,
//! `dirty_entries`, `resident_lines`, `check_invariants`) plus a unified
//! [`BufferStats`] view. [`Buffered`] pairs one stage with its backing
//! hierarchy behind [`DataPort`], and [`StackedStage`] nests one stage
//! over another, so new organizations are a composition plus a catalog
//! entry instead of a new front-end variant.

use crate::SttError;
use sttcache_cpu::DataPort;
use sttcache_mem::{AccessOutcome, Addr, CacheStats, Cycle, MemoryLevel};

/// Unified statistics for any [`BufferStage`].
///
/// The per-structure vocabularies map onto one block: VWB *promotions*,
/// L0 *fills* and EMSHR *allocations* are all [`BufferStats::fills`];
/// absorbed stores (VWB write hits, EMSHR coalesced writes) are
/// [`BufferStats::write_hits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Loads presented to the stage.
    pub reads: u64,
    /// Loads served from the stage's own entries.
    pub read_hits: u64,
    /// Stores presented to the stage.
    pub writes: u64,
    /// Stores absorbed by the stage (entry already present).
    pub write_hits: u64,
    /// Lines brought into the stage (promotions, fills, captures).
    pub fills: u64,
    /// Dirty entries written back below on eviction.
    pub dirty_evictions: u64,
    /// Prefetch hints that triggered a fill.
    pub prefetch_fills: u64,
    /// Prefetch hints dropped (line already present or in flight).
    pub prefetch_drops: u64,
}

impl BufferStats {
    /// Read hit rate (0 when idle).
    pub fn read_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_hits as f64 / self.reads as f64
        }
    }

    /// Element-wise sum (used by [`StackedStage`] to aggregate).
    pub fn merged(&self, other: &BufferStats) -> BufferStats {
        BufferStats {
            reads: self.reads + other.reads,
            read_hits: self.read_hits + other.read_hits,
            writes: self.writes + other.writes,
            write_hits: self.write_hits + other.write_hits,
            fills: self.fills + other.fills,
            dirty_evictions: self.dirty_evictions + other.dirty_evictions,
            prefetch_fills: self.prefetch_fills + other.prefetch_fills,
            prefetch_drops: self.prefetch_drops + other.prefetch_drops,
        }
    }
}

/// One stage's statistics, labelled with the stage kind (`"vwb"`, `"l0"`,
/// `"emshr"`), as collected by [`BufferStage::collect_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// The stage kind that produced the numbers.
    pub kind: &'static str,
    /// The stage's counters.
    pub stats: BufferStats,
}

/// A point-in-time occupancy snapshot of one stage, as collected by
/// [`BufferStage::collect_telemetry`]. Unlike [`StageStats`] (cumulative
/// counters, always on), this is the end-of-run residency picture the
/// explain report pairs with the cycle-resolved samples in
/// [`sttcache_mem::telemetry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTelemetry {
    /// The stage kind that produced the snapshot.
    pub kind: &'static str,
    /// Lines currently resident in the stage.
    pub resident: usize,
    /// Dirty entries currently held.
    pub dirty: usize,
    /// Entry capacity (0 when the stage does not expose one).
    pub capacity: usize,
}

/// The shared prefetch-hint policy: an ARM `PLD` probes the backing
/// level's tags and fetches the line on a miss, without blocking the core.
/// Stages that promote resident lines into their own storage (the VWB)
/// override [`BufferStage::prefetch`] instead.
/// Generic over the backing level so monomorphic replay lanes keep
/// static dispatch; `?Sized` keeps the `&mut dyn MemoryLevel` callers
/// inside boxed stages working unchanged.
pub fn probe_then_fetch<M: MemoryLevel + ?Sized>(below: &mut M, addr: Addr, now: Cycle) {
    if !below.contains(addr) {
        let _ = below.read(addr, now);
    }
}

/// A small buffer structure between the datapath and a backing
/// [`MemoryLevel`].
///
/// Object-safe: organizations hold stages as `Box<dyn BufferStage>` and
/// compose them with [`StackedStage`] without new enum variants. Timing
/// flows through the [`AccessOutcome`] returned by `read`/`write`; a
/// stage hit reports [`ServedBy::ThisLevel`](sttcache_mem::ServedBy),
/// while misses propagate the backing level's verdict so stacked stages
/// (an EMSHR under a VWB, say) still see where a request was served.
pub trait BufferStage: std::fmt::Debug {
    /// Short stable identifier (`"vwb"`, `"l0"`, `"emshr"`, `"stack"`)
    /// used for stats labelling and report sections.
    fn kind(&self) -> &'static str;

    /// Serves a load at `now`, reading through `below` on a miss.
    fn read(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome;

    /// Serves a store at `now`, writing through `below` on a miss.
    fn write(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome;

    /// Handles a software prefetch hint (non-blocking).
    ///
    /// The default is the shared probe-then-fetch policy against `below`;
    /// the VWB overrides this to promote into its own buffer.
    fn prefetch(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) {
        probe_then_fetch(below, addr, now);
    }

    /// Whether the stage itself holds the line containing `addr`
    /// (`line_bytes` is the backing level's line size).
    fn contains(&self, addr: Addr, line_bytes: usize) -> bool;

    /// Writes every dirty entry back into `below`. Entries stay resident
    /// and become clean. Returns the number of lines written and the
    /// completion cycle.
    fn flush_dirty(&mut self, below: &mut dyn MemoryLevel, now: Cycle) -> (usize, Cycle);

    /// Number of dirty entries currently held (drain verification).
    fn dirty_entries(&self) -> usize;

    /// Base addresses of every line resident in the stage.
    fn resident_lines(&self, line_bytes: usize) -> Vec<Addr>;

    /// Structural checks, reported through [`sttcache_mem::invariants`].
    fn check_invariants(&self, now: Cycle);

    /// Resets the stage's statistics (contents are kept).
    fn reset_stats(&mut self);

    /// The stage's counters.
    fn stats(&self) -> BufferStats;

    /// Appends this stage's labelled statistics to `out`; composite
    /// stages recurse so every constituent appears once, outermost first.
    fn collect_stats(&self, out: &mut Vec<StageStats>) {
        out.push(StageStats {
            kind: self.kind(),
            stats: self.stats(),
        });
    }

    /// Appends this stage's occupancy snapshot to `out`; composite stages
    /// recurse, mirroring [`BufferStage::collect_stats`]. The default
    /// derives residency from the drain surface; stages with a known
    /// entry capacity override to report it.
    fn collect_telemetry(&self, line_bytes: usize, out: &mut Vec<StageTelemetry>) {
        out.push(StageTelemetry {
            kind: self.kind(),
            resident: self.resident_lines(line_bytes).len(),
            dirty: self.dirty_entries(),
            capacity: 0,
        });
    }

    /// Clones the stage behind the object-safe interface.
    fn boxed_clone(&self) -> Box<dyn BufferStage>;
}

impl Clone for Box<dyn BufferStage> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

impl BufferStage for Box<dyn BufferStage> {
    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn read(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        (**self).read(below, addr, now)
    }

    fn write(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        (**self).write(below, addr, now)
    }

    fn prefetch(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) {
        (**self).prefetch(below, addr, now);
    }

    fn contains(&self, addr: Addr, line_bytes: usize) -> bool {
        (**self).contains(addr, line_bytes)
    }

    fn flush_dirty(&mut self, below: &mut dyn MemoryLevel, now: Cycle) -> (usize, Cycle) {
        (**self).flush_dirty(below, now)
    }

    fn dirty_entries(&self) -> usize {
        (**self).dirty_entries()
    }

    fn resident_lines(&self, line_bytes: usize) -> Vec<Addr> {
        (**self).resident_lines(line_bytes)
    }

    fn check_invariants(&self, now: Cycle) {
        (**self).check_invariants(now);
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }

    fn stats(&self) -> BufferStats {
        (**self).stats()
    }

    fn collect_stats(&self, out: &mut Vec<StageStats>) {
        (**self).collect_stats(out);
    }

    fn collect_telemetry(&self, line_bytes: usize, out: &mut Vec<StageTelemetry>) {
        (**self).collect_telemetry(line_bytes, out);
    }

    fn boxed_clone(&self) -> Box<dyn BufferStage> {
        (**self).boxed_clone()
    }
}

/// A [`BufferStage`] paired with its backing hierarchy, exposed as a
/// [`DataPort`] for the core.
///
/// The concrete organizations are aliases of this type —
/// [`VwbFrontEnd`](crate::VwbFrontEnd),
/// [`L0FrontEnd`](crate::baselines::L0FrontEnd),
/// [`EmshrFrontEnd`](crate::baselines::EmshrFrontEnd) — each with an
/// inherent `new` validating its stage configuration.
#[derive(Debug, Clone)]
pub struct Buffered<S, M> {
    stage: S,
    below: M,
}

impl<S: BufferStage, M: MemoryLevel> Buffered<S, M> {
    /// Pairs a ready-built stage with its backing level.
    pub fn compose(stage: S, below: M) -> Self {
        Buffered { stage, below }
    }

    /// The stage.
    pub fn stage(&self) -> &S {
        &self.stage
    }

    /// Mutable access to the stage.
    pub fn stage_mut(&mut self) -> &mut S {
        &mut self.stage
    }

    /// The backing level.
    pub fn below(&self) -> &M {
        &self.below
    }

    /// Mutable access to the backing level.
    pub fn below_mut(&mut self) -> &mut M {
        &mut self.below
    }

    /// Whether the stage holds the line containing `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.stage.contains(addr, self.below.line_bytes())
    }

    /// Writes every dirty stage entry back into the backing level (the
    /// stage is a volatile register file, so power-gating must drain it
    /// even when the level below is non-volatile). Entries stay resident
    /// and become clean. Returns the number of lines written and the
    /// completion cycle.
    pub fn flush_dirty(&mut self, now: Cycle) -> (usize, Cycle) {
        self.stage.flush_dirty(&mut self.below, now)
    }

    /// Number of dirty stage entries currently held (drain verification).
    pub fn dirty_entries(&self) -> usize {
        self.stage.dirty_entries()
    }

    /// Base addresses of the lines currently resident in the stage.
    pub fn resident_lines(&self) -> Vec<Addr> {
        self.stage.resident_lines(self.below.line_bytes())
    }

    /// Structural checks, reported through [`sttcache_mem::invariants`].
    pub fn check_invariants(&self, now: Cycle) {
        self.stage.check_invariants(now);
    }

    /// Resets the stage's and the whole hierarchy's statistics (contents
    /// are kept — used for warm-up runs).
    pub fn reset_stats(&mut self) {
        self.stage.reset_stats();
        self.below.reset_stats();
    }
}

impl<S: BufferStage, M: MemoryLevel> DataPort for Buffered<S, M> {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.stage.read(&mut self.below, addr, now).complete_at
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.stage.write(&mut self.below, addr, now).complete_at
    }

    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        self.stage.prefetch(&mut self.below, addr, now);
    }

    // The `*_pre` pre-decoded entry points deliberately keep their default
    // (plain-path) implementations: buffer stages index by their own
    // entry-granular keys and re-derive line addresses internally, so a
    // DL1-geometry decomposition has nothing to short-circuit here.
    // Compiled replay through a buffered front-end therefore takes exactly
    // the interpreted access path — identical timing by construction.
}

/// Adapter presenting "an inner stage over a backing level" as one
/// [`MemoryLevel`], so an outer stage's miss traffic routes *through* the
/// inner stage. The stage's own counters live in its [`BufferStats`];
/// the `CacheStats` surface is an empty placeholder.
struct StagedLevel<'a> {
    stage: &'a mut dyn BufferStage,
    below: &'a mut dyn MemoryLevel,
    stats: CacheStats,
}

impl MemoryLevel for StagedLevel<'_> {
    fn read(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        self.stage.read(self.below, addr, now)
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> AccessOutcome {
        self.stage.write(self.below, addr, now)
    }

    fn line_bytes(&self) -> usize {
        self.below.line_bytes()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stage.reset_stats();
        self.below.reset_stats();
    }

    fn contains(&self, addr: Addr) -> bool {
        self.stage.contains(addr, self.below.line_bytes()) || self.below.contains(addr)
    }

    fn occupy_bank(&mut self, addr: Addr, from: Cycle, cycles: u64) -> Cycle {
        self.below.occupy_bank(addr, from, cycles)
    }
}

/// Two stages in series: `outer` sits toward the datapath, and its miss
/// traffic flows through `inner` before reaching the backing level.
///
/// This is how catalog-only organizations compose existing stages — e.g.
/// the beyond-paper hybrid (a VWB front over an EMSHR-enhanced DL1) is a
/// `StackedStage` of the two existing implementations, with no new
/// front-end code.
#[derive(Debug)]
pub struct StackedStage {
    outer: Box<dyn BufferStage>,
    inner: Box<dyn BufferStage>,
}

impl StackedStage {
    /// Stacks `outer` over `inner`.
    pub fn new(outer: Box<dyn BufferStage>, inner: Box<dyn BufferStage>) -> Self {
        StackedStage { outer, inner }
    }

    /// The datapath-side stage.
    pub fn outer(&self) -> &dyn BufferStage {
        &*self.outer
    }

    /// The memory-side stage.
    pub fn inner(&self) -> &dyn BufferStage {
        &*self.inner
    }
}

impl BufferStage for StackedStage {
    fn kind(&self) -> &'static str {
        "stack"
    }

    fn read(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        let mut level = StagedLevel {
            stage: &mut *self.inner,
            below,
            stats: CacheStats::new(),
        };
        self.outer.read(&mut level, addr, now)
    }

    fn write(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) -> AccessOutcome {
        let mut level = StagedLevel {
            stage: &mut *self.inner,
            below,
            stats: CacheStats::new(),
        };
        self.outer.write(&mut level, addr, now)
    }

    fn prefetch(&mut self, below: &mut dyn MemoryLevel, addr: Addr, now: Cycle) {
        let mut level = StagedLevel {
            stage: &mut *self.inner,
            below,
            stats: CacheStats::new(),
        };
        self.outer.prefetch(&mut level, addr, now);
    }

    fn contains(&self, addr: Addr, line_bytes: usize) -> bool {
        self.outer.contains(addr, line_bytes) || self.inner.contains(addr, line_bytes)
    }

    fn flush_dirty(&mut self, below: &mut dyn MemoryLevel, now: Cycle) -> (usize, Cycle) {
        // The outer stage drains through the inner one (its dirty lines
        // belong one stage down, exactly as in live operation), then the
        // inner stage drains into the real backing level.
        let (outer_n, outer_done) = {
            let mut level = StagedLevel {
                stage: &mut *self.inner,
                below,
                stats: CacheStats::new(),
            };
            self.outer.flush_dirty(&mut level, now)
        };
        let (inner_n, done) = self.inner.flush_dirty(below, outer_done);
        (outer_n + inner_n, done)
    }

    fn dirty_entries(&self) -> usize {
        self.outer.dirty_entries() + self.inner.dirty_entries()
    }

    fn resident_lines(&self, line_bytes: usize) -> Vec<Addr> {
        let mut lines = self.outer.resident_lines(line_bytes);
        lines.extend(self.inner.resident_lines(line_bytes));
        lines
    }

    fn check_invariants(&self, now: Cycle) {
        self.outer.check_invariants(now);
        self.inner.check_invariants(now);
    }

    fn reset_stats(&mut self) {
        self.outer.reset_stats();
        self.inner.reset_stats();
    }

    fn stats(&self) -> BufferStats {
        self.outer.stats().merged(&self.inner.stats())
    }

    fn collect_stats(&self, out: &mut Vec<StageStats>) {
        self.outer.collect_stats(out);
        self.inner.collect_stats(out);
    }

    fn collect_telemetry(&self, line_bytes: usize, out: &mut Vec<StageTelemetry>) {
        self.outer.collect_telemetry(line_bytes, out);
        self.inner.collect_telemetry(line_bytes, out);
    }

    fn boxed_clone(&self) -> Box<dyn BufferStage> {
        Box::new(StackedStage {
            outer: self.outer.clone(),
            inner: self.inner.clone(),
        })
    }
}

/// A buildable description of one stage (configuration + kind), `Copy`
/// so organizations stay plain values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageSpec {
    /// A Very Wide Buffer stage.
    Vwb(crate::VwbConfig),
    /// An L0-cache stage.
    L0(crate::baselines::L0Config),
    /// An enhanced-MSHR stage.
    Emshr(crate::baselines::EmshrConfig),
}

impl StageSpec {
    /// Builds the stage for a DL1 line of `line_bits`.
    ///
    /// # Errors
    ///
    /// Returns [`SttError::InvalidBuffer`] when the configuration is
    /// invalid for the line size.
    pub fn build(self, line_bits: usize) -> Result<Box<dyn BufferStage>, SttError> {
        Ok(match self {
            StageSpec::Vwb(cfg) => Box::new(crate::vwb::VwbStage::new(cfg, line_bits)?),
            StageSpec::L0(cfg) => Box::new(crate::baselines::L0Stage::new(cfg, line_bits)?),
            StageSpec::Emshr(cfg) => Box::new(crate::baselines::EmshrStage::new(cfg, line_bits)?),
        })
    }

    /// The stage's data capacity in bits.
    pub fn capacity_bits(self) -> usize {
        match self {
            StageSpec::Vwb(cfg) => cfg.capacity_bits,
            StageSpec::L0(cfg) => cfg.capacity_bits,
            StageSpec::Emshr(cfg) => cfg.capacity_bits,
        }
    }
}

/// A named two-stage composition (see [`StackedStage`]), `Copy` so it can
/// ride inside [`DCacheOrganization`](crate::DCacheOrganization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSpec {
    /// Human-readable organization name.
    pub name: &'static str,
    /// The datapath-side stage.
    pub outer: StageSpec,
    /// The memory-side stage.
    pub inner: StageSpec,
}

impl StackSpec {
    /// Builds the composed stage for a DL1 line of `line_bits`.
    ///
    /// # Errors
    ///
    /// Returns [`SttError::InvalidBuffer`] when either constituent
    /// configuration is invalid for the line size.
    pub fn build(self, line_bits: usize) -> Result<StackedStage, SttError> {
        Ok(StackedStage::new(
            self.outer.build(line_bits)?,
            self.inner.build(line_bits)?,
        ))
    }

    /// Total data capacity of both stages in bits.
    pub fn capacity_bits(self) -> usize {
        self.outer.capacity_bits() + self.inner.capacity_bits()
    }
}

//! The unified data-port front-end.

use crate::baselines::{EmshrFrontEnd, EmshrStats, L0FrontEnd, L0Stats};
use crate::vwb::{VwbFrontEnd, VwbStats};
use crate::Hierarchy;
use sttcache_cpu::{DataPort, MemPort};
use sttcache_mem::{Addr, Cache, CacheStats, Cycle, MainMemory, MemoryLevel};

/// The L2-over-memory tail of the hierarchy that every front-end's DL1
/// sits on.
pub(crate) type Tail = Cache<MainMemory>;

/// One of the four evaluated L1 D-cache organizations, unified behind a
/// single [`DataPort`] so the [`crate::Platform`] can hold any of them in
/// one core type.
///
/// * `Plain` — the core talks straight to the DL1 (the SRAM baseline and
///   the drop-in NVM configuration of Fig. 1);
/// * `Vwb` — the paper's proposal (Figs. 3–7, 9);
/// * `L0` / `Emshr` — the Fig. 8 comparison baselines.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum FrontEnd {
    /// Direct DL1 access.
    Plain(MemPort<Hierarchy>),
    /// The Very Wide Buffer organization.
    Vwb(VwbFrontEnd<Tail>),
    /// The L0-cache baseline.
    L0(L0FrontEnd<Tail>),
    /// The enhanced-MSHR baseline.
    Emshr(EmshrFrontEnd<Tail>),
}

impl FrontEnd {
    /// The DL1 statistics.
    pub fn dl1_stats(&self) -> &CacheStats {
        match self {
            FrontEnd::Plain(p) => p.level().stats(),
            FrontEnd::Vwb(v) => v.dl1().stats(),
            FrontEnd::L0(l) => l.dl1().stats(),
            FrontEnd::Emshr(e) => e.dl1().stats(),
        }
    }

    /// The L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        match self {
            FrontEnd::Plain(p) => p.level().next_level().stats(),
            FrontEnd::Vwb(v) => v.dl1().next_level().stats(),
            FrontEnd::L0(l) => l.dl1().next_level().stats(),
            FrontEnd::Emshr(e) => e.dl1().next_level().stats(),
        }
    }

    /// The main-memory statistics.
    pub fn memory_stats(&self) -> &CacheStats {
        match self {
            FrontEnd::Plain(p) => p.level().next_level().next_level().stats(),
            FrontEnd::Vwb(v) => v.dl1().next_level().next_level().stats(),
            FrontEnd::L0(l) => l.dl1().next_level().next_level().stats(),
            FrontEnd::Emshr(e) => e.dl1().next_level().next_level().stats(),
        }
    }

    /// VWB statistics, when this front-end is the VWB organization.
    pub fn vwb_stats(&self) -> Option<&VwbStats> {
        match self {
            FrontEnd::Vwb(v) => Some(v.stats()),
            _ => None,
        }
    }

    /// L0 statistics, when this front-end is the L0 baseline.
    pub fn l0_stats(&self) -> Option<&L0Stats> {
        match self {
            FrontEnd::L0(l) => Some(l.stats()),
            _ => None,
        }
    }

    /// EMSHR statistics, when this front-end is the EMSHR baseline.
    pub fn emshr_stats(&self) -> Option<&EmshrStats> {
        match self {
            FrontEnd::Emshr(e) => Some(e.stats()),
            _ => None,
        }
    }

    /// Resets all statistics in the front-end and the hierarchy below it;
    /// cache and buffer *contents* are kept (warm-up support).
    pub fn reset_stats(&mut self) {
        match self {
            FrontEnd::Plain(p) => p.level_mut().reset_stats(),
            FrontEnd::Vwb(v) => v.reset_stats(),
            FrontEnd::L0(l) => l.reset_stats(),
            FrontEnd::Emshr(e) => e.reset_stats(),
        }
    }
}

impl DataPort for FrontEnd {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.read(addr, now),
            FrontEnd::Vwb(v) => v.read(addr, now),
            FrontEnd::L0(l) => l.read(addr, now),
            FrontEnd::Emshr(e) => e.read(addr, now),
        }
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.write(addr, now),
            FrontEnd::Vwb(v) => v.write(addr, now),
            FrontEnd::L0(l) => l.write(addr, now),
            FrontEnd::Emshr(e) => e.write(addr, now),
        }
    }

    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        // An ARM `PLD` probes the L1 tags and fetches the line on a miss,
        // without blocking the core. Only the VWB organization additionally
        // *promotes* already-resident lines into its buffer — the paper's
        // VWB-targeted prefetching.
        match self {
            FrontEnd::Plain(p) => {
                if !p.level().contains(addr) {
                    let _ = p.level_mut().read(addr, now);
                }
            }
            FrontEnd::L0(l) => {
                if !l.dl1().contains(addr) {
                    let _ = l.dl1_mut().read(addr, now);
                }
            }
            FrontEnd::Emshr(m) => {
                if !m.dl1().contains(addr) {
                    let _ = m.dl1_mut().read(addr, now);
                }
            }
            FrontEnd::Vwb(v) => v.prefetch(addr, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwb::VwbConfig;
    use crate::{l2_config, nvm_dl1_config};
    use sttcache_mem::CacheConfig;

    fn tail() -> Tail {
        Cache::new(l2_config().unwrap(), MainMemory::new(100))
    }

    fn dl1(cfg: CacheConfig) -> Hierarchy {
        Cache::new(cfg, tail())
    }

    #[test]
    fn plain_front_end_reaches_all_levels() {
        let mut fe = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        fe.read(Addr(0), 0);
        assert_eq!(fe.dl1_stats().reads, 1);
        assert_eq!(fe.l2_stats().reads, 1);
        assert_eq!(fe.memory_stats().reads, 1);
        assert!(fe.vwb_stats().is_none());
        assert!(fe.l0_stats().is_none());
        assert!(fe.emshr_stats().is_none());
    }

    #[test]
    fn vwb_front_end_reports_buffer_stats() {
        let inner = Cache::new(nvm_dl1_config().unwrap(), tail());
        let v = VwbFrontEnd::new(VwbConfig::default(), inner).unwrap();
        let mut fe = FrontEnd::Vwb(v);
        let t = fe.read(Addr(0), 0);
        fe.read(Addr(8), t);
        let stats = fe.vwb_stats().unwrap();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.read_hits, 1);
    }

    #[test]
    fn plain_prefetch_fetches_missing_lines_only() {
        let mut fe = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        fe.prefetch(Addr(0), 0);
        assert_eq!(fe.dl1_stats().accesses(), 1);
        // A hint for a resident line is dropped after the tag probe.
        fe.prefetch(Addr(0), 500);
        assert_eq!(fe.dl1_stats().accesses(), 1);
    }

    #[test]
    fn vwb_prefetch_promotes() {
        let inner = Cache::new(nvm_dl1_config().unwrap(), tail());
        let v = VwbFrontEnd::new(VwbConfig::default(), inner).unwrap();
        let mut fe = FrontEnd::Vwb(v);
        fe.prefetch(Addr(0), 0);
        assert_eq!(fe.vwb_stats().unwrap().prefetch_fills, 1);
    }
}

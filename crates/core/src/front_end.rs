//! The unified data-port front-end.

use crate::stage::{probe_then_fetch, BufferStage, Buffered, StageStats, StageTelemetry};
use crate::Hierarchy;
use sttcache_cpu::{DataPort, MemPort};
use sttcache_mem::{Addr, CacheStats, Cycle, DecodedAddr, MemoryLevel};

/// An evaluated L1 D-cache organization, unified behind a single
/// [`DataPort`] so the [`crate::Platform`] can hold any of them in one
/// core type.
///
/// * `Plain` — the core talks straight to the DL1 (the SRAM baseline and
///   the drop-in NVM configuration of Fig. 1);
/// * `Buffered` — any [`BufferStage`] composition in front of the DL1:
///   the paper's VWB proposal (Figs. 3–7, 9), the Fig. 8 L0/EMSHR
///   comparison baselines, and catalog-only stage stacks. New
///   organizations are a stage composition, not a new variant here.
#[derive(Debug, Clone)]
pub enum FrontEnd {
    /// Direct DL1 access.
    Plain(MemPort<Hierarchy>),
    /// A buffer-stage composition in front of the DL1.
    Buffered(Buffered<Box<dyn BufferStage>, Hierarchy>),
}

impl FrontEnd {
    /// Wraps a ready-built stage composition around `dl1`.
    pub fn buffered(stage: Box<dyn BufferStage>, dl1: Hierarchy) -> Self {
        FrontEnd::Buffered(Buffered::compose(stage, dl1))
    }

    /// The DL1 behind whatever buffer structure this front-end has.
    fn dl1(&self) -> &Hierarchy {
        match self {
            FrontEnd::Plain(p) => p.level(),
            FrontEnd::Buffered(b) => b.below(),
        }
    }

    /// Mutable access to the DL1.
    fn dl1_mut(&mut self) -> &mut Hierarchy {
        match self {
            FrontEnd::Plain(p) => p.level_mut(),
            FrontEnd::Buffered(b) => b.below_mut(),
        }
    }

    /// Statistics of the hierarchy level `depth` below the front buffer
    /// (0 = DL1, 1 = L2, 2 = main memory).
    fn level_stats(&self, depth: usize) -> &CacheStats {
        self.dl1()
            .levels()
            .nth(depth)
            .expect("the hierarchy is dl1 -> l2 -> memory")
            .stats()
    }

    /// The DL1 statistics.
    pub fn dl1_stats(&self) -> &CacheStats {
        self.level_stats(0)
    }

    /// The L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.level_stats(1)
    }

    /// The main-memory statistics.
    pub fn memory_stats(&self) -> &CacheStats {
        self.level_stats(2)
    }

    /// Labelled statistics of every buffer stage in the front-end,
    /// outermost first (empty for `Plain`).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        match self {
            FrontEnd::Plain(_) => Vec::new(),
            FrontEnd::Buffered(b) => {
                let mut out = Vec::new();
                b.stage().collect_stats(&mut out);
                out
            }
        }
    }

    /// Occupancy snapshots of every buffer stage in the front-end,
    /// outermost first (empty for `Plain`); the telemetry-side companion
    /// of [`FrontEnd::stage_stats`].
    pub fn stage_telemetry(&self) -> Vec<StageTelemetry> {
        match self {
            FrontEnd::Plain(_) => Vec::new(),
            FrontEnd::Buffered(b) => {
                let mut out = Vec::new();
                b.stage()
                    .collect_telemetry(b.below().config().line_bytes(), &mut out);
                out
            }
        }
    }

    /// Resets all statistics in the front-end and the hierarchy below it;
    /// cache and buffer *contents* are kept (warm-up support).
    pub fn reset_stats(&mut self) {
        match self {
            FrontEnd::Plain(p) => p.level_mut().reset_stats(),
            FrontEnd::Buffered(b) => b.reset_stats(),
        }
    }

    /// Drains every dirty line in the whole organization to backing
    /// memory: first the front buffer stages into the DL1, then the DL1
    /// into the L2, then the L2 into memory. Lines stay resident and
    /// become clean. Returns the total lines written back and the cycle
    /// at which the last write-back was accepted.
    pub fn flush_dirty(&mut self, now: Cycle) -> (usize, Cycle) {
        let (front, done) = match self {
            FrontEnd::Plain(_) => (0, now),
            FrontEnd::Buffered(b) => b.flush_dirty(now),
        };
        let dl1 = self.dl1_mut();
        let (n1, t1) = dl1.flush_dirty(done);
        let (n2, t2) = dl1.next_level_mut().flush_dirty(t1);
        (front + n1 + n2, t2)
    }

    /// Dirty state still held anywhere in the organization (front buffer
    /// entries plus DL1 and L2 dirty lines). Zero after a completed
    /// [`flush_dirty`](Self::flush_dirty).
    pub fn dirty_line_count(&self) -> usize {
        let front = match self {
            FrontEnd::Plain(_) => 0,
            FrontEnd::Buffered(b) => b.dirty_entries(),
        };
        front + self.dl1().dirty_lines() + self.dl1().next_level().dirty_lines()
    }

    /// Base address and line size of every line resident anywhere in the
    /// organization, for phantom-line verification against a functional
    /// oracle.
    pub fn resident_lines(&self) -> Vec<(Addr, usize)> {
        let mut lines: Vec<(Addr, usize)> = Vec::new();
        let dl1_bytes = self.dl1().config().line_bytes();
        if let FrontEnd::Buffered(b) = self {
            lines.extend(b.resident_lines().into_iter().map(|a| (a, dl1_bytes)));
        }
        lines.extend(
            self.dl1()
                .resident_lines()
                .into_iter()
                .map(|a| (a, dl1_bytes)),
        );
        let l2 = self.dl1().next_level();
        let l2_bytes = l2.config().line_bytes();
        lines.extend(l2.resident_lines().into_iter().map(|a| (a, l2_bytes)));
        lines
    }

    /// End-of-run verification, reported through
    /// [`sttcache_mem::invariants`]: no leaked MSHR allocation and no
    /// dirty line may remain at any level once the organization has been
    /// drained with [`flush_dirty`](Self::flush_dirty).
    pub fn check_drained(&self, now: Cycle) {
        let front_dirty = match self {
            FrontEnd::Plain(_) => 0,
            FrontEnd::Buffered(b) => {
                b.check_invariants(now);
                b.dirty_entries()
            }
        };
        if front_dirty > 0 {
            sttcache_mem::invariants::report(
                "front-end",
                now,
                None,
                format!("{front_dirty} dirty buffer entries remain after drain"),
            );
        }
        self.dl1().check_drained(now);
        self.dl1().next_level().check_drained(now);
    }
}

impl DataPort for FrontEnd {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.read(addr, now),
            FrontEnd::Buffered(b) => b.read(addr, now),
        }
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.write(addr, now),
            FrontEnd::Buffered(b) => b.write(addr, now),
        }
    }

    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        // An ARM `PLD` probes the L1 tags and fetches the line on a miss,
        // without blocking the core. Stages that promote already-resident
        // lines into their own storage (the VWB — the paper's VWB-targeted
        // prefetching) override `BufferStage::prefetch`.
        match self {
            FrontEnd::Plain(p) => probe_then_fetch(p.level_mut(), addr, now),
            FrontEnd::Buffered(b) => b.prefetch(addr, now),
        }
    }

    fn read_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        // Plain organizations talk straight to the DL1, whose geometry is
        // exactly what the trace was compiled against — the pre-computed
        // set/bank indices go directly into the cache. Buffer stages index
        // by their own keys, so buffered organizations take the plain path
        // (see the note on `Buffered`'s `DataPort` impl).
        match self {
            FrontEnd::Plain(p) => p.level_mut().read_decoded(d, now).complete_at,
            FrontEnd::Buffered(b) => b.read(d.addr, now),
        }
    }

    fn write_pre(&mut self, d: DecodedAddr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.level_mut().write_decoded(d, now).complete_at,
            FrontEnd::Buffered(b) => b.write(d.addr, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{StackSpec, StageSpec};
    use crate::vwb::VwbConfig;
    use crate::{l2_config, nvm_dl1_config};
    use sttcache_mem::{Cache, CacheConfig, MainMemory};

    fn tail() -> Cache<MainMemory> {
        Cache::new(l2_config().unwrap(), MainMemory::new(100))
    }

    fn dl1(cfg: CacheConfig) -> Hierarchy {
        Cache::new(cfg, tail())
    }

    fn buffered(spec: StageSpec) -> FrontEnd {
        let dl1 = dl1(nvm_dl1_config().unwrap());
        let line_bits = dl1.config().line_bytes() * 8;
        FrontEnd::buffered(spec.build(line_bits).unwrap(), dl1)
    }

    #[test]
    fn plain_front_end_reaches_all_levels() {
        let mut fe = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        fe.read(Addr(0), 0);
        assert_eq!(fe.dl1_stats().reads, 1);
        assert_eq!(fe.l2_stats().reads, 1);
        assert_eq!(fe.memory_stats().reads, 1);
        assert!(fe.stage_stats().is_empty());
    }

    #[test]
    fn vwb_front_end_reports_buffer_stats() {
        let mut fe = buffered(StageSpec::Vwb(VwbConfig::default()));
        let t = fe.read(Addr(0), 0);
        fe.read(Addr(8), t);
        let stages = fe.stage_stats();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].kind, "vwb");
        assert_eq!(stages[0].stats.reads, 2);
        assert_eq!(stages[0].stats.read_hits, 1);
    }

    #[test]
    fn plain_prefetch_fetches_missing_lines_only() {
        let mut fe = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        fe.prefetch(Addr(0), 0);
        assert_eq!(fe.dl1_stats().accesses(), 1);
        // A hint for a resident line is dropped after the tag probe.
        fe.prefetch(Addr(0), 500);
        assert_eq!(fe.dl1_stats().accesses(), 1);
    }

    #[test]
    fn vwb_prefetch_promotes() {
        let mut fe = buffered(StageSpec::Vwb(VwbConfig::default()));
        fe.prefetch(Addr(0), 0);
        assert_eq!(fe.stage_stats()[0].stats.prefetch_fills, 1);
    }

    #[test]
    fn stage_telemetry_reports_capacity_and_residency() {
        let plain = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        assert!(plain.stage_telemetry().is_empty());
        let mut fe = buffered(StageSpec::Vwb(VwbConfig::default()));
        let t = fe.read(Addr(0), 0);
        fe.write(Addr(8), t);
        let tel = fe.stage_telemetry();
        assert_eq!(tel.len(), 1);
        assert_eq!(tel[0].kind, "vwb");
        assert_eq!(tel[0].capacity, 4);
        assert_eq!(tel[0].resident, 1);
        assert_eq!(tel[0].dirty, 1);
    }

    #[test]
    fn stacked_stage_telemetry_lists_both_constituents() {
        let spec = StackSpec {
            name: "test stack",
            outer: StageSpec::Vwb(VwbConfig::default()),
            inner: StageSpec::Emshr(crate::baselines::EmshrConfig::default()),
        };
        let dl1 = dl1(nvm_dl1_config().unwrap());
        let line_bits = dl1.config().line_bytes() * 8;
        let mut fe = FrontEnd::buffered(Box::new(spec.build(line_bits).unwrap()), dl1);
        fe.read(Addr(0), 0);
        let tel = fe.stage_telemetry();
        assert_eq!(tel.len(), 2);
        assert_eq!(tel[0].kind, "vwb");
        assert_eq!(tel[1].kind, "emshr");
        assert!(tel.iter().all(|t| t.capacity == 4));
    }

    #[test]
    fn stacked_stages_compose_without_new_variants() {
        let spec = StackSpec {
            name: "test stack",
            outer: StageSpec::Vwb(VwbConfig::default()),
            inner: StageSpec::Emshr(crate::baselines::EmshrConfig::default()),
        };
        let dl1 = dl1(nvm_dl1_config().unwrap());
        let line_bits = dl1.config().line_bytes() * 8;
        let mut fe = FrontEnd::buffered(Box::new(spec.build(line_bits).unwrap()), dl1);
        let t = fe.read(Addr(0), 0);
        // The VWB promoted the line; a same-line read hits at buffer speed.
        let t2 = fe.read(Addr(8), t);
        assert_eq!(t2, t + 1);
        let stages = fe.stage_stats();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].kind, "vwb");
        assert_eq!(stages[1].kind, "emshr");
        assert_eq!(stages[0].stats.reads, 2);
        // The VWB's promotion read flowed *through* the EMSHR stage.
        assert!(stages[1].stats.reads >= 1);
        // Drain verification covers both stages.
        fe.write(Addr(0), t2);
        assert!(fe.dirty_line_count() > 0);
        let (_, done) = fe.flush_dirty(t2 + 100);
        assert_eq!(fe.dirty_line_count(), 0, "drain incomplete at {done}");
    }
}

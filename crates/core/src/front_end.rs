//! The unified data-port front-end.

use crate::baselines::{EmshrFrontEnd, EmshrStats, L0FrontEnd, L0Stats};
use crate::vwb::{VwbFrontEnd, VwbStats};
use crate::Hierarchy;
use sttcache_cpu::{DataPort, MemPort};
use sttcache_mem::{Addr, Cache, CacheStats, Cycle, MainMemory, MemoryLevel};

/// The L2-over-memory tail of the hierarchy that every front-end's DL1
/// sits on.
pub(crate) type Tail = Cache<MainMemory>;

/// One of the four evaluated L1 D-cache organizations, unified behind a
/// single [`DataPort`] so the [`crate::Platform`] can hold any of them in
/// one core type.
///
/// * `Plain` — the core talks straight to the DL1 (the SRAM baseline and
///   the drop-in NVM configuration of Fig. 1);
/// * `Vwb` — the paper's proposal (Figs. 3–7, 9);
/// * `L0` / `Emshr` — the Fig. 8 comparison baselines.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum FrontEnd {
    /// Direct DL1 access.
    Plain(MemPort<Hierarchy>),
    /// The Very Wide Buffer organization.
    Vwb(VwbFrontEnd<Tail>),
    /// The L0-cache baseline.
    L0(L0FrontEnd<Tail>),
    /// The enhanced-MSHR baseline.
    Emshr(EmshrFrontEnd<Tail>),
}

impl FrontEnd {
    /// The DL1 statistics.
    pub fn dl1_stats(&self) -> &CacheStats {
        match self {
            FrontEnd::Plain(p) => p.level().stats(),
            FrontEnd::Vwb(v) => v.dl1().stats(),
            FrontEnd::L0(l) => l.dl1().stats(),
            FrontEnd::Emshr(e) => e.dl1().stats(),
        }
    }

    /// The L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        match self {
            FrontEnd::Plain(p) => p.level().next_level().stats(),
            FrontEnd::Vwb(v) => v.dl1().next_level().stats(),
            FrontEnd::L0(l) => l.dl1().next_level().stats(),
            FrontEnd::Emshr(e) => e.dl1().next_level().stats(),
        }
    }

    /// The main-memory statistics.
    pub fn memory_stats(&self) -> &CacheStats {
        match self {
            FrontEnd::Plain(p) => p.level().next_level().next_level().stats(),
            FrontEnd::Vwb(v) => v.dl1().next_level().next_level().stats(),
            FrontEnd::L0(l) => l.dl1().next_level().next_level().stats(),
            FrontEnd::Emshr(e) => e.dl1().next_level().next_level().stats(),
        }
    }

    /// VWB statistics, when this front-end is the VWB organization.
    pub fn vwb_stats(&self) -> Option<&VwbStats> {
        match self {
            FrontEnd::Vwb(v) => Some(v.stats()),
            _ => None,
        }
    }

    /// L0 statistics, when this front-end is the L0 baseline.
    pub fn l0_stats(&self) -> Option<&L0Stats> {
        match self {
            FrontEnd::L0(l) => Some(l.stats()),
            _ => None,
        }
    }

    /// EMSHR statistics, when this front-end is the EMSHR baseline.
    pub fn emshr_stats(&self) -> Option<&EmshrStats> {
        match self {
            FrontEnd::Emshr(e) => Some(e.stats()),
            _ => None,
        }
    }

    /// Resets all statistics in the front-end and the hierarchy below it;
    /// cache and buffer *contents* are kept (warm-up support).
    pub fn reset_stats(&mut self) {
        match self {
            FrontEnd::Plain(p) => p.level_mut().reset_stats(),
            FrontEnd::Vwb(v) => v.reset_stats(),
            FrontEnd::L0(l) => l.reset_stats(),
            FrontEnd::Emshr(e) => e.reset_stats(),
        }
    }

    /// The DL1 behind whatever buffer structure this front-end has.
    fn dl1(&self) -> &Hierarchy {
        match self {
            FrontEnd::Plain(p) => p.level(),
            FrontEnd::Vwb(v) => v.dl1(),
            FrontEnd::L0(l) => l.dl1(),
            FrontEnd::Emshr(e) => e.dl1(),
        }
    }

    /// Drains every dirty line in the whole organization to backing
    /// memory: first the front buffer (VWB/L0/EMSHR) into the DL1, then
    /// the DL1 into the L2, then the L2 into memory. Lines stay resident
    /// and become clean. Returns the total lines written back and the
    /// cycle at which the last write-back was accepted.
    pub fn flush_dirty(&mut self, now: Cycle) -> (usize, Cycle) {
        let (front, mut done) = match self {
            FrontEnd::Plain(_) => (0, now),
            FrontEnd::Vwb(v) => v.flush_dirty(now),
            FrontEnd::L0(l) => l.flush_dirty(now),
            FrontEnd::Emshr(e) => e.flush_dirty(now),
        };
        let dl1 = match self {
            FrontEnd::Plain(p) => p.level_mut(),
            FrontEnd::Vwb(v) => v.dl1_mut(),
            FrontEnd::L0(l) => l.dl1_mut(),
            FrontEnd::Emshr(e) => e.dl1_mut(),
        };
        let (n1, t1) = dl1.flush_dirty(done);
        let (n2, t2) = dl1.next_level_mut().flush_dirty(t1);
        done = t2;
        (front + n1 + n2, done)
    }

    /// Dirty state still held anywhere in the organization (front buffer
    /// entries plus DL1 and L2 dirty lines). Zero after a completed
    /// [`flush_dirty`](Self::flush_dirty).
    pub fn dirty_line_count(&self) -> usize {
        let front = match self {
            FrontEnd::Plain(_) => 0,
            FrontEnd::Vwb(v) => v.dirty_entries(),
            FrontEnd::L0(l) => l.dirty_entries(),
            FrontEnd::Emshr(e) => e.dirty_entries(),
        };
        front + self.dl1().dirty_lines() + self.dl1().next_level().dirty_lines()
    }

    /// Base address and line size of every line resident anywhere in the
    /// organization, for phantom-line verification against a functional
    /// oracle.
    pub fn resident_lines(&self) -> Vec<(Addr, usize)> {
        let mut lines: Vec<(Addr, usize)> = Vec::new();
        let dl1_bytes = self.dl1().config().line_bytes();
        match self {
            FrontEnd::Plain(_) => {}
            FrontEnd::Vwb(v) => {
                lines.extend(v.resident_lines().into_iter().map(|a| (a, dl1_bytes)));
            }
            FrontEnd::L0(l) => {
                lines.extend(l.resident_lines().into_iter().map(|a| (a, dl1_bytes)));
            }
            FrontEnd::Emshr(e) => {
                lines.extend(e.resident_lines().into_iter().map(|a| (a, dl1_bytes)));
            }
        }
        lines.extend(
            self.dl1()
                .resident_lines()
                .into_iter()
                .map(|a| (a, dl1_bytes)),
        );
        let l2 = self.dl1().next_level();
        let l2_bytes = l2.config().line_bytes();
        lines.extend(l2.resident_lines().into_iter().map(|a| (a, l2_bytes)));
        lines
    }

    /// End-of-run verification, reported through
    /// [`sttcache_mem::invariants`]: no leaked MSHR allocation and no
    /// dirty line may remain at any level once the organization has been
    /// drained with [`flush_dirty`](Self::flush_dirty).
    pub fn check_drained(&self, now: Cycle) {
        if let FrontEnd::Vwb(v) = self {
            v.check_invariants(now);
        }
        let front_dirty = match self {
            FrontEnd::Plain(_) => 0,
            FrontEnd::Vwb(v) => v.dirty_entries(),
            FrontEnd::L0(l) => l.dirty_entries(),
            FrontEnd::Emshr(e) => e.dirty_entries(),
        };
        if front_dirty > 0 {
            sttcache_mem::invariants::report(
                "front-end",
                now,
                None,
                format!("{front_dirty} dirty buffer entries remain after drain"),
            );
        }
        self.dl1().check_drained(now);
        self.dl1().next_level().check_drained(now);
    }
}

impl DataPort for FrontEnd {
    fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.read(addr, now),
            FrontEnd::Vwb(v) => v.read(addr, now),
            FrontEnd::L0(l) => l.read(addr, now),
            FrontEnd::Emshr(e) => e.read(addr, now),
        }
    }

    fn write(&mut self, addr: Addr, now: Cycle) -> Cycle {
        match self {
            FrontEnd::Plain(p) => p.write(addr, now),
            FrontEnd::Vwb(v) => v.write(addr, now),
            FrontEnd::L0(l) => l.write(addr, now),
            FrontEnd::Emshr(e) => e.write(addr, now),
        }
    }

    fn prefetch(&mut self, addr: Addr, now: Cycle) {
        // An ARM `PLD` probes the L1 tags and fetches the line on a miss,
        // without blocking the core. Only the VWB organization additionally
        // *promotes* already-resident lines into its buffer — the paper's
        // VWB-targeted prefetching.
        match self {
            FrontEnd::Plain(p) => {
                if !p.level().contains(addr) {
                    let _ = p.level_mut().read(addr, now);
                }
            }
            FrontEnd::L0(l) => {
                if !l.dl1().contains(addr) {
                    let _ = l.dl1_mut().read(addr, now);
                }
            }
            FrontEnd::Emshr(m) => {
                if !m.dl1().contains(addr) {
                    let _ = m.dl1_mut().read(addr, now);
                }
            }
            FrontEnd::Vwb(v) => v.prefetch(addr, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vwb::VwbConfig;
    use crate::{l2_config, nvm_dl1_config};
    use sttcache_mem::CacheConfig;

    fn tail() -> Tail {
        Cache::new(l2_config().unwrap(), MainMemory::new(100))
    }

    fn dl1(cfg: CacheConfig) -> Hierarchy {
        Cache::new(cfg, tail())
    }

    #[test]
    fn plain_front_end_reaches_all_levels() {
        let mut fe = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        fe.read(Addr(0), 0);
        assert_eq!(fe.dl1_stats().reads, 1);
        assert_eq!(fe.l2_stats().reads, 1);
        assert_eq!(fe.memory_stats().reads, 1);
        assert!(fe.vwb_stats().is_none());
        assert!(fe.l0_stats().is_none());
        assert!(fe.emshr_stats().is_none());
    }

    #[test]
    fn vwb_front_end_reports_buffer_stats() {
        let inner = Cache::new(nvm_dl1_config().unwrap(), tail());
        let v = VwbFrontEnd::new(VwbConfig::default(), inner).unwrap();
        let mut fe = FrontEnd::Vwb(v);
        let t = fe.read(Addr(0), 0);
        fe.read(Addr(8), t);
        let stats = fe.vwb_stats().unwrap();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.read_hits, 1);
    }

    #[test]
    fn plain_prefetch_fetches_missing_lines_only() {
        let mut fe = FrontEnd::Plain(MemPort::new(dl1(nvm_dl1_config().unwrap())));
        fe.prefetch(Addr(0), 0);
        assert_eq!(fe.dl1_stats().accesses(), 1);
        // A hint for a resident line is dropped after the tag probe.
        fe.prefetch(Addr(0), 500);
        assert_eq!(fe.dl1_stats().accesses(), 1);
    }

    #[test]
    fn vwb_prefetch_promotes() {
        let inner = Cache::new(nvm_dl1_config().unwrap(), tail());
        let v = VwbFrontEnd::new(VwbConfig::default(), inner).unwrap();
        let mut fe = FrontEnd::Vwb(v);
        fe.prefetch(Addr(0), 0);
        assert_eq!(fe.vwb_stats().unwrap().prefetch_fills, 1);
    }
}
